#![warn(missing_docs)]

//! # hop-doubling — facade crate
//!
//! Reproduction of *Hop Doubling Label Indexing for Point-to-Point
//! Distance Querying on Scale-Free Networks* (Jiang, Fu, Wong, Xu;
//! VLDB 2014). This crate re-exports the workspace members so examples
//! and downstream users need a single dependency:
//!
//! * [`sfgraph`] — graphs, rankings, traversals, analysis;
//! * [`graphgen`] — GLP/BA/ER generators and the paper's example graphs;
//! * [`extmem`] — counted block I/O, runs, external sorting;
//! * [`hoplabels`] — 2-hop label indexes, statistics, disk layout,
//!   bit-parallel labels;
//! * [`hopdb`] — the paper's contribution: Hop-Doubling / Hop-Stepping
//!   / Hybrid construction, in memory and external;
//! * [`baselines`] — BIDIJ, PLL, IS-Label, highway-cover comparators;
//! * [`hopdb_server`] — the long-running TCP query daemon serving a
//!   `FlatIndex` over the `HOPQ` wire protocol, with hot index swap.
//!
//! ## Quickstart
//!
//! ```
//! use hop_doubling::hopdb::{build, HopDbConfig};
//! use hop_doubling::graphgen::{glp, GlpParams};
//!
//! let graph = glp(&GlpParams::with_vertices(1_000, 42));
//! let db = build(&graph, &HopDbConfig::default());
//! let d = db.query(3, 77);
//! assert_eq!(d, sfgraph::traversal::bidirectional_distance(&graph, 3, 77));
//! ```

pub use baselines;
pub use extmem;
pub use graphgen;
pub use hopdb;
pub use hopdb_server;
pub use hoplabels;
pub use sfgraph;

pub use hoplabels::QueryBackend;
