#![forbid(unsafe_code)]
//! Binary entry point for `hopdb-cli`; all logic lives in the library
//! (`hopdb_cli::run`) so it is testable in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = hopdb_cli::run(&args, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
