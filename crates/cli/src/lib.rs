#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # hopdb-cli — command-line front end
//!
//! Seven subcommands wire the library into a usable tool:
//!
//! ```text
//! hopdb-cli gen   --model glp --vertices 100000 --density 4 -o graph.txt
//! hopdb-cli stats -i graph.txt
//! hopdb-cli build -i graph.txt -o graph.idx [--directed] [--weighted]
//!                 [--strategy hybrid|stepping|doubling] [--switch-at 10]
//!                 [--threads N] [--external [--memory-records M] [--block-bytes B]]
//! hopdb-cli query -x graph.idx 17 4242 [more pairs…]
//! hopdb-cli query -x graph.idx --pairs batch.txt --threads 4
//! hopdb-cli shard -x graph.idx --shards 4 [-o prefix]
//! hopdb-cli serve -x graph.idx --addr 127.0.0.1:7654 [--backend epoll|threads]
//!                 [--flush-us 100] [--coalesce-pairs 4096] [--max-inflight 128]
//!                 [--swap-path next.idx] [--max-resident-bytes N]
//!                 [--graph graph.txt] [--compact-threshold N]
//!                 [--wal-dir wal/ --durability off|batch|always]
//!                 [--wal-max-bytes N]
//! hopdb-cli serve --route replica|shard --backends a:p,b:p[,…]
//!                 [--addr 127.0.0.1:7654] [--flush-us 100] […]
//! hopdb-cli admin -a 127.0.0.1:7654 [--timeout-ms 5000] [--retries 3]
//!                 stats|info|swap|compact|shutdown|ingest [FILE]
//! ```
//!
//! `build` writes two artifacts: the disk index (`hoplabels::disk`
//! layout) and a `.rank` sidecar holding the vertex-at-rank permutation
//! so `query` can accept original vertex ids. `query` loads the index
//! into the flat serving layout (`hoplabels::flat::FlatIndex`) and
//! answers single pairs or whole batch files, sharding batches across
//! `--threads` workers. `shard` splits an index image by pivot range
//! into per-shard images (`hoplabels::shard`), each a complete
//! `HOPIDX01` index a stock daemon can serve, plus a `HOPSHRD1` sidecar
//! so the router can learn each backend's range. `serve` runs the
//! `hopdb-server` daemon over the same index + sidecar pair (pass
//! `--graph` to enable compaction) — or, with `--route`, the scale-out
//! router that fans query batches across `--backends` daemons — and
//! `admin` speaks the wire protocol to a running daemon: statistics,
//! hot index swap, live edge ingest, overlay compaction, shutdown. Each
//! admin verb is one `AdminCmd` variant sharing a single
//! connect-with-timeout path. Argument parsing is handwritten (no
//! external dependency); all logic lives in [`run`] so tests drive the
//! CLI in-process.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::path::Path;

use extmem::device::CountedFile;
use extmem::stats::IoStats;
use graphgen::{
    barabasi_albert, erdos_renyi, glp, orient_scale_free, with_random_weights, GlpParams,
};
use hopdb::{HopDbConfig, Strategy};
use hoplabels::disk::DiskIndex;
use hoplabels::flat::FlatIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy, Ranking};
use sfgraph::{Graph, VertexId, INF_DIST};

/// CLI failure: message for the user, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("i/o error: {e}"))
    }
}

impl From<sfgraph::GraphError> for CliError {
    fn from(e: sfgraph::GraphError) -> Self {
        CliError(format!("graph error: {e}"))
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Tiny argument cursor over `--flag value` style options.
struct Args<'a> {
    rest: &'a [String],
}

impl<'a> Args<'a> {
    fn opt(&self, flag: &str) -> Option<&'a str> {
        self.rest
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, CliError> {
        match self.opt(flag) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| err(format!("bad value for {flag}: {v}"))),
        }
    }

    fn required(&self, flag: &str) -> Result<&'a str, CliError> {
        self.opt(flag).ok_or_else(|| err(format!("missing required option {flag}")))
    }

    /// Positional (non-flag) arguments: anything not starting with `-`
    /// that is not the value of a non-boolean flag.
    fn positional(&self) -> Vec<&'a str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.rest.len() {
            let a = self.rest[i].as_str();
            if a.starts_with('-') && a.parse::<i64>().is_err() {
                if !BOOL_FLAGS.contains(&a) {
                    i += 1; // skip the flag's value too
                }
            } else {
                out.push(a);
            }
            i += 1;
        }
        out
    }
}

const BOOL_FLAGS: &[&str] = &["--directed", "--weighted", "--external", "--allow-remote-shutdown"];

/// Run the CLI with `args` (excluding the program name); human-readable
/// output goes to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(err(USAGE));
    };
    let rest = Args { rest: &args[1..] };
    match cmd.as_str() {
        "gen" => cmd_gen(&rest, out),
        "stats" => cmd_stats(&rest, out),
        "build" => cmd_build(&rest, out),
        "query" => cmd_query(&rest, out),
        "shard" => cmd_shard(&rest, out),
        "serve" => cmd_serve(&rest, out),
        "admin" => cmd_admin(&rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(err(format!("unknown command `{other}`\n{USAGE}"))),
    }
}

/// Usage text shown by `help` and on argument errors.
pub const USAGE: &str = "usage: hopdb-cli <command> [options]

commands:
  gen    --model glp|ba|er --vertices N [--density D] [--seed S]
         [--directed [--reciprocal R]] [--weighted [--max-weight W]] -o FILE
  stats  -i EDGELIST [--directed] [--weighted]
  build  -i EDGELIST -o INDEX [--directed] [--weighted]
         [--strategy hybrid|stepping|doubling] [--switch-at K] [--post-prune]
         [--threads N]   (0 = all cores; any N builds the identical index)
         [--external [--memory-records M] [--block-bytes B]]
         (--external runs the §4 disk-based build under an M-record /
          B-byte budget; --threads ≥ 2 pipelines its joins and spills)
  query  -x INDEX [s t ...] [--pairs FILE] [--threads N]
         (pairs from arguments and/or FILE of `s t` lines; N workers, 0 = all cores)
  shard  -x INDEX --shards K [-o PREFIX]
         (split the index image into K per-shard images by pivot range,
          balanced by label-entry count; shard i is written to
          PREFIX.shard<i> — default PREFIX is INDEX — with its HOPSHRD1
          range sidecar at PREFIX.shard<i>.shard, and the .rank sidecar
          is copied alongside when present; every shard is a complete
          index a stock `serve` daemon can load)
  serve  -x INDEX [--addr HOST:PORT] [--backend epoll|threads]
         [--threads N] [--batch-threads N] [--max-batch PAIRS]
         [--flush-us US] [--coalesce-pairs P] [--max-inflight N]
         [--idle-timeout-ms MS] [--max-resident-bytes B] [--swap-path FILE]
         [--graph EDGELIST] [--compact-threshold EDGES]
         [--wal-dir DIR] [--durability off|batch|always] [--wal-max-bytes B]
         [--announce-file FILE] [--allow-remote-shutdown]
         (long-running TCP daemon; HOPQ wire protocol + HTTP/JSON on the
          same port under the epoll backend; swap promotes --swap-path;
          --flush-us/--coalesce-pairs tune micro-batching, --max-inflight
          caps pipelining per connection, --threads applies to the
          threads backend; --graph names the edge list the index was
          built from and enables compaction — the overlay folds into a
          fresh frozen index when it reaches --compact-threshold edges,
          0 = only on `admin compact`; --wal-dir enables the write-ahead
          log: accepted updates are logged there before they are
          acknowledged and replayed after a crash, --durability picks
          the fsync policy, default batch = group-commit, and
          --wal-max-bytes caps the log on disk: a checkpoint — which
          truncates it — is triggered whenever the cap is exceeded)
  serve  --route replica|shard --backends HOST:PORT,HOST:PORT[,...]
         [--addr HOST:PORT] [--max-batch PAIRS] [--flush-us US]
         [--coalesce-pairs P] [--max-inflight N] [--idle-timeout-ms MS]
         [--connect-timeout-ms MS] [--connect-retries N]
         [--announce-file FILE] [--allow-remote-shutdown]
         (scale-out router, no local index: `replica` load-balances
          query batches across identical backends with automatic
          failover and fans updates to all of them; `shard` splits each
          batch by the backends' pivot ranges — images made by `shard` —
          and min-merges the per-shard answers; either mode answers
          byte-identically to a single daemon over the unsharded index;
          point `admin swap`/`compact` at each backend in turn for a
          rolling swap, `admin shutdown` at the router stops the router
          only)
  admin  -a HOST:PORT [--timeout-ms MS] [--retries N] [--batch EDGES]
         stats|info|swap|compact|shutdown|ingest [FILE]
         (talk to a running serve daemon; default 5000 ms timeout so a
          dead server fails the command instead of hanging it, 0 = wait;
          connection-refused errors are retried with backoff, --retries
          extra attempts, default 3; `info` adds overlay/compaction and
          durability state to `stats`; `ingest` streams `s t [w]` edge
          lines from FILE or stdin as live updates, --batch edges per
          frame, stopping at the first rejected batch with the offending
          line range; `compact` rebuilds and promotes a fresh generation
          and is exempt from the short timeout)";

fn cmd_gen(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let model = args.opt("--model").unwrap_or("glp");
    let n: usize = args.parsed("--vertices")?.ok_or_else(|| err("missing --vertices"))?;
    let seed: u64 = args.parsed("--seed")?.unwrap_or(1);
    let density: f64 = args.parsed("--density")?.unwrap_or(2.13);
    let mut g = match model {
        "glp" => glp(&GlpParams::with_density(n, density, seed)),
        "ba" => barabasi_albert(n, (density.round() as usize).max(1), seed),
        "er" => erdos_renyi(n, (n as f64 * density) as usize, seed),
        other => return Err(err(format!("unknown model `{other}` (glp|ba|er)"))),
    };
    if args.has("--directed") {
        let reciprocal: f64 = args.parsed("--reciprocal")?.unwrap_or(0.25);
        g = orient_scale_free(&g, reciprocal, seed);
    }
    if args.has("--weighted") {
        let max_w: u32 = args.parsed("--max-weight")?.unwrap_or(10);
        g = with_random_weights(&g, 1, max_w.max(1), seed);
    }
    let path = args.required("-o")?;
    let file = std::fs::File::create(path)?;
    sfgraph::io::write_edge_list(&g, std::io::BufWriter::new(file))?;
    writeln!(out, "wrote {} vertices / {} edges to {path}", g.num_vertices(), g.num_edges())?;
    Ok(())
}

fn load_graph(args: &Args) -> Result<Graph, CliError> {
    let path = args.required("-i")?;
    let file = std::fs::File::open(path).map_err(|e| err(format!("cannot open {path}: {e}")))?;
    Ok(sfgraph::io::read_edge_list(
        std::io::BufReader::new(file),
        args.has("--directed"),
        args.has("--weighted"),
    )?)
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let g = load_graph(args)?;
    let mut s = String::new();
    let _ = writeln!(s, "|V|              {}", g.num_vertices());
    let _ = writeln!(s, "|E|              {}", g.num_edges());
    let _ = writeln!(s, "directed         {}", g.is_directed());
    let _ = writeln!(s, "weighted         {}", g.is_weighted());
    let _ = writeln!(s, "max degree       {}", g.max_degree());
    if let Some(gamma) = sfgraph::analysis::rank_exponent(&g) {
        let _ = writeln!(s, "rank exponent γ  {gamma:.3} (scale-free band: -0.9…-0.6)");
    }
    if let Some(alpha) = sfgraph::analysis::power_law_exponent(&g) {
        let _ = writeln!(s, "power-law α      {alpha:.3} (scale-free band: 2…3)");
    }
    let _ = writeln!(s, "expansion R      {:.2}", sfgraph::analysis::expansion_factor(&g, 16));
    let _ = writeln!(s, "hop diameter ≈   {}", sfgraph::analysis::hop_diameter(&g, 8, 2_000));
    let (wcc, largest) = sfgraph::analysis::weak_components(&g);
    let _ = writeln!(s, "components       {wcc} (largest {largest})");
    write!(out, "{s}")?;
    Ok(())
}

fn cmd_build(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let g = load_graph(args)?;
    let strategy = match args.opt("--strategy").unwrap_or("hybrid") {
        "hybrid" => Strategy::Hybrid { switch_at: args.parsed("--switch-at")?.unwrap_or(10) },
        "stepping" => Strategy::Stepping,
        "doubling" => Strategy::Doubling,
        other => return Err(err(format!("unknown strategy `{other}`"))),
    };
    let cfg = HopDbConfig {
        strategy,
        post_prune: args.has("--post-prune"),
        parallelism: args.parsed("--threads")?.unwrap_or(1),
        ..HopDbConfig::default()
    };
    let started = std::time::Instant::now();
    let rank_by = if g.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(&g, &rank_by);
    let relabeled = relabel_by_rank(&g, &ranking);
    let mut external_io = None;
    let (index, stats) = if args.has("--external") {
        let ext = extmem::ExtMemConfig {
            memory_records: args.parsed("--memory-records")?.unwrap_or(1 << 20),
            block_bytes: args.parsed("--block-bytes")?.unwrap_or(64 << 10),
        };
        let result = hopdb::external::build_external(&relabeled, &cfg, &ext)
            .map_err(|e| err(format!("external build failed: {e}")))?;
        external_io = Some((result.io, result.sort_runs, result.merge_passes));
        (result.index, result.stats)
    } else {
        hopdb::build_prelabeled(&relabeled, &cfg)
    };
    let elapsed = started.elapsed();

    // Persist: index file + ranking sidecar.
    let target = args.required("-o")?;
    let io = IoStats::shared();
    let file = CountedFile::create_path(Path::new(target), io)?;
    write_index_to(&index, file)?;
    write_ranking_sidecar(target, &ranking)?;

    writeln!(
        out,
        "built {} entries (avg {:.1}/vertex) in {:?} over {} iterations ({} threads)",
        index.total_entries(),
        index.avg_label_size(),
        elapsed,
        stats.num_iterations(),
        stats.threads,
    )?;
    if let Some(((read_bytes, write_bytes, read_blocks, write_blocks), sort_runs, merge_passes)) =
        external_io
    {
        writeln!(
            out,
            "external I/O: {read_bytes} B read / {write_bytes} B written \
             ({read_blocks}+{write_blocks} blocks), {sort_runs} sort runs, \
             {merge_passes} merge passes",
        )?;
    }
    writeln!(out, "index: {target}  ranking: {target}.rank")?;
    Ok(())
}

fn write_index_to(index: &hoplabels::LabelIndex, file: CountedFile) -> Result<(), CliError> {
    // DiskIndex::create wants a TempStore; write via a temp store and
    // copy into place to keep one serialization code path.
    let store = extmem::device::TempStore::new()?;
    let disk = DiskIndex::create(index, &store, "cli")?;
    let tmp_path = disk.persist();
    std::fs::copy(&tmp_path, file.path())?;
    std::fs::remove_file(tmp_path)?;
    Ok(())
}

fn write_ranking_sidecar(target: &str, ranking: &Ranking) -> Result<(), CliError> {
    std::fs::write(format!("{target}.rank"), ranking.to_sidecar_bytes())?;
    Ok(())
}

fn read_ranking_sidecar(target: &str, expect_n: usize) -> Result<Ranking, CliError> {
    let path = format!("{target}.rank");
    let mut bytes = Vec::new();
    std::fs::File::open(&path)
        .map_err(|e| err(format!("cannot open {path}: {e}")))?
        .read_to_end(&mut bytes)?;
    // Validating the vertex count here turns a stale sidecar (index
    // rebuilt without its .rank) into a clean error instead of an
    // out-of-range panic inside the query workers.
    Ranking::from_sidecar_bytes(&bytes, Some(expect_n)).map_err(|msg| err(format!("{path}: {msg}")))
}

fn cmd_query(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let target = args.required("-x")?;
    // Load the serialized index straight into the flat serving layout —
    // no per-vertex allocations, no disk reads per query.
    let flat = FlatIndex::load(Path::new(target))
        .map_err(|e| err(format!("cannot load {target}: {e}")))?;
    let ranking = read_ranking_sidecar(target, flat.num_vertices())?;

    // Pairs come from the positional arguments and/or a batch file of
    // whitespace-separated `s t` lines (`#` comments allowed).
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    let positional = args.positional();
    if !positional.len().is_multiple_of(2) {
        return Err(err("query needs an even number of vertex ids: s t [s t ...]"));
    }
    let parse_vertex = |tok: &str| -> Result<VertexId, CliError> {
        tok.parse().map_err(|_| err(format!("bad vertex {tok}")))
    };
    for pair in positional.chunks_exact(2) {
        pairs.push((parse_vertex(pair[0])?, parse_vertex(pair[1])?));
    }
    if let Some(batch) = args.opt("--pairs") {
        let text =
            std::fs::read_to_string(batch).map_err(|e| err(format!("cannot open {batch}: {e}")))?;
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some(s), Some(t), None) = (it.next(), it.next(), it.next()) else {
                return Err(err(format!("bad pair line in {batch}: `{line}`")));
            };
            pairs.push((parse_vertex(s)?, parse_vertex(t)?));
        }
    }
    if pairs.is_empty() {
        return Err(err("query needs vertex pairs: s t [s t ...] and/or --pairs FILE"));
    }
    for &(s, t) in &pairs {
        if s as usize >= ranking.len() || t as usize >= ranking.len() {
            return Err(err(format!("vertex out of range: {s} or {t}")));
        }
    }

    let rank_pairs: Vec<(VertexId, VertexId)> =
        pairs.iter().map(|&(s, t)| (ranking.rank_of(s), ranking.rank_of(t))).collect();
    let threads: usize = args.parsed("--threads")?.unwrap_or(1);
    let dists = flat.query_many(&rank_pairs, threads);
    for (&(s, t), d) in pairs.iter().zip(dists) {
        if d == INF_DIST {
            writeln!(out, "dist({s}, {t}) = unreachable")?;
        } else {
            writeln!(out, "dist({s}, {t}) = {d}")?;
        }
    }
    Ok(())
}

fn cmd_shard(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let target = args.required("-x")?;
    let k: usize = args.parsed("--shards")?.ok_or_else(|| err("missing --shards"))?;
    let prefix = args.opt("-o").unwrap_or(target);
    let bytes = std::fs::read(target).map_err(|e| err(format!("cannot open {target}: {e}")))?;
    let shards = hoplabels::shard_image(&bytes, k)
        .map_err(|e| err(format!("cannot shard {target}: {e}")))?;
    // Clients addressing the shards by original vertex id need the
    // ranking next to every shard image, exactly as with the source.
    let rank = std::fs::read(format!("{target}.rank")).ok();
    for (image, spec) in &shards {
        let path = format!("{prefix}.shard{}", spec.index);
        std::fs::write(&path, image)?;
        std::fs::write(format!("{path}.shard"), spec.encode())?;
        if let Some(rank) = &rank {
            std::fs::write(format!("{path}.rank"), rank)?;
        }
        writeln!(
            out,
            "shard {}/{}: pivots [{}, {}) -> {path} ({} bytes{})",
            spec.index,
            spec.count,
            spec.lo,
            spec.hi,
            image.len(),
            if spec.rank_pruned { ", rank-pruned" } else { "" },
        )?;
    }
    Ok(())
}

/// Parse `--backends a:p,b:p,...` into socket addresses.
fn parse_backends(spec: &str) -> Result<Vec<std::net::SocketAddr>, CliError> {
    use std::net::ToSocketAddrs;
    let mut backends = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let addr = part
            .to_socket_addrs()
            .map_err(|e| err(format!("cannot resolve backend {part}: {e}")))?
            .next()
            .ok_or_else(|| err(format!("cannot resolve backend {part}")))?;
        backends.push(addr);
    }
    if backends.is_empty() {
        return Err(err("--backends needs at least one HOST:PORT"));
    }
    Ok(backends)
}

#[cfg(target_os = "linux")]
fn cmd_serve_router(args: &Args, route: &str, out: &mut dyn Write) -> Result<(), CliError> {
    let mode = route.parse::<hopdb_server::RouteMode>().map_err(err)?;
    let backends = parse_backends(args.required("--backends")?)?;
    let addr = args.opt("--addr").unwrap_or("127.0.0.1:7654");
    let defaults = hopdb_server::RouterConfig::default();
    let config = hopdb_server::RouterConfig {
        mode,
        backends,
        max_batch: args.parsed("--max-batch")?.unwrap_or(defaults.max_batch),
        flush_us: args.parsed("--flush-us")?.unwrap_or(defaults.flush_us),
        coalesce_pairs: args.parsed("--coalesce-pairs")?.unwrap_or(defaults.coalesce_pairs),
        max_inflight: args.parsed("--max-inflight")?.unwrap_or(defaults.max_inflight),
        idle_timeout_ms: args.parsed("--idle-timeout-ms")?.unwrap_or(defaults.idle_timeout_ms),
        allow_shutdown: args.has("--allow-remote-shutdown"),
        connect_timeout: args
            .parsed("--connect-timeout-ms")?
            .map_or(defaults.connect_timeout, std::time::Duration::from_millis),
        connect_retries: args.parsed("--connect-retries")?.unwrap_or(defaults.connect_retries),
    };
    let handle = hopdb_server::serve_router(addr, config)
        .map_err(|e| err(format!("cannot start {route} router on {addr}: {e}")))?;
    let announced = (|| -> Result<(), CliError> {
        writeln!(out, "routing ({route}) on {}", handle.local_addr())?;
        out.flush()?;
        if let Some(announce) = args.opt("--announce-file") {
            std::fs::write(announce, handle.local_addr().to_string())?;
        }
        Ok(())
    })();
    if let Err(e) = announced {
        handle.shutdown();
        return Err(e);
    }
    handle.wait();
    writeln!(out, "router stopped")?;
    Ok(())
}

#[cfg(not(target_os = "linux"))]
fn cmd_serve_router(_args: &Args, _route: &str, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(err("serve --route requires the linux epoll backend"))
}

fn cmd_serve(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    if let Some(route) = args.opt("--route") {
        return cmd_serve_router(args, route, out);
    }
    let target = args.required("-x")?;
    let addr = args.opt("--addr").unwrap_or("127.0.0.1:7654");
    let defaults = hopdb_server::ServerConfig::default();
    let backend = match args.opt("--backend") {
        None => defaults.backend,
        Some(v) => v.parse::<hopdb_server::Backend>().map_err(err)?,
    };
    let config = hopdb_server::ServerConfig {
        backend,
        threads: args.parsed("--threads")?.unwrap_or(0),
        batch_threads: args.parsed("--batch-threads")?.unwrap_or(1),
        max_batch: args.parsed("--max-batch")?.unwrap_or(hopdb_server::proto::DEFAULT_MAX_BATCH),
        max_resident_bytes: args.parsed("--max-resident-bytes")?,
        swap_path: args.opt("--swap-path").map(std::path::PathBuf::from),
        allow_shutdown: args.has("--allow-remote-shutdown"),
        flush_us: args.parsed("--flush-us")?.unwrap_or(defaults.flush_us),
        coalesce_pairs: args.parsed("--coalesce-pairs")?.unwrap_or(defaults.coalesce_pairs),
        max_inflight: args.parsed("--max-inflight")?.unwrap_or(defaults.max_inflight),
        idle_timeout_ms: args.parsed("--idle-timeout-ms")?.unwrap_or(defaults.idle_timeout_ms),
        source_graph: args.opt("--graph").map(std::path::PathBuf::from),
        compact_threshold: args
            .parsed("--compact-threshold")?
            .unwrap_or(defaults.compact_threshold),
        wal_dir: args.opt("--wal-dir").map(std::path::PathBuf::from),
        durability: match args.opt("--durability") {
            None => defaults.durability,
            Some(v) => v.parse().map_err(err)?,
        },
        wal_max_bytes: args.parsed("--wal-max-bytes")?,
    };
    // The crash-recovery harness plants I/O fault points in a spawned
    // daemon through the environment; inert unless EXTMEM_FAULT_* vars
    // are present.
    extmem::device::faults::arm_from_env();
    let handle = hopdb_server::serve(addr, Path::new(target), config)
        .map_err(|e| err(format!("cannot serve {target} on {addr}: {e}")))?;
    let announced = (|| -> Result<(), CliError> {
        writeln!(out, "serving {target} on {} (generation 1)", handle.local_addr())?;
        out.flush()?;
        // Scripts and tests poll this file instead of parsing stdout —
        // with `--addr 127.0.0.1:0` it is the only way to learn the port.
        if let Some(announce) = args.opt("--announce-file") {
            std::fs::write(announce, handle.local_addr().to_string())?;
        }
        Ok(())
    })();
    if let Err(e) = announced {
        // The daemon is already running; a dropped handle would leak
        // its threads and the bound port for the process lifetime.
        handle.shutdown();
        return Err(e);
    }
    handle.wait();
    writeln!(out, "server stopped")?;
    Ok(())
}

/// One parsed `admin` action. Every verb shares the same
/// connect-with-timeout path in [`cmd_admin`]; parsing is separated
/// from execution so argument errors never open a socket.
enum AdminCmd {
    /// Print the serving statistics (`stats` wire request).
    Stats,
    /// Print the extended v2 snapshot: stats plus overlay and
    /// compaction state.
    Info,
    /// Promote the `--swap-path` index (or re-load the boot index).
    Swap,
    /// Fold the overlay into a freshly built frozen index.
    Compact,
    /// Ask the server to stop.
    Shutdown,
    /// Stream edge insertions from a file (or stdin) as live updates.
    Ingest {
        /// `None` or `Some("-")` reads stdin.
        source: Option<String>,
        /// Edges per update frame.
        batch: usize,
    },
}

impl AdminCmd {
    const ACTIONS: &'static str = "stats|info|swap|compact|shutdown|ingest [FILE]";

    fn parse(args: &Args) -> Result<AdminCmd, CliError> {
        let positional = args.positional();
        let Some((&verb, rest)) = positional.split_first() else {
            return Err(err(format!("admin needs an action: {}", AdminCmd::ACTIONS)));
        };
        let cmd = match verb {
            "stats" => AdminCmd::Stats,
            "info" => AdminCmd::Info,
            "swap" => AdminCmd::Swap,
            "compact" => AdminCmd::Compact,
            "shutdown" => AdminCmd::Shutdown,
            "ingest" => {
                return Ok(AdminCmd::Ingest {
                    source: match rest {
                        [] => None,
                        [file] => Some(file.to_string()),
                        _ => return Err(err("admin ingest takes at most one FILE")),
                    },
                    batch: args.parsed::<usize>("--batch")?.unwrap_or(4096).max(1),
                });
            }
            other => {
                return Err(err(format!("unknown admin action `{other}` ({})", AdminCmd::ACTIONS)))
            }
        };
        if !rest.is_empty() {
            return Err(err(format!("admin {verb} takes no further arguments")));
        }
        Ok(cmd)
    }
}

/// The one connect path every admin verb goes through. A dead or
/// wedged server (bound port, nobody answering) must fail the command,
/// not hang it: the timeout bounds connect AND every read/write of the
/// conversation (0 = wait forever), while transient refusals — the
/// daemon restarting after a crash — are retried with backoff up to
/// `retries` extra attempts.
fn connect_admin(
    addr: &str,
    timeout_ms: u64,
    retries: u32,
) -> Result<hopdb_server::Client, CliError> {
    use std::net::ToSocketAddrs;
    let timeout = (timeout_ms != 0).then(|| std::time::Duration::from_millis(timeout_ms));
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| err(format!("cannot resolve {addr}: {e}")))?
        .next()
        .ok_or_else(|| err(format!("cannot resolve {addr}")))?;
    hopdb_server::Client::connect_retry(&sock_addr, timeout, retries)
        .map_err(|e| err(format!("cannot connect to {addr}: {e}")))
}

/// Parse `s t [w]` edge lines (`#` comments, blank lines allowed;
/// missing weight means 1) from a file, or stdin for `None`/`"-"`.
/// Each edge carries its 1-based input line number so a rejected batch
/// can be reported as a line range, plus the origin name for messages.
type IngestEdges = (Vec<(usize, (VertexId, VertexId, u32))>, String);

fn read_ingest_edges(source: Option<&str>) -> Result<IngestEdges, CliError> {
    let (text, origin) = match source {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            (buf, "stdin".to_string())
        }
        Some(path) => (
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot open {path}: {e}")))?,
            path.to_string(),
        ),
    };
    let mut edges = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (s, t, w) = (it.next(), it.next(), it.next());
        let (Some(s), Some(t), None) = (s, t, it.next()) else {
            return Err(err(format!("bad edge line in {origin}: `{line}` (want `s t [w]`)")));
        };
        let parse = |tok: &str| -> Result<u32, CliError> {
            tok.parse().map_err(|_| err(format!("bad number `{tok}` in {origin}: `{line}`")))
        };
        edges.push((lineno + 1, (parse(s)?, parse(t)?, w.map(parse).transpose()?.unwrap_or(1))));
    }
    Ok((edges, origin))
}

fn cmd_admin(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let addr = args.required("-a")?;
    let cmd = AdminCmd::parse(args)?;
    let timeout_ms: u64 = args.parsed("--timeout-ms")?.unwrap_or(5_000);
    let retries: u32 = args.parsed("--retries")?.unwrap_or(3);
    let mut client = connect_admin(addr, timeout_ms, retries)?;
    let admin_err = |what: &str, e: std::io::Error| err(format!("{what} failed: {e}"));
    match cmd {
        AdminCmd::Stats => {
            let s = client.stats().map_err(|e| admin_err("stats", e))?;
            writeln!(out, "generation       {}", s.generation)?;
            writeln!(out, "vertices         {}", s.vertices)?;
            writeln!(out, "directed         {}", s.directed)?;
            writeln!(out, "resident         {}", s.resident)?;
            writeln!(out, "requests served  {}", s.requests)?;
            writeln!(out, "protocol errors  {}", s.protocol_errors)?;
        }
        AdminCmd::Info => {
            let i = client.info().map_err(|e| admin_err("info", e))?;
            writeln!(out, "protocol         {}", i.protocol)?;
            writeln!(out, "generation       {}", i.generation)?;
            writeln!(out, "vertices         {}", i.vertices)?;
            writeln!(out, "directed         {}", i.directed)?;
            writeln!(out, "resident         {}", i.resident)?;
            writeln!(out, "resident bytes   {}", i.resident_bytes)?;
            writeln!(out, "overlay edges    {}", i.overlay_edges)?;
            writeln!(out, "overlay affected {}", i.overlay_affected)?;
            writeln!(out, "compactions      {}", i.compactions)?;
            writeln!(out, "requests served  {}", i.requests)?;
            writeln!(out, "protocol errors  {}", i.protocol_errors)?;
            let durability = match i.durability {
                hopdb_server::proto::DURABILITY_DISABLED => "disabled".to_string(),
                0 => "off".to_string(),
                1 => "batch".to_string(),
                2 => "always".to_string(),
                other => format!("unknown ({other})"),
            };
            writeln!(out, "durability       {durability}")?;
            writeln!(out, "wal epoch        {}", i.wal_epoch)?;
            writeln!(out, "wal records      {}", i.wal_records)?;
            writeln!(out, "wal bytes        {}", i.wal_bytes)?;
            writeln!(out, "recovered recs   {}", i.recovered_records)?;
            writeln!(out, "recovered drop   {}", i.recovered_dropped_bytes)?;
            writeln!(out, "checkpoints      {}", i.checkpoints)?;
            writeln!(out, "aborted compacts {}", i.aborted_compactions)?;
        }
        AdminCmd::Swap => {
            let (generation, vertices) = client.swap().map_err(|e| admin_err("swap", e))?;
            writeln!(out, "promoted generation {generation} ({vertices} vertices)")?;
        }
        AdminCmd::Compact => {
            // The rebuild can dwarf the 5 s admin-chat timeout; keep the
            // short bound for connect, then give the compaction room.
            if timeout_ms != 0 {
                client.set_io_timeout(Some(std::time::Duration::from_millis(
                    timeout_ms.max(600_000),
                )))?;
            }
            let (generation, vertices) = client.compact().map_err(|e| admin_err("compact", e))?;
            writeln!(out, "compacted into generation {generation} ({vertices} vertices)")?;
        }
        AdminCmd::Shutdown => {
            client.shutdown_server().map_err(|e| admin_err("shutdown", e))?;
            writeln!(out, "server is shutting down")?;
        }
        AdminCmd::Ingest { source, batch } => {
            let (edges, origin) = read_ingest_edges(source.as_deref())?;
            if edges.is_empty() {
                return Err(err("ingest: no edges to send"));
            }
            let mut last = (0u64, 0u64);
            let mut applied = 0usize;
            for chunk in edges.chunks(batch) {
                let frame: Vec<_> = chunk.iter().map(|&(_, edge)| edge).collect();
                match client.update(&frame) {
                    Ok(reply) => {
                        last = reply;
                        applied += chunk.len();
                    }
                    Err(e) => {
                        // A rejected batch must stop the stream — blindly
                        // sending the rest would apply edges out of order
                        // around the hole. Point at the offending input.
                        let (first, last_line) =
                            (chunk.first().unwrap().0, chunk.last().unwrap().0);
                        return Err(err(format!(
                            "ingest stopped at a rejected batch \
                             ({origin} lines {first}-{last_line}): {e}\n\
                             {applied} of {} edges were applied before it",
                            edges.len()
                        )));
                    }
                }
            }
            let (generation, overlay) = last;
            writeln!(
                out,
                "ingested {} edges (generation {generation}, overlay {overlay} edges)",
                edges.len()
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_vec(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("hopdb-cli-test-{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn gen_stats_build_query_pipeline() {
        let graph = tmp("pipeline.txt");
        let index = tmp("pipeline.idx");

        let out = run_vec(&[
            "gen",
            "--model",
            "glp",
            "--vertices",
            "400",
            "--density",
            "3",
            "--seed",
            "5",
            "-o",
            &graph,
        ])
        .unwrap();
        assert!(out.contains("400 vertices"), "{out}");

        let out = run_vec(&["stats", "-i", &graph]).unwrap();
        assert!(out.contains("|V|              400"), "{out}");
        assert!(out.contains("max degree"), "{out}");

        let out = run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();
        assert!(out.contains("built"), "{out}");
        assert!(std::path::Path::new(&format!("{index}.rank")).exists());

        let out = run_vec(&["query", "-x", &index, "0", "1", "5", "5"]).unwrap();
        assert!(out.contains("dist(5, 5) = 0"), "{out}");
        assert!(out.lines().count() == 2, "{out}");

        // Cross-check CLI answers against an in-process build.
        let file = std::fs::File::open(&graph).unwrap();
        let g = sfgraph::io::read_edge_list(std::io::BufReader::new(file), false, false).unwrap();
        let db = hopdb::build(&g, &HopDbConfig::default());
        let out = run_vec(&["query", "-x", &index, "3", "77"]).unwrap();
        let expect = db.query(3, 77);
        assert!(
            out.contains(&format!("dist(3, 77) = {expect}")),
            "cli said {out}, library says {expect}"
        );

        for f in [&graph, &index, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn directed_weighted_pipeline() {
        let graph = tmp("dw.txt");
        let index = tmp("dw.idx");
        run_vec(&[
            "gen",
            "--model",
            "glp",
            "--vertices",
            "200",
            "--seed",
            "3",
            "--directed",
            "--weighted",
            "--max-weight",
            "5",
            "-o",
            &graph,
        ])
        .unwrap();
        let out =
            run_vec(&["build", "-i", &graph, "--directed", "--weighted", "-o", &index]).unwrap();
        assert!(out.contains("built"), "{out}");
        let out = run_vec(&["query", "-x", &index, "0", "0"]).unwrap();
        assert!(out.contains("= 0"), "{out}");
        for f in [&graph, &index, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn threaded_build_is_byte_identical() {
        let graph = tmp("thr.txt");
        run_vec(&["gen", "--model", "glp", "--vertices", "400", "--seed", "11", "-o", &graph])
            .unwrap();
        let seq_idx = tmp("thr-1.idx");
        let par_idx = tmp("thr-4.idx");
        let out = run_vec(&["build", "-i", &graph, "-o", &seq_idx, "--threads", "1"]).unwrap();
        assert!(out.contains("(1 threads)"), "{out}");
        let out = run_vec(&["build", "-i", &graph, "-o", &par_idx, "--threads", "4"]).unwrap();
        assert!(out.contains("(4 threads)"), "{out}");
        let (seq, par) = (std::fs::read(&seq_idx).unwrap(), std::fs::read(&par_idx).unwrap());
        assert_eq!(seq, par, "serialized indexes diverge between 1 and 4 threads");
        assert_eq!(
            std::fs::read(format!("{seq_idx}.rank")).unwrap(),
            std::fs::read(format!("{par_idx}.rank")).unwrap()
        );
        for f in [&graph, &seq_idx, &par_idx] {
            let _ = std::fs::remove_file(f);
            let _ = std::fs::remove_file(format!("{f}.rank"));
        }
    }

    #[test]
    fn external_build_is_byte_identical_to_memory_and_across_threads() {
        let graph = tmp("ext.txt");
        run_vec(&["gen", "--model", "glp", "--vertices", "300", "--seed", "19", "-o", &graph])
            .unwrap();
        let mem_idx = tmp("ext-mem.idx");
        let ext1_idx = tmp("ext-t1.idx");
        let ext4_idx = tmp("ext-t4.idx");
        run_vec(&["build", "-i", &graph, "-o", &mem_idx]).unwrap();
        // Tiny budget so the external sorters really spill.
        let out = run_vec(&[
            "build",
            "-i",
            &graph,
            "-o",
            &ext1_idx,
            "--external",
            "--memory-records",
            "1024",
            "--block-bytes",
            "4096",
        ])
        .unwrap();
        assert!(out.contains("external I/O:"), "{out}");
        let out = run_vec(&[
            "build",
            "-i",
            &graph,
            "-o",
            &ext4_idx,
            "--external",
            "--memory-records",
            "1024",
            "--block-bytes",
            "4096",
            "--threads",
            "4",
        ])
        .unwrap();
        assert!(out.contains("(4 threads)"), "{out}");
        let mem = std::fs::read(&mem_idx).unwrap();
        let ext1 = std::fs::read(&ext1_idx).unwrap();
        let ext4 = std::fs::read(&ext4_idx).unwrap();
        assert_eq!(ext1, mem, "external build diverges from the in-memory engine");
        assert_eq!(ext4, ext1, "threaded external build diverges from sequential");
        for f in [&graph, &mem_idx, &ext1_idx, &ext4_idx] {
            let _ = std::fs::remove_file(f);
            let _ = std::fs::remove_file(format!("{f}.rank"));
        }
    }

    #[test]
    fn batch_query_file_and_threads() {
        let graph = tmp("batch.txt");
        let index = tmp("batch.idx");
        let pairs_file = tmp("batch.pairs");
        run_vec(&["gen", "--model", "glp", "--vertices", "300", "--seed", "9", "-o", &graph])
            .unwrap();
        run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();
        std::fs::write(&pairs_file, "# header comment\n0 1\n5 5   # self pair\n\n7 42\n").unwrap();

        let batch = run_vec(&["query", "-x", &index, "--pairs", &pairs_file]).unwrap();
        assert_eq!(batch.lines().count(), 3, "{batch}");
        assert!(batch.contains("dist(5, 5) = 0"), "{batch}");

        // Same answers pair-by-pair, any thread count, any mix of
        // positional and file pairs — order is input order.
        let threaded =
            run_vec(&["query", "-x", &index, "--pairs", &pairs_file, "--threads", "4"]).unwrap();
        assert_eq!(batch, threaded);
        let mixed =
            run_vec(&["query", "-x", &index, "3", "4", "--pairs", &pairs_file, "--threads", "0"])
                .unwrap();
        assert!(mixed.starts_with("dist(3, 4)"), "{mixed}");
        assert!(mixed.ends_with(&batch), "positional pairs come first:\n{mixed}");

        assert!(run_vec(&["query", "-x", &index, "--pairs", "/nonexistent"]).is_err());
        std::fs::write(&pairs_file, "1 2 3\n").unwrap();
        assert!(run_vec(&["query", "-x", &index, "--pairs", &pairs_file])
            .unwrap_err()
            .0
            .contains("bad pair line"));
        for f in [&graph, &index, &pairs_file, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn errors_are_friendly() {
        assert!(run_vec(&[]).is_err());
        assert!(run_vec(&["frobnicate"]).unwrap_err().0.contains("unknown command"));
        assert!(run_vec(&["gen", "-o", "/tmp/x"]).unwrap_err().0.contains("--vertices"));
        assert!(run_vec(&["query", "-x", "/nonexistent/idx", "1", "2"]).is_err());
        let graph = tmp("err.txt");
        run_vec(&["gen", "--model", "glp", "--vertices", "50", "-o", &graph]).unwrap();
        let index = tmp("err.idx");
        run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();
        assert!(run_vec(&["query", "-x", &index, "1"]).unwrap_err().0.contains("even number"));
        assert!(run_vec(&["query", "-x", &index, "1", "999999"])
            .unwrap_err()
            .0
            .contains("out of range"));
        for f in [&graph, &index, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn help_prints_usage() {
        let out = run_vec(&["help"]).unwrap();
        assert!(out.contains("usage: hopdb-cli"));
        assert!(out.contains("serve"), "{out}");
        assert!(out.contains("admin"), "{out}");
    }

    #[test]
    fn serve_and_admin_roundtrip() {
        let graph = tmp("serve.txt");
        let index = tmp("serve.idx");
        let announce = tmp("serve.addr");
        run_vec(&["gen", "--model", "glp", "--vertices", "250", "--seed", "21", "-o", &graph])
            .unwrap();
        run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();

        // The daemon blocks until shutdown; run it on its own thread
        // and learn the ephemeral port from the announce file.
        let serve_args: Vec<String> = [
            "serve",
            "-x",
            &index,
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--announce-file",
            &announce,
            "--allow-remote-shutdown",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            run(&serve_args, &mut out).map(|()| String::from_utf8(out).unwrap())
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&announce) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never announced its address");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        // Served answers (original vertex ids, via the .rank sidecar)
        // must match the CLI's direct query path.
        let direct = run_vec(&["query", "-x", &index, "0", "1", "17", "42"]).unwrap();
        let mut client = hopdb_server::Client::connect(&addr).unwrap();
        let served = client.query(&[(0, 1), (17, 42)]).unwrap();
        for (line, dist) in direct.lines().zip(&served) {
            let rendered =
                if *dist == INF_DIST { "unreachable".to_string() } else { dist.to_string() };
            assert!(line.ends_with(&format!("= {rendered}")), "{line} vs {dist}");
        }

        let stats = run_vec(&["admin", "-a", &addr, "stats"]).unwrap();
        assert!(stats.contains("generation       1"), "{stats}");
        assert!(stats.contains("vertices         250"), "{stats}");
        // No --swap-path: swap re-loads the boot index, bumping the
        // generation without changing answers.
        let swap = run_vec(&["admin", "-a", &addr, "swap"]).unwrap();
        assert!(swap.contains("promoted generation 2"), "{swap}");
        assert_eq!(client.query(&[(0, 1), (17, 42)]).unwrap(), served);

        assert!(run_vec(&["admin", "-a", &addr, "frobnicate"]).is_err());
        let bye = run_vec(&["admin", "-a", &addr, "shutdown"]).unwrap();
        assert!(bye.contains("shutting down"), "{bye}");
        let out = server.join().unwrap().unwrap();
        assert!(out.contains("serving"), "{out}");
        assert!(out.contains("server stopped"), "{out}");
        for f in [&graph, &index, &announce, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn serve_ingest_info_compact_roundtrip() {
        let graph = tmp("live.txt");
        let index = tmp("live.idx");
        let announce = tmp("live.addr");
        let edges_file = tmp("live.edges");
        run_vec(&["gen", "--model", "glp", "--vertices", "200", "--seed", "33", "-o", &graph])
            .unwrap();
        run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();

        // --graph enables compaction; threshold 0 = manual only.
        let serve_args: Vec<String> = [
            "serve",
            "-x",
            &index,
            "--graph",
            &graph,
            "--compact-threshold",
            "0",
            "--addr",
            "127.0.0.1:0",
            "--announce-file",
            &announce,
            "--allow-remote-shutdown",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            run(&serve_args, &mut out).map(|()| String::from_utf8(out).unwrap())
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&announce) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never announced its address");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        let mut client = hopdb_server::Client::connect(&addr).unwrap();
        let before = client.query_one(0, 199).unwrap();
        assert!(before > 1, "vertices 0 and 199 are already adjacent; pick others");

        // Ingest a weight-1 edge between them (plus a comment and a
        // weighted line to exercise the parser) and watch the distance
        // drop to 1 without a rebuild.
        std::fs::write(&edges_file, "# live edges\n0 199\n3 4 2\n").unwrap();
        let ingest = run_vec(&["admin", "-a", &addr, "ingest", &edges_file]).unwrap();
        assert!(ingest.contains("ingested 2 edges (generation 1"), "{ingest}");
        assert_eq!(client.query_one(0, 199).unwrap(), 1);

        let info = run_vec(&["admin", "-a", &addr, "info"]).unwrap();
        assert!(info.contains("generation       1"), "{info}");
        assert!(info.contains("overlay edges    2"), "{info}");
        assert!(info.contains("compactions      0"), "{info}");

        // Compaction folds the overlay into a fresh frozen generation;
        // answers must not change across the promotion.
        let compact = run_vec(&["admin", "-a", &addr, "compact"]).unwrap();
        assert!(compact.contains("compacted into generation 2"), "{compact}");
        assert_eq!(client.query_one(0, 199).unwrap(), 1);
        let info = run_vec(&["admin", "-a", &addr, "info"]).unwrap();
        assert!(info.contains("generation       2"), "{info}");
        assert!(info.contains("overlay edges    0"), "{info}");
        assert!(info.contains("compactions      1"), "{info}");
        // The plain stats verb sees the new generation too — scripts
        // can poll either for promotion.
        let stats = run_vec(&["admin", "-a", &addr, "stats"]).unwrap();
        assert!(stats.contains("generation       2"), "{stats}");

        // Parse errors fail before any socket I/O.
        std::fs::write(&edges_file, "1 2 3 4\n").unwrap();
        let msg = run_vec(&["admin", "-a", &addr, "ingest", &edges_file]).unwrap_err().0;
        assert!(msg.contains("bad edge line"), "{msg}");
        let msg = run_vec(&["admin", "-a", &addr, "stats", "extra"]).unwrap_err().0;
        assert!(msg.contains("no further arguments"), "{msg}");

        run_vec(&["admin", "-a", &addr, "shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        for f in [&graph, &index, &announce, &edges_file, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn shard_splits_into_loadable_images_with_sidecars() {
        let graph = tmp("shard.txt");
        let index = tmp("shard.idx");
        run_vec(&["gen", "--model", "glp", "--vertices", "300", "--seed", "13", "-o", &graph])
            .unwrap();
        run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();

        let out = run_vec(&["shard", "-x", &index, "--shards", "3"]).unwrap();
        assert_eq!(out.lines().count(), 3, "{out}");
        assert!(out.contains("shard 0/3: pivots [0, "), "{out}");

        let whole = FlatIndex::load(Path::new(&index)).unwrap();
        let mut cleanup = vec![graph.clone(), index.clone(), format!("{index}.rank")];
        for i in 0..3 {
            let path = format!("{index}.shard{i}");
            // Every shard is a complete index over the full vertex set...
            let flat = FlatIndex::load(Path::new(&path)).unwrap();
            assert_eq!(flat.num_vertices(), whole.num_vertices());
            // ...with a decodable range sidecar and the ranking copied
            // alongside so daemons serve original vertex ids.
            let spec =
                hoplabels::ShardSpec::decode(&std::fs::read(format!("{path}.shard")).unwrap())
                    .unwrap();
            assert_eq!(spec.index, i);
            assert_eq!(spec.count, 3);
            assert!(std::path::Path::new(&format!("{path}.rank")).exists());
            cleanup.extend([path.clone(), format!("{path}.shard"), format!("{path}.rank")]);
        }

        assert!(run_vec(&["shard", "-x", &index]).unwrap_err().0.contains("--shards"));
        assert!(run_vec(&["shard", "-x", &graph, "--shards", "2"])
            .unwrap_err()
            .0
            .contains("cannot shard"));
        for f in cleanup {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn ingest_stops_at_the_first_nacked_batch_with_its_line_range() {
        let graph = tmp("nack.txt");
        let index = tmp("nack.idx");
        let announce = tmp("nack.addr");
        let edges_file = tmp("nack.edges");
        run_vec(&["gen", "--model", "glp", "--vertices", "120", "--seed", "27", "-o", &graph])
            .unwrap();
        run_vec(&["build", "-i", &graph, "-o", &index]).unwrap();

        let serve_args: Vec<String> = [
            "serve",
            "-x",
            &index,
            "--addr",
            "127.0.0.1:0",
            "--announce-file",
            &announce,
            "--allow-remote-shutdown",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let mut out = Vec::new();
            run(&serve_args, &mut out).map(|()| String::from_utf8(out).unwrap())
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&announce) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never announced its address");
            std::thread::sleep(std::time::Duration::from_millis(20));
        };

        // Line 4 carries a zero-weight edge the server nacks. With
        // --batch 2 it lands in the second frame (input lines 4-5);
        // the stream must stop there — the lines after the bad frame
        // must never be sent — and the error must name the range.
        std::fs::write(&edges_file, "# comment\n0 50\n1 51\n2 52 0\n3 53\n4 54\n5 55\n").unwrap();
        let msg =
            run_vec(&["admin", "-a", &addr, "--batch", "2", "ingest", &edges_file]).unwrap_err().0;
        assert!(msg.contains("lines 4-5"), "{msg}");
        assert!(msg.contains("weight 0"), "{msg}");
        assert!(msg.contains("2 of 6 edges were applied"), "{msg}");

        // Only the first frame reached the daemon: the overlay holds
        // exactly 2 edges, none from or after the rejected frame.
        let info = run_vec(&["admin", "-a", &addr, "info"]).unwrap();
        assert!(info.contains("overlay edges    2"), "{info}");
        let mut client = hopdb_server::Client::connect(&addr).unwrap();
        assert_eq!(client.query_one(0, 50).unwrap(), 1, "the frame before the nack applied");

        run_vec(&["admin", "-a", &addr, "shutdown"]).unwrap();
        server.join().unwrap().unwrap();
        for f in [&graph, &index, &announce, &edges_file, &format!("{index}.rank")] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn admin_times_out_against_a_dead_server() {
        // A listener that is bound but never accepts (and never
        // answers) models a wedged daemon: the kernel completes the
        // TCP handshake from the backlog, then nothing ever arrives.
        // Before --timeout-ms, `admin stats` would hang forever here.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let started = std::time::Instant::now();
        let got = run_vec(&["admin", "-a", &addr, "--timeout-ms", "300", "stats"]);
        let elapsed = started.elapsed();
        let msg = got.unwrap_err().0;
        assert!(msg.contains("stats failed"), "{msg}");
        assert!(
            elapsed >= std::time::Duration::from_millis(250),
            "returned before the timeout could have fired: {elapsed:?}"
        );
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "timeout did not bound the hang: {elapsed:?}"
        );
        drop(listener);
    }

    #[test]
    fn post_prune_flag_shrinks_index() {
        let graph = tmp("pp.txt");
        run_vec(&["gen", "--model", "glp", "--vertices", "300", "--seed", "8", "-o", &graph])
            .unwrap();
        let plain_idx = tmp("pp-plain.idx");
        let pruned_idx = tmp("pp-pruned.idx");
        run_vec(&["build", "-i", &graph, "-o", &plain_idx, "--strategy", "doubling"]).unwrap();
        run_vec(&[
            "build",
            "-i",
            &graph,
            "-o",
            &pruned_idx,
            "--strategy",
            "doubling",
            "--post-prune",
        ])
        .unwrap();
        let plain = std::fs::metadata(&plain_idx).unwrap().len();
        let pruned = std::fs::metadata(&pruned_idx).unwrap().len();
        assert!(pruned <= plain, "post-pruned {pruned} > plain {plain}");
        for f in [&graph, &plain_idx, &pruned_idx] {
            let _ = std::fs::remove_file(f);
            let _ = std::fs::remove_file(format!("{f}.rank"));
        }
    }
}
