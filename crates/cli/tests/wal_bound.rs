//! Regression test: the write-ahead log must not grow without bound
//! between checkpoints. A long ingest run that cycles a small edge
//! pool keeps the overlay tiny (the overlay dedups), so before
//! `--wal-max-bytes` nothing ever triggered a checkpoint and the log
//! grew by one record per acknowledged batch, forever. With the cap
//! set, the daemon must checkpoint (checkpoint = truncation point)
//! whenever the log exceeds it, keeping the WAL directory bounded all
//! run long while every answer stays live.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use hopdb_server::wal::Durability;
use hopdb_server::{serve, Client, ServerConfig};
use sfgraph::VertexId;

const N: u64 = 50;
/// WAL cap under test: small enough that a short run overflows it
/// many times.
const CAP: u64 = 8 << 10;
const BATCHES: usize = 3_000;

fn run_cli(args: &[&str]) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    hopdb_cli::run(&args, &mut out).expect("cli step");
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| entries.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0)
}

struct Fixture {
    dir: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

#[test]
fn long_ingest_keeps_the_wal_directory_bounded() {
    let dir = std::env::temp_dir().join(format!("hopdb-walbound-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("fixture dir");
    let fx = Fixture { dir };
    let graph = fx.dir.join("graph.txt").to_string_lossy().into_owned();
    let index = fx.dir.join("graph.idx").to_string_lossy().into_owned();
    run_cli(&["gen", "--model", "glp", "--vertices", &N.to_string(), "--seed", "7", "-o", &graph]);
    run_cli(&["build", "-i", &graph, "-o", &index]);

    let wal_dir = fx.dir.join("wal");
    let config = ServerConfig {
        source_graph: Some(PathBuf::from(&graph)),
        // The overlay alone must never trigger compaction here — the
        // whole point is that the WAL cap has to.
        compact_threshold: usize::MAX,
        wal_dir: Some(wal_dir.clone()),
        durability: Durability::Off,
        wal_max_bytes: Some(CAP),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", Path::new(&index), config).expect("serve");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // A fixed pool of distinct pairs, cycled: the overlay dedups to 12
    // edges while the log appends one ~60-byte record per batch — the
    // exact shape that used to grow the WAL forever.
    let pool: Vec<(VertexId, VertexId, u32)> =
        (0..12).map(|i| (i as VertexId, (i + 14) as VertexId, 1)).collect();
    let mut appended = 0u64;
    let mut max_seen = 0u64;
    for round in 0..BATCHES {
        let at = (round * 4) % pool.len();
        let batch = [
            pool[at],
            pool[(at + 1) % pool.len()],
            pool[(at + 2) % pool.len()],
            pool[(at + 3) % pool.len()],
        ];
        client.update(&batch).expect("ingest batch");
        appended += 8 + 4 + 12 * batch.len() as u64;
        if round % 16 == 0 {
            max_seen = max_seen.max(dir_bytes(&wal_dir));
        }
    }
    max_seen = max_seen.max(dir_bytes(&wal_dir));

    // The run appended far more log than the bound below, so staying
    // under it proves the checkpoint loop kept truncating. The slack
    // over CAP covers records that land while a checkpoint is running.
    assert!(appended > 10 * CAP, "run too short to prove anything: {appended} bytes appended");
    assert!(
        max_seen < 10 * CAP,
        "WAL directory grew unbounded: peak {max_seen} bytes (cap {CAP}, appended {appended})"
    );

    // Steady state: the compactor catches up and the log returns under
    // the cap; the cap-triggered checkpoints are visible in `info`.
    let deadline = Instant::now() + Duration::from_secs(30);
    let info = loop {
        let info = client.info().expect("info");
        if info.wal_bytes < CAP {
            break info;
        }
        assert!(Instant::now() < deadline, "WAL never came back under the cap: {info:?}");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(info.checkpoints >= 2, "expected repeated cap-triggered checkpoints: {info:?}");
    assert!(dir_bytes(&wal_dir) < 2 * CAP, "directory does not reflect the truncation");

    // The data path stayed live through all of it.
    assert_eq!(client.query_one(0, 14).expect("post-run query"), 1);

    handle.shutdown();
}
