//! Kill-and-restart harness for the durability tier: spawn the real
//! `hopdb-cli serve` daemon with a WAL, SIGKILL it at randomized
//! points during ingest and during a compaction checkpoint, restart
//! it, and assert the recovered daemon's answers are bit-identical to
//! a from-scratch oracle of the acknowledged update prefix (plus, at
//! most, the one batch that was in flight when the process died).
//! Under `--durability always` no acknowledged batch may ever be lost.
//!
//! SIGKILL validates the recovery/replay/checkpoint-ordering logic:
//! written bytes survive process death in the page cache, so torn
//! *tails* are exercised separately by `EXTMEM_FAULT_*`-planted
//! crashes inside WAL writes and by the corruption corpus.

#![cfg(unix)]

use std::io::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hopdb_server::proto::{Request, RequestBody, UNREACHABLE};
use hopdb_server::Client;
use sfgraph::builder::GraphBuilder;
use sfgraph::traversal::all_pairs;
use sfgraph::{Dist, Graph, VertexId};

const N: usize = 60;

/// Deterministic-per-run LCG; the seed is printed so a failing kill
/// schedule can be replayed by hand.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct Fixture {
    dir: PathBuf,
    graph_path: PathBuf,
    index_path: PathBuf,
    graph: Graph,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Generate a graph and build its index through the real CLI, exactly
/// as a deployment would.
fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("hopdb-crash-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let graph_path = dir.join("graph.txt");
    let index_path = dir.join("graph.idx");

    let graph = graphgen::glp(&graphgen::GlpParams::with_density(N, 3.0, 4242));
    let file = std::fs::File::create(&graph_path).expect("create edge list");
    sfgraph::io::write_edge_list(&graph, std::io::BufWriter::new(file)).expect("write edge list");

    let status = Command::new(env!("CARGO_BIN_EXE_hopdb-cli"))
        .args(["build", "-i"])
        .arg(&graph_path)
        .arg("-o")
        .arg(&index_path)
        .stdout(Stdio::null())
        .status()
        .expect("run build");
    assert!(status.success(), "cli build failed");
    Fixture { dir, graph_path, index_path, graph }
}

/// Spawn the daemon and wait for its announce file; extra_env plants
/// `EXTMEM_FAULT_*` crash points for the torn-write trials.
// The whole point is handing the live Child to the caller to SIGKILL;
// every exit path (including assert_recovered) kills and reaps it.
#[allow(clippy::zombie_processes)]
fn spawn_daemon(
    fx: &Fixture,
    wal_dir: &PathBuf,
    extra_env: &[(&str, String)],
) -> (Child, SocketAddr) {
    let announce = fx.dir.join("announce");
    std::fs::remove_file(&announce).ok();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hopdb-cli"));
    cmd.args(["serve", "-x"])
        .arg(&fx.index_path)
        .arg("--graph")
        .arg(&fx.graph_path)
        .arg("--wal-dir")
        .arg(wal_dir)
        .args(["--durability", "always", "--addr", "127.0.0.1:0", "--backend", "threads"])
        .arg("--announce-file")
        .arg(&announce)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in extra_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn daemon");
    for _ in 0..400 {
        if let Ok(text) = std::fs::read_to_string(&announce) {
            if let Ok(addr) = text.trim().parse() {
                return (child, addr);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().ok();
    child.wait().ok();
    panic!("daemon never announced its address");
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect_retry(&addr, Some(Duration::from_secs(10)), 5).expect("connect")
}

/// Expected probe answers for the base graph plus `edges`, from
/// scratch (BFS truth, the strongest oracle available).
fn oracle(
    fx: &Fixture,
    edges: &[(VertexId, VertexId, Dist)],
    pairs: &[(VertexId, VertexId)],
) -> Vec<Dist> {
    let mut b = GraphBuilder::new_undirected(fx.graph.num_vertices()).weighted();
    for (u, v, w) in fx.graph.edge_list() {
        b.add_weighted_edge(u, v, w);
    }
    for &(u, v, w) in edges {
        b.add_weighted_edge(u, v, w);
    }
    let truth = all_pairs(&b.build());
    pairs
        .iter()
        .map(|&(s, t)| {
            let d = truth[s as usize][t as usize];
            if d == sfgraph::INF_DIST {
                UNREACHABLE
            } else {
                d
            }
        })
        .collect()
}

fn probes() -> Vec<(VertexId, VertexId)> {
    (0..N as VertexId).map(|i| (i, (i * 37 + 11) % N as VertexId)).collect()
}

fn random_batch(rng: &mut Lcg) -> Vec<(VertexId, VertexId, Dist)> {
    let len = 1 + rng.below(3) as usize;
    (0..len)
        .map(|_| {
            let s = rng.below(N as u64) as VertexId;
            let t = (s + 1 + rng.below(N as u64 - 1) as VertexId) % N as VertexId;
            (s, t, 1)
        })
        .collect()
}

/// Restart after the kill and check the recovered answers against the
/// acceptable states: every acked batch present, plus at most the one
/// in-flight batch (WAL records are batch-atomic under CRC, so no
/// other state can legally surface).
fn assert_recovered(
    fx: &Fixture,
    wal_dir: &PathBuf,
    acked: &[Vec<(VertexId, VertexId, Dist)>],
    inflight: Option<&Vec<(VertexId, VertexId, Dist)>>,
    context: &str,
) {
    let (mut child, addr) = spawn_daemon(fx, wal_dir, &[]);
    let mut client = connect(addr);
    let pairs = probes();
    let got = client.query(&pairs).expect("query after recovery");

    let acked_edges: Vec<_> = acked.concat();
    let want_acked = oracle(fx, &acked_edges, &pairs);
    let accepted = if got == want_acked {
        true
    } else if let Some(inflight) = inflight {
        let mut with_inflight = acked_edges.clone();
        with_inflight.extend_from_slice(inflight);
        got == oracle(fx, &with_inflight, &pairs)
    } else {
        false
    };
    assert!(
        accepted,
        "{context}: recovered answers match neither the acked prefix nor acked+in-flight\n\
         acked batches: {acked:?}\nin-flight: {inflight:?}"
    );
    child.kill().ok();
    child.wait().ok();
}

#[test]
fn sigkill_during_ingest_recovers_the_acked_prefix() {
    let fx = fixture("ingest");
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64 | 1)
        .unwrap_or(1);
    println!("kill schedule seed: {seed:#x}");
    let mut rng = Lcg(seed);

    for trial in 0..3 {
        let wal_dir = fx.dir.join(format!("wal-ingest-{trial}"));
        let (mut child, addr) = spawn_daemon(&fx, &wal_dir, &[]);
        let mut client = connect(addr);

        // Ack a random number of batches synchronously...
        let acked: Vec<_> = (0..rng.below(5)).map(|_| random_batch(&mut rng)).collect();
        for batch in &acked {
            client.update(batch).expect("acked update");
        }
        // ...then fire one more without waiting for its ack and kill
        // the daemon while it is (maybe) mid-append.
        let inflight = random_batch(&mut rng);
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&Request { id: 1, body: RequestBody::Update(inflight.clone()) }.encode())
            .expect("fire in-flight update");
        std::thread::sleep(Duration::from_millis(rng.below(8)));
        child.kill().expect("SIGKILL");
        child.wait().expect("reap");
        drop(raw);

        assert_recovered(&fx, &wal_dir, &acked, Some(&inflight), &format!("ingest trial {trial}"));
    }
}

#[test]
fn sigkill_during_compaction_loses_nothing() {
    let fx = fixture("compact");
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64 | 1)
        .unwrap_or(1);
    println!("kill schedule seed: {seed:#x}");
    let mut rng = Lcg(seed);

    for trial in 0..3 {
        let wal_dir = fx.dir.join(format!("wal-compact-{trial}"));
        let (mut child, addr) = spawn_daemon(&fx, &wal_dir, &[]);
        let mut client = connect(addr);

        let acked: Vec<_> = (0..1 + rng.below(3)).map(|_| random_batch(&mut rng)).collect();
        for batch in &acked {
            client.update(batch).expect("acked update");
        }
        // Fire the compaction without waiting and kill the daemon a
        // random slice into the rebuild/checkpoint. Every acked batch
        // must survive whether the kill lands before or after the
        // manifest flip.
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&Request { id: 1, body: RequestBody::Compact }.encode())
            .expect("fire compact");
        std::thread::sleep(Duration::from_millis(rng.below(60)));
        child.kill().expect("SIGKILL");
        child.wait().expect("reap");
        drop(raw);

        assert_recovered(&fx, &wal_dir, &acked, None, &format!("compact trial {trial}"));
    }
}

#[test]
fn planted_crash_inside_a_wal_write_recovers_cleanly() {
    // A crash *inside* the WAL append itself (not just between
    // syscalls): the daemon aborts after a fixed number of writes to
    // WAL files, which can land mid-record. Recovery must truncate the
    // torn tail and serve the longest acked prefix; the in-flight
    // batch at the crash point may or may not have made it.
    let fx = fixture("planted");
    // Keep "wal-" out of the directory name: the fault path filter
    // must match only the log files themselves.
    let wal_dir = fx.dir.join("planted");
    let env = [
        ("EXTMEM_FAULT_PATH_FILTER", "wal-".to_string()),
        // Headers + a few records land, then the process aborts mid-write.
        ("EXTMEM_FAULT_CRASH_AFTER_WRITES", "3".to_string()),
    ];
    let (mut child, addr) = spawn_daemon(&fx, &wal_dir, &env);
    let mut client = connect(addr);

    let batches: Vec<Vec<(VertexId, VertexId, Dist)>> =
        vec![vec![(0, 30, 1)], vec![(5, 55, 1)], vec![(10, 40, 1)], vec![(2, 33, 1)]];
    let mut acked: Vec<Vec<(VertexId, VertexId, Dist)>> = Vec::new();
    let mut inflight = None;
    for batch in &batches {
        match client.update(batch) {
            Ok(_) => acked.push(batch.clone()),
            Err(_) => {
                // The daemon died mid-append: this batch was never
                // acked, but its record may be partially on disk.
                inflight = Some(batch.clone());
                break;
            }
        }
    }
    assert!(inflight.is_some(), "the planted crash never fired");
    child.wait().expect("reap");

    assert_recovered(&fx, &wal_dir, &acked, inflight.as_ref(), "planted crash");
}
