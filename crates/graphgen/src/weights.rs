//! Attach random positive weights to an unweighted graph.
//!
//! Used for the undirected-weighted rows of Table 6 (the rating networks
//! amaRating/epinRating/movRating/bookRating are weighted in the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sfgraph::{Dist, Graph, GraphBuilder};

/// Copy `g`, assigning each edge an independent uniform weight in
/// `[min_w, max_w]` (inclusive; both must be ≥ 1).
pub fn with_random_weights(g: &Graph, min_w: Dist, max_w: Dist, seed: u64) -> Graph {
    assert!(min_w >= 1 && min_w <= max_w, "need 1 <= min_w <= max_w");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if g.is_directed() {
        GraphBuilder::new_directed(g.num_vertices())
    } else {
        GraphBuilder::new_undirected(g.num_vertices())
    }
    .weighted();
    for (u, v, _) in g.edge_list() {
        b.add_weighted_edge(u, v, rng.gen_range(min_w..=max_w));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_test_helpers::*;

    mod graphgen_test_helpers {
        pub use crate::classic::path;
    }

    #[test]
    fn weights_in_range_and_deterministic() {
        let g = path(50);
        let w1 = with_random_weights(&g, 2, 9, 5);
        let w2 = with_random_weights(&g, 2, 9, 5);
        assert!(w1.is_weighted());
        assert_eq!(w1.edge_list(), w2.edge_list());
        for (_, _, w) in w1.edge_list() {
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    fn preserves_topology() {
        let g = path(10);
        let w = with_random_weights(&g, 1, 100, 3);
        assert_eq!(w.num_edges(), g.num_edges());
        assert_eq!(w.num_vertices(), g.num_vertices());
        assert!(w.has_edge(3, 4));
    }

    #[test]
    #[should_panic(expected = "min_w")]
    fn rejects_zero_minimum() {
        with_random_weights(&path(3), 0, 5, 1);
    }
}
