//! Deterministic topologies, including the paper's worked examples.
//!
//! [`road_graph_gr`], [`star_graph_gs`], and [`example_graph_fig3`] encode
//! the exact graphs of Figures 1–3 so the labeling engines can be tested
//! against the labelings printed in Tables 1–4 and Figure 5 of the paper.

use sfgraph::{Graph, GraphBuilder, VertexId};

/// The road graph `G_R` of Fig. 1 (undirected, 5 vertices).
///
/// Vertices `a..e` map to ids `0..5`. Edges: `a–b, b–c, a–d, a–e` —
/// reconstructed from the distances implied by the 2-hop covers in
/// Tables 1 and 3 (e.g. `dist(c,d) = 3` via `c–b–a–d`).
pub fn road_graph_gr() -> Graph {
    let mut b = GraphBuilder::new_undirected(5);
    b.add_edge(0, 1); // a – b
    b.add_edge(1, 2); // b – c
    b.add_edge(0, 3); // a – d
    b.add_edge(0, 4); // a – e
    b.build()
}

/// The star graph `G_S` of Fig. 2 (undirected, centre `a` = id 0 with
/// leaves `b..f` = ids 1..6).
pub fn star_graph_gs() -> Graph {
    star(6)
}

/// The 8-vertex directed example graph `G` of Fig. 3(a).
///
/// Vertex ids equal the paper's (already ranked by non-increasing degree:
/// id 0 is the top-degree vertex). The edge set is reconstructed from the
/// initialization entries of the labeling in Fig. 5 — each distance-1
/// label entry corresponds to one edge:
///
/// ```text
/// 0→1 1→0 2→0 2→3 2→6 0→6 3→1 3→7 4→0 4→1 4→5 5→3 7→2
/// ```
pub fn example_graph_fig3() -> Graph {
    let mut b = GraphBuilder::new_directed(8);
    for (u, v) in [
        (0, 1),
        (1, 0),
        (2, 0),
        (2, 3),
        (2, 6),
        (0, 6),
        (3, 1),
        (3, 7),
        (4, 0),
        (4, 1),
        (4, 5),
        (5, 3),
        (7, 2),
    ] {
        b.add_edge(u, v);
    }
    b.build()
}

/// Star: vertex 0 is the centre, vertices `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new_undirected(n);
    for leaf in 1..n {
        b.add_edge(0, leaf as VertexId);
    }
    b.build()
}

/// Simple path `0 – 1 – … – n-1`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new_undirected(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i as VertexId, (i + 1) as VertexId);
    }
    b.build()
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new_undirected(n);
    for i in 0..n {
        b.add_edge(i as VertexId, ((i + 1) % n) as VertexId);
    }
    b.build()
}

/// `rows × cols` grid — a road-network-like topology with no hubs and a
/// large diameter, the adversarial case for degree ranking (§7).
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut b = GraphBuilder::new_undirected(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new_undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::traversal::all_pairs;
    use sfgraph::Direction;

    #[test]
    fn gr_distances_match_table_1() {
        // Table 1's 2-hop cover implies these exact distances.
        let g = road_graph_gr();
        let d = all_pairs(&g);
        let (a, bb, c, dd, e) = (0usize, 1usize, 2usize, 3usize, 4usize);
        assert_eq!(d[a][bb], 1);
        assert_eq!(d[a][c], 2);
        assert_eq!(d[a][dd], 1);
        assert_eq!(d[a][e], 1);
        assert_eq!(d[bb][c], 1);
        assert_eq!(d[bb][dd], 2);
        assert_eq!(d[bb][e], 2);
        assert_eq!(d[c][e], 3);
        assert_eq!(d[dd][c], 3);
        assert_eq!(d[e][dd], 2);
    }

    #[test]
    fn gs_is_a_five_leaf_star() {
        let g = star_graph_gs();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(0), 5);
        let d = all_pairs(&g);
        assert_eq!(d[1][2], 2);
        assert_eq!(d[0][3], 1);
    }

    #[test]
    fn fig3_graph_shape() {
        let g = example_graph_fig3();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 13);
        // Degrees must be non-increasing in id (the paper pre-ranked them).
        let degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        for w in degs.windows(2) {
            assert!(w[0] >= w[1], "ids must follow non-increasing degree: {degs:?}");
        }
        // Spot-check adjacency used by Example 1.
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(3, 1));
        assert!(g.has_edge(7, 2));
        assert_eq!(g.neighbors(6, Direction::Out), &[] as &[VertexId]);
        assert_eq!(g.neighbors(6, Direction::In), &[0, 2]);
    }

    #[test]
    fn fig3_distances_used_in_example_1() {
        let g = example_graph_fig3();
        let d = all_pairs(&g);
        assert_eq!(d[2][1], 2); // 2→0→1 (the pruned path 2→3→1 also has length 2)
        assert_eq!(d[4][2], 4); // 4→5→3→7→2
        assert_eq!(d[5][2], 3);
        assert_eq!(d[5][0], 3);
        assert_eq!(d[2][7], 2);
    }

    #[test]
    fn grid_diameter() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        let d = all_pairs(&g);
        assert_eq!(d[0][11], 5); // (0,0) -> (2,3): 2 + 3
    }

    #[test]
    fn cycle_wraps() {
        let g = cycle(6);
        let d = all_pairs(&g);
        assert_eq!(d[0][3], 3);
        assert_eq!(d[0][5], 1);
    }

    #[test]
    fn complete_has_diameter_one() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        let d = all_pairs(&g);
        assert_eq!(d[2][4], 1);
    }
}
