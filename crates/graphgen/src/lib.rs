#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # graphgen — synthetic workload generators
//!
//! The paper's scalability study (§8, Fig. 9, datasets syn1–syn6) generates
//! scale-free graphs with the **GLP** (Generalized Linear Preference) model
//! of Bu & Towsley, parameterised exactly as in the paper (`m = 1.13`,
//! `m0 = 10`, power-law exponent ≈ 2.155). Because the real SNAP/KONECT
//! datasets are not redistributable, the whole evaluation harness runs on
//! GLP graphs with matched density — see DESIGN.md §2 for the substitution
//! argument.
//!
//! Also provided:
//! * [`ba`] — the Barabási–Albert preferential-attachment model;
//! * [`er`] — Erdős–Rényi `G(n, m)` graphs (non-scale-free contrast);
//! * [`classic`] — the paper's worked-example topologies (the road graph
//!   `G_R` of Fig. 1, the star `G_S` of Fig. 2, the 8-vertex example of
//!   Fig. 3) plus paths, cycles, grids, and complete graphs;
//! * [`weights`] — random positive weights for the weighted experiments;
//! * [`directed`] — orientation helpers to derive directed workloads from
//!   undirected scale-free topologies.
//!
//! Every generator takes an explicit seed and is fully deterministic.

pub mod ba;
pub mod classic;
pub mod directed;
pub mod er;
pub mod glp;
pub mod weights;

pub use ba::barabasi_albert;
pub use classic::{
    complete, cycle, example_graph_fig3, grid, path, road_graph_gr, star, star_graph_gs,
};
pub use directed::orient_scale_free;
pub use er::erdos_renyi;
pub use glp::{glp, GlpParams};
pub use weights::with_random_weights;
