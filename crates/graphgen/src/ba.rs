//! Barabási–Albert preferential attachment (reference \[8\] of the paper).
//!
//! Every new vertex attaches `m` edges to existing vertices with
//! probability proportional to their degree; produces power-law graphs
//! with exponent ≈ 3. GLP generalises this model; BA is kept as an
//! independent generator for cross-checks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sfgraph::hash::FxHashSet;
use sfgraph::{Graph, GraphBuilder, VertexId};

/// Generate an undirected BA graph with `n` vertices, `m` edges per new
/// vertex, from `seed`.
///
/// # Panics
/// Panics if `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "m must be positive");
    assert!(n > m, "need more vertices than edges per step");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let mut edges: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let mut b = GraphBuilder::new_undirected(n);

    // Seed: a clique-ish chain of m + 1 vertices so every vertex has
    // positive degree before preferential sampling starts.
    for i in 0..m {
        let (u, v) = (i as VertexId, (i + 1) as VertexId);
        b.add_edge(u, v);
        edges.insert((u, v));
        endpoints.push(u);
        endpoints.push(v);
    }

    for new_v in (m + 1)..n {
        let new_v = new_v as VertexId;
        let mut added = 0;
        let mut new_endpoints = Vec::with_capacity(2 * m);
        while added < m {
            let u = endpoints[rng.gen_range(0..endpoints.len())];
            let key = (u.min(new_v), u.max(new_v));
            if u == new_v || !edges.insert(key) {
                continue;
            }
            b.add_edge(key.0, key.1);
            new_endpoints.push(u);
            new_endpoints.push(new_v);
            added += 1;
        }
        endpoints.extend(new_endpoints);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::analysis;

    #[test]
    fn sizes_are_exact() {
        let g = barabasi_albert(500, 3, 9);
        assert_eq!(g.num_vertices(), 500);
        // m seed edges + m per additional vertex.
        assert_eq!(g.num_edges(), 3 + (500 - 4) * 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(200, 2, 5).edge_list(), barabasi_albert(200, 2, 5).edge_list());
    }

    #[test]
    fn connected_and_heavy_tailed() {
        let g = barabasi_albert(2_000, 2, 13);
        let (count, largest) = analysis::weak_components(&g);
        assert_eq!(count, 1);
        assert_eq!(largest, 2_000);
        let mean = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 6.0 * mean);
    }
}
