//! Erdős–Rényi `G(n, m)` random graphs.
//!
//! Not scale-free (Poisson degrees) — used as the contrast workload when
//! demonstrating that degree ranking is what makes the labeling small on
//! power-law graphs (§7 of the paper discusses general graphs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sfgraph::hash::FxHashSet;
use sfgraph::{Graph, GraphBuilder, VertexId};

/// Sample an undirected graph with exactly `m` distinct edges (no
/// self-loops) among `n` vertices, uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n(n−1)/2`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= possible, "too many edges requested: {m} > {possible}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let mut b = GraphBuilder::new_undirected(n);
    while chosen.len() < m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 250, 3);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(60, 100, 8).edge_list(), erdos_renyi(60, 100, 8).edge_list());
    }

    #[test]
    fn dense_request_saturates() {
        let g = erdos_renyi(5, 10, 1); // complete graph on 5 vertices
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn rejects_impossible_density() {
        erdos_renyi(4, 7, 1);
    }
}
