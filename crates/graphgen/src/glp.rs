//! GLP (Generalized Linear Preference) scale-free graph generator.
//!
//! Bu & Towsley, *On distinguishing between Internet power law topology
//! generators*, INFOCOM 2002 — reference \[11\] of the paper. The paper's
//! synthetic experiments (§8) use GLP with `m = 1.13`, `m0 = 10`, giving a
//! power-law exponent of 2.155; those are the defaults here.
//!
//! The process starts from `m0` vertices connected in a chain. At every
//! step, with probability `p` it adds `m` edges between existing vertices,
//! and with probability `1 - p` it adds a new vertex with `m` edges to
//! existing vertices. Endpoints are chosen with *shifted* linear preference
//! `Π(i) ∝ (d_i − β)`, sampled by rejection from the plain preferential
//! (degree-proportional) distribution. A fractional `m` adds `⌊m⌋` or
//! `⌈m⌉` edges with the matching expectation, as in the original paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sfgraph::hash::FxHashSet;
use sfgraph::{Graph, GraphBuilder, VertexId};

/// Parameters of the GLP process.
#[derive(Clone, Debug)]
pub struct GlpParams {
    /// Number of vertices to generate.
    pub n: usize,
    /// Expected edges added per step; may be fractional (paper: 1.13).
    pub m: f64,
    /// Seed vertices (paper: 10).
    pub m0: usize,
    /// Probability that a step adds edges between existing vertices
    /// instead of a new vertex (Bu & Towsley fit: 0.4695).
    pub p: f64,
    /// Preference shift `β < 1` (Bu & Towsley fit: 0.6447).
    pub beta: f64,
    /// RNG seed; identical parameters and seed give identical graphs.
    pub seed: u64,
}

impl Default for GlpParams {
    fn default() -> Self {
        GlpParams { n: 10_000, m: 1.13, m0: 10, p: 0.4695, beta: 0.6447, seed: 1 }
    }
}

impl GlpParams {
    /// Paper-default parameters for `n` vertices.
    pub fn with_vertices(n: usize, seed: u64) -> GlpParams {
        GlpParams { n, seed, ..Default::default() }
    }

    /// Choose `m` so the expected final density `|E|/|V|` matches
    /// `density` (used by the Fig. 9 sweeps, densities 2–70).
    ///
    /// In expectation the process runs `S = (n − m0)/(1 − p)` steps and
    /// adds `m·S` edges, so `|E|/|V| ≈ m/(1 − p)`.
    pub fn with_density(n: usize, density: f64, seed: u64) -> GlpParams {
        let base = GlpParams::default();
        let m = density * (1.0 - base.p);
        GlpParams { n, m, seed, ..base }
    }
}

/// Generate an undirected, unweighted GLP graph.
///
/// ```
/// use graphgen::{glp, GlpParams};
///
/// let g = glp(&GlpParams::with_vertices(1_000, 42));
/// assert_eq!(g.num_vertices(), 1_000);
/// // Scale-free: the hub's degree dwarfs the mean degree.
/// let mean = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
/// assert!(g.max_degree() as f64 > 5.0 * mean);
/// ```
///
/// # Panics
/// Panics if `n < m0`, `m0 < 2`, `beta ≥ 1`, or `p ∉ [0, 1)`.
pub fn glp(params: &GlpParams) -> Graph {
    let GlpParams { n, m, m0, p, beta, seed } = *params;
    assert!(m0 >= 2, "need at least two seed vertices");
    assert!(n >= m0, "target size below seed size");
    assert!(beta < 1.0, "beta must be < 1 so every vertex keeps positive preference");
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    assert!(m >= 1.0, "m must be at least 1");

    let mut rng = StdRng::seed_from_u64(seed);
    // `endpoints` lists every edge endpoint; sampling an index uniformly
    // yields a vertex with probability proportional to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity((n as f64 * m * 2.5) as usize);
    let mut degree: Vec<u32> = Vec::with_capacity(n);
    let mut edges: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let mut edge_list: Vec<(VertexId, VertexId)> = Vec::new();

    let add_edge = |u: VertexId,
                    v: VertexId,
                    endpoints: &mut Vec<VertexId>,
                    degree: &mut Vec<u32>,
                    edges: &mut FxHashSet<(VertexId, VertexId)>,
                    edge_list: &mut Vec<(VertexId, VertexId)>|
     -> bool {
        let key = (u.min(v), u.max(v));
        if u == v || !edges.insert(key) {
            return false;
        }
        endpoints.push(u);
        endpoints.push(v);
        degree[u as usize] += 1;
        degree[v as usize] += 1;
        edge_list.push(key);
        true
    };

    // Seed chain m0 vertices.
    for i in 0..m0 {
        degree.push(0);
        if i > 0 {
            add_edge(
                (i - 1) as VertexId,
                i as VertexId,
                &mut endpoints,
                &mut degree,
                &mut edges,
                &mut edge_list,
            );
        }
    }

    // Π(i) ∝ d_i − β via rejection from the degree-proportional list.
    let pick_preferential =
        |rng: &mut StdRng, endpoints: &[VertexId], degree: &[u32]| -> VertexId {
            loop {
                let v = endpoints[rng.gen_range(0..endpoints.len())];
                let d = degree[v as usize] as f64;
                if rng.gen::<f64>() < (d - beta) / d {
                    return v;
                }
            }
        };

    let links_this_step = |rng: &mut StdRng| -> usize {
        let base = m.floor() as usize;
        let frac = m - m.floor();
        base + usize::from(rng.gen::<f64>() < frac)
    };

    while degree.len() < n {
        let add_internal = rng.gen::<f64>() < p;
        let links = links_this_step(&mut rng);
        if add_internal {
            // Add `links` edges between existing vertices.
            for _ in 0..links {
                for _attempt in 0..8 {
                    let u = pick_preferential(&mut rng, &endpoints, &degree);
                    let v = pick_preferential(&mut rng, &endpoints, &degree);
                    if add_edge(u, v, &mut endpoints, &mut degree, &mut edges, &mut edge_list) {
                        break;
                    }
                }
            }
        } else {
            // Add a new vertex with `links` edges to existing vertices.
            let new_v = degree.len() as VertexId;
            degree.push(0);
            let mut attached = 0;
            while attached < links {
                let mut done = false;
                for _attempt in 0..8 {
                    let u = pick_preferential(&mut rng, &endpoints, &degree);
                    if add_edge(new_v, u, &mut endpoints, &mut degree, &mut edges, &mut edge_list) {
                        done = true;
                        break;
                    }
                }
                if !done {
                    break; // saturated neighbourhood; avoid spinning
                }
                attached += 1;
            }
        }
    }

    let mut b = GraphBuilder::new_undirected(n);
    for (u, v) in edge_list {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::analysis;

    #[test]
    fn reaches_target_size_and_is_deterministic() {
        let p = GlpParams::with_vertices(500, 42);
        let g1 = glp(&p);
        let g2 = glp(&p);
        assert_eq!(g1.num_vertices(), 500);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.edge_list(), g2.edge_list());
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = glp(&GlpParams::with_vertices(300, 1));
        let g2 = glp(&GlpParams::with_vertices(300, 2));
        assert_ne!(g1.edge_list(), g2.edge_list());
    }

    #[test]
    fn density_parameter_is_respected() {
        for density in [2.0, 5.0, 10.0] {
            let g = glp(&GlpParams::with_density(2_000, density, 7));
            let actual = g.num_edges() as f64 / g.num_vertices() as f64;
            assert!((actual - density).abs() / density < 0.35, "density {density}: got {actual}");
        }
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = glp(&GlpParams::with_density(3_000, 4.0, 11));
        // Scale-free signature: max degree far above the mean, negative
        // rank exponent in a plausible range.
        let mean = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > mean * 8.0, "hub degree should dominate");
        let gamma = analysis::rank_exponent(&g).unwrap();
        assert!((-1.6..=-0.3).contains(&gamma), "rank exponent {gamma} outside scale-free band");
    }

    #[test]
    fn mostly_connected() {
        let g = glp(&GlpParams::with_vertices(1_000, 3));
        let (_, largest) = analysis::weak_components(&g);
        assert!(largest as f64 >= 0.9 * g.num_vertices() as f64);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn rejects_bad_beta() {
        glp(&GlpParams { beta: 1.5, ..GlpParams::with_vertices(100, 1) });
    }
}
