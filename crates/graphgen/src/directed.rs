//! Derive directed workloads from undirected scale-free topologies.
//!
//! The paper's directed datasets (wiki link graphs, Baidu, gplus, …) have
//! power-law in- and out-degree distributions. We reproduce that shape by
//! generating an undirected GLP graph and then orienting edges: each
//! undirected edge becomes one arc in a random direction, and with
//! probability `reciprocal` also the reverse arc (web and social graphs
//! have substantial reciprocity).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sfgraph::{Graph, GraphBuilder};

/// Orient an undirected graph into a directed one.
///
/// Each edge `u–v` becomes `u→v` or `v→u` with equal probability; with
/// probability `reciprocal` both arcs are kept.
pub fn orient_scale_free(g: &Graph, reciprocal: f64, seed: u64) -> Graph {
    assert!(!g.is_directed(), "input must be undirected");
    assert!((0.0..=1.0).contains(&reciprocal));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_directed(g.num_vertices());
    if g.is_weighted() {
        b = b.weighted();
    }
    for (u, v, w) in g.edge_list() {
        if rng.gen::<f64>() < reciprocal {
            b.add_weighted_edge(u, v, w);
            b.add_weighted_edge(v, u, w);
        } else if rng.gen::<bool>() {
            b.add_weighted_edge(u, v, w);
        } else {
            b.add_weighted_edge(v, u, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::path;
    use crate::glp::{glp, GlpParams};

    #[test]
    fn arc_counts_bounded_by_twice_edges() {
        let g = glp(&GlpParams::with_vertices(300, 4));
        let d = orient_scale_free(&g, 0.3, 9);
        assert!(d.is_directed());
        assert!(d.num_edges() >= g.num_edges());
        assert!(d.num_edges() <= 2 * g.num_edges());
    }

    #[test]
    fn zero_reciprocity_keeps_edge_count() {
        let g = path(100);
        let d = orient_scale_free(&g, 0.0, 1);
        assert_eq!(d.num_edges(), g.num_edges());
    }

    #[test]
    fn full_reciprocity_doubles() {
        let g = path(100);
        let d = orient_scale_free(&g, 1.0, 1);
        assert_eq!(d.num_edges(), 2 * g.num_edges());
    }

    #[test]
    fn deterministic() {
        let g = glp(&GlpParams::with_vertices(200, 2));
        assert_eq!(
            orient_scale_free(&g, 0.25, 5).edge_list(),
            orient_scale_free(&g, 0.25, 5).edge_list()
        );
    }
}
