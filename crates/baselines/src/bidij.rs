//! `BIDIJ` — the index-free bidirectional search baseline of Table 6.

use sfgraph::traversal::bidirectional_distance;
use sfgraph::{Dist, Graph, VertexId};

use crate::oracle::DistanceOracle;

/// Bidirectional BFS (unweighted) / Dijkstra (weighted) per query.
///
/// No preprocessing and no index memory beyond the graph itself; every
/// query pays a search. On scale-free graphs the frontiers explode
/// after two hops (expansion factor `R ≈ log |V|`, §2.2), which is why
/// Table 6 shows BIDIJ losing to label indexes by 2–4 orders of
/// magnitude on query time.
pub struct Bidij {
    graph: Graph,
}

impl Bidij {
    /// Wrap a graph (no preprocessing happens).
    pub fn new(graph: Graph) -> Bidij {
        Bidij { graph }
    }

    /// Access the wrapped graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl DistanceOracle for Bidij {
    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        bidirectional_distance(&self.graph, s, t)
    }

    fn name(&self) -> &'static str {
        "BIDIJ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::traversal::all_pairs;
    use sfgraph::GraphBuilder;

    #[test]
    fn matches_ground_truth_directed_weighted() {
        let mut b = GraphBuilder::new_directed(6).weighted();
        b.add_weighted_edge(0, 1, 2);
        b.add_weighted_edge(1, 2, 2);
        b.add_weighted_edge(0, 2, 5);
        b.add_weighted_edge(2, 3, 1);
        b.add_weighted_edge(3, 4, 4);
        b.add_weighted_edge(4, 0, 1);
        let g = b.build();
        let truth = all_pairs(&g);
        let oracle = Bidij::new(g);
        for s in 0..6u32 {
            for t in 0..6u32 {
                assert_eq!(oracle.distance(s, t), truth[s as usize][t as usize]);
            }
        }
    }
}
