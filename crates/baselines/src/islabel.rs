//! IS-Label (reference \[18\]; Fu, Wu, Cheng, Wong, VLDB 2013).
//!
//! Builds a vertex hierarchy by repeatedly extracting an *independent
//! set* of low-degree vertices. When a vertex `v` is removed, shortcut
//! edges are added between its in- and out-neighbours (`w(a,v)+w(v,b)`,
//! keeping minima) so distances among the survivors are preserved.
//! Labels are then assigned top-down: a vertex inherits, through each
//! neighbour it had at removal time (all of which sit higher in the
//! hierarchy), that neighbour's label entries plus the connecting edge
//! weight, min-merged per pivot.
//!
//! The weakness the paper demonstrates (§8): on scale-free graphs the
//! neighbourhood cliques created by augmentation grow the intermediate
//! graph instead of shrinking it — "with the dataset Flickr, the
//! intermediate graph G_i has grown to become bigger than the original
//! graph in the second iteration". [`IsLabel::build`] therefore takes an
//! `edge_budget`; exceeding it aborts with [`IsLabelError::Exploded`],
//! which the bench harness reports as DNF, mirroring the paper's
//! 24-hour timeouts.

use hoplabels::index::{DirectedLabels, LabelIndex, UndirectedLabels, VertexLabels};
use hoplabels::LabelEntry;
use sfgraph::hash::FxHashMap;
use sfgraph::{Dist, Graph, VertexId};

use crate::oracle::DistanceOracle;

/// Why an IS-Label build was aborted.
#[derive(Debug, PartialEq, Eq)]
pub enum IsLabelError {
    /// Edge augmentation exceeded the configured budget (the scale-free
    /// blow-up of §8).
    Exploded {
        /// Hierarchy level at which the budget was exceeded.
        level: u32,
        /// Edge count at that point.
        edges: usize,
    },
}

impl std::fmt::Display for IsLabelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsLabelError::Exploded { level, edges } => {
                write!(f, "edge augmentation exploded at level {level} ({edges} edges over budget)")
            }
        }
    }
}

impl std::error::Error for IsLabelError {}

/// A complete IS-Label index (full hierarchy, no residual graph).
pub struct IsLabel {
    index: LabelIndex,
    levels: u32,
}

/// Per-vertex state recorded at removal time.
struct Removal {
    /// Out-neighbours `(u, w)` in the graph at removal (higher level).
    out: Vec<(VertexId, Dist)>,
    /// In-neighbours `(u, w)` in the graph at removal (higher level).
    inn: Vec<(VertexId, Dist)>,
    level: u32,
}

impl IsLabel {
    /// Build the complete hierarchy and labels.
    ///
    /// `edge_budget` bounds the intermediate graph size (in directed
    /// arcs); pass `usize::MAX` to never abort.
    pub fn build(g: &Graph, edge_budget: usize) -> Result<IsLabel, IsLabelError> {
        let n = g.num_vertices();
        // Residual graph as hash adjacency (augmentation needs random
        // insertion); undirected graphs store both arc directions.
        let mut fwd: Vec<FxHashMap<VertexId, Dist>> = vec![FxHashMap::default(); n];
        let mut bwd: Vec<FxHashMap<VertexId, Dist>> = vec![FxHashMap::default(); n];
        let mut arcs = 0usize;
        let add_arc = |fwd: &mut Vec<FxHashMap<VertexId, Dist>>,
                       bwd: &mut Vec<FxHashMap<VertexId, Dist>>,
                       arcs: &mut usize,
                       a: VertexId,
                       b: VertexId,
                       w: Dist| {
            debug_assert_ne!(a, b);
            if w == Dist::MAX {
                return; // overflowed shortcut can never improve anything
            }
            let slot = fwd[a as usize].entry(b).or_insert(Dist::MAX);
            if *slot == Dist::MAX {
                *arcs += 1;
            }
            if w < *slot {
                *slot = w;
                bwd[b as usize].insert(a, w);
            }
        };
        for u in g.vertices() {
            for (v, w) in g.edges(u, sfgraph::Direction::Out) {
                add_arc(&mut fwd, &mut bwd, &mut arcs, u, v, w);
            }
        }

        let mut alive: Vec<VertexId> = (0..n as VertexId).collect();
        let mut removals: Vec<Option<Removal>> = (0..n).map(|_| None).collect();
        let mut level = 0u32;

        while !alive.is_empty() {
            level += 1;
            // Greedy independent set, lowest current degree first.
            let mut order = alive.clone();
            order.sort_unstable_by_key(|&v| fwd[v as usize].len() + bwd[v as usize].len());
            let mut in_set = vec![false; n];
            let mut blocked = vec![false; n];
            let mut set = Vec::new();
            for &v in &order {
                if blocked[v as usize] {
                    continue;
                }
                in_set[v as usize] = true;
                set.push(v);
                for (&u, _) in fwd[v as usize].iter().chain(bwd[v as usize].iter()) {
                    blocked[u as usize] = true;
                }
            }
            // Remove the set: record neighbourhoods, add shortcuts.
            for &v in &set {
                let out: Vec<(VertexId, Dist)> =
                    fwd[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
                let inn: Vec<(VertexId, Dist)> =
                    bwd[v as usize].iter().map(|(&u, &w)| (u, w)).collect();
                // Distance-preserving shortcuts between in- and
                // out-neighbours (none of which are in the set —
                // independence).
                for &(a, wa) in &inn {
                    for &(b, wb) in &out {
                        if a != b {
                            add_arc(&mut fwd, &mut bwd, &mut arcs, a, b, wa.saturating_add(wb));
                        }
                    }
                }
                // Detach v: arcs v→u live in fwd[v], arcs u→v in fwd[u].
                for &(u, _) in &out {
                    bwd[u as usize].remove(&v);
                }
                for &(u, _) in &inn {
                    if fwd[u as usize].remove(&v).is_some() {
                        arcs -= 1;
                    }
                }
                arcs -= fwd[v as usize].len();
                fwd[v as usize] = FxHashMap::default();
                bwd[v as usize] = FxHashMap::default();
                removals[v as usize] = Some(Removal { out, inn, level });
            }
            alive.retain(|&v| !in_set[v as usize]);
            if arcs > edge_budget {
                return Err(IsLabelError::Exploded { level, edges: arcs });
            }
        }

        // Top-down label assignment: higher levels first.
        let mut by_level: Vec<VertexId> = (0..n as VertexId).collect();
        by_level.sort_unstable_by_key(|&v| {
            std::cmp::Reverse(removals[v as usize].as_ref().expect("all removed").level)
        });
        let directed = g.is_directed();
        let mut out_labels: Vec<VertexLabels> =
            (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
        let mut in_labels: Vec<VertexLabels> = if directed {
            (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect()
        } else {
            Vec::new()
        };
        for &v in &by_level {
            let removal = removals[v as usize].as_ref().expect("all removed");
            // Out-label: paths v ⇝ pivot via out-neighbour u.
            let mut acc: Vec<LabelEntry> = Vec::new();
            for &(u, w) in &removal.out {
                acc.push(LabelEntry::new(u, w));
                for e in out_labels[u as usize].entries() {
                    acc.push(LabelEntry::new(e.pivot, e.dist.saturating_add(w)));
                }
            }
            for e in acc {
                out_labels[v as usize].insert_min(e);
            }
            // In-label: paths pivot ⇝ v via in-neighbour u.
            let (labels, neighbours) = if directed {
                (&mut in_labels, &removal.inn)
            } else {
                (&mut out_labels, &removal.inn)
            };
            if directed {
                let mut acc: Vec<LabelEntry> = Vec::new();
                for &(u, w) in neighbours {
                    acc.push(LabelEntry::new(u, w));
                    for e in labels[u as usize].entries() {
                        acc.push(LabelEntry::new(e.pivot, e.dist.saturating_add(w)));
                    }
                }
                for e in acc {
                    labels[v as usize].insert_min(e);
                }
            }
        }

        let index = if directed {
            LabelIndex::Directed(DirectedLabels { in_labels, out_labels })
        } else {
            LabelIndex::Undirected(UndirectedLabels { labels: out_labels })
        };
        Ok(IsLabel { index, levels: level })
    }

    /// The label index (original vertex ids — IS-Label needs no global
    /// rank relabeling; the hierarchy plays that role).
    pub fn index(&self) -> &LabelIndex {
        &self.index
    }

    /// Number of hierarchy levels extracted.
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

impl DistanceOracle for IsLabel {
    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.index.query(s, t)
    }

    fn name(&self) -> &'static str {
        "IS-Label"
    }

    fn index_bytes(&self) -> usize {
        self.index.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::traversal::all_pairs;
    use sfgraph::GraphBuilder;

    #[test]
    fn exact_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..15 {
            let n = rng.gen_range(3..25);
            let directed = rng.gen_bool(0.5);
            let weighted = rng.gen_bool(0.5);
            let mut b = if directed {
                GraphBuilder::new_directed(n)
            } else {
                GraphBuilder::new_undirected(n)
            };
            if weighted {
                b = b.weighted();
            }
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_weighted_edge(
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(0..n) as VertexId,
                    if weighted { rng.gen_range(1..9) } else { 1 },
                );
            }
            let g = b.build();
            let truth = all_pairs(&g);
            let isl = IsLabel::build(&g, usize::MAX).unwrap();
            for s in 0..n as VertexId {
                for t in 0..n as VertexId {
                    assert_eq!(
                        isl.distance(s, t),
                        truth[s as usize][t as usize],
                        "{s}->{t} (directed={directed} weighted={weighted})"
                    );
                }
            }
        }
    }

    #[test]
    fn star_needs_two_levels() {
        // Leaves are one independent set, the hub the next.
        let g = graphgen::star(8);
        let isl = IsLabel::build(&g, usize::MAX).unwrap();
        assert_eq!(isl.levels(), 2);
        assert_eq!(isl.distance(1, 2), 2);
    }

    #[test]
    fn edge_budget_aborts_on_dense_core() {
        // A clique-ish graph forces heavy augmentation.
        let g = graphgen::complete(12);
        match IsLabel::build(&g, 30) {
            Err(IsLabelError::Exploded { edges, .. }) => assert!(edges > 30),
            Ok(_) => panic!("expected the edge budget to abort the build"),
        }
    }

    #[test]
    fn label_sizes_exceed_pll_on_scale_free_graphs() {
        // The paper's observation: IS-Label's covers are much larger
        // than pruned ones on hub-dominated graphs.
        let g = graphgen::glp(&graphgen::GlpParams::with_vertices(300, 9));
        let isl = IsLabel::build(&g, usize::MAX).unwrap();
        let pll = crate::pll::Pll::build(&g);
        assert!(
            isl.index().total_entries() > pll.index().total_entries(),
            "IS-Label {} !> PLL {}",
            isl.index().total_entries(),
            pll.index().total_entries()
        );
    }
}
