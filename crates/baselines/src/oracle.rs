//! A common interface over all exact distance oracles.

use sfgraph::{Dist, VertexId};

/// An exact point-to-point distance oracle over a fixed graph.
///
/// Implementations answer in terms of the *original* vertex ids of the
/// graph they were built from (rank relabeling, if any, is internal).
pub trait DistanceOracle {
    /// Exact distance from `s` to `t`; `INF_DIST` when unreachable.
    fn distance(&self, s: VertexId, t: VertexId) -> Dist;

    /// Short human-readable method name for result tables.
    fn name(&self) -> &'static str;

    /// Approximate resident bytes of the oracle's data structures
    /// (index size column of Table 6); 0 for index-free methods.
    fn index_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zero;
    impl DistanceOracle for Zero {
        fn distance(&self, _s: VertexId, _t: VertexId) -> Dist {
            0
        }
        fn name(&self) -> &'static str {
            "zero"
        }
    }

    #[test]
    fn default_index_bytes_is_zero() {
        assert_eq!(Zero.index_bytes(), 0);
        assert_eq!(Zero.name(), "zero");
    }
}
