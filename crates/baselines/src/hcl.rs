//! Highway-cover labeling — the stand-in for HCL (reference \[20\]).
//!
//! The paper compared against Highway-Centric Labeling but dropped it
//! from Table 6 after it timed out on all datasets except Enron (where
//! it was three orders of magnitude slower than HopDb). Reimplementing
//! HCL's bipartite set-cover construction is out of scope; instead we
//! provide the *highway cover* scheme (the same family: a small highway
//! vertex set carries long-range distances), which plays the identical
//! comparative role — cheap landmark-style preprocessing, but per-query
//! work that grows with the graph:
//!
//! * pick `H` = the `k` highest-ranked (degree) vertices;
//! * store exact distance arrays from/to every `h ∈ H`
//!   (`2·k·|V|` distances);
//! * a query takes `min` over `d(s,h) + d(h,t)` — exact whenever some
//!   shortest path meets the highway — and falls back to a
//!   *highway-avoiding* bidirectional search for pairs whose shortest
//!   paths dodge `H` entirely (the search never expands through a
//!   highway vertex, so it stays cheap on hub-dominated graphs).
//!
//! Exactness: every shortest `s ⇝ t` path either visits some `h ∈ H`
//! (then `d(s,h) + d(h,t)` equals the true distance for that `h`) or
//! avoids `H`, in which case the restricted search finds it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use sfgraph::ranking::{rank_vertices, RankBy};
use sfgraph::{Direction, Dist, Graph, VertexId, INF_DIST};

use crate::oracle::DistanceOracle;

/// Highway-cover distance oracle.
pub struct HighwayCover {
    graph: Graph,
    /// The highway vertices, highest degree first.
    highway: Vec<VertexId>,
    /// `is_highway[v]` for O(1) membership tests during search.
    is_highway: Vec<bool>,
    /// `from[h][v]` = d(highway[h], v).
    from: Vec<Vec<Dist>>,
    /// `to[h][v]` = d(v, highway[h]) (same as `from` when undirected).
    to: Vec<Vec<Dist>>,
}

impl HighwayCover {
    /// Build with `k` highway vertices (degree ranking).
    pub fn build(graph: Graph, k: usize) -> HighwayCover {
        let n = graph.num_vertices();
        let k = k.min(n);
        let ranking = rank_vertices(&graph, &RankBy::Degree);
        let highway: Vec<VertexId> = (0..k as VertexId).map(|r| ranking.vertex_at(r)).collect();
        let mut is_highway = vec![false; n];
        for &h in &highway {
            is_highway[h as usize] = true;
        }
        let from: Vec<Vec<Dist>> =
            highway.iter().map(|&h| sfgraph::traversal::sssp(&graph, h, Direction::Out)).collect();
        let to: Vec<Vec<Dist>> = if graph.is_directed() {
            highway.iter().map(|&h| sfgraph::traversal::sssp(&graph, h, Direction::In)).collect()
        } else {
            Vec::new()
        };
        HighwayCover { graph, highway, is_highway, from, to }
    }

    /// Number of highway vertices.
    pub fn highway_len(&self) -> usize {
        self.highway.len()
    }

    #[inline]
    fn d_to_highway(&self, h: usize, v: VertexId) -> Dist {
        if self.graph.is_directed() {
            self.to[h][v as usize]
        } else {
            self.from[h][v as usize]
        }
    }

    /// Best distance routed through the highway.
    fn via_highway(&self, s: VertexId, t: VertexId) -> Dist {
        let mut best = INF_DIST;
        for h in 0..self.highway.len() {
            let a = self.d_to_highway(h, s);
            let b = self.from[h][t as usize];
            if a != INF_DIST && b != INF_DIST {
                best = best.min(a + b);
            }
        }
        best
    }

    /// Bidirectional search that never expands *through* a highway
    /// vertex, bounded above by `cap` (the best highway answer).
    fn avoid_highway_search(&self, s: VertexId, t: VertexId, cap: Dist) -> Dist {
        if self.graph.is_weighted() {
            self.avoid_dijkstra(s, t, cap)
        } else {
            self.avoid_bfs(s, t, cap)
        }
    }

    fn avoid_bfs(&self, s: VertexId, t: VertexId, cap: Dist) -> Dist {
        let n = self.graph.num_vertices();
        let mut dist = [vec![INF_DIST; n], vec![INF_DIST; n]];
        let mut queues = [VecDeque::new(), VecDeque::new()];
        dist[0][s as usize] = 0;
        dist[1][t as usize] = 0;
        queues[0].push_back(s);
        queues[1].push_back(t);
        let dirs = [Direction::Out, Direction::In];
        let mut radius = [0u32, 0u32];
        let mut best = cap;
        while !queues[0].is_empty() || !queues[1].is_empty() {
            if radius[0] + radius[1] >= best {
                break;
            }
            let side = if queues[1].is_empty()
                || (!queues[0].is_empty() && queues[0].len() <= queues[1].len())
            {
                0
            } else {
                1
            };
            let mut next = VecDeque::new();
            while let Some(v) = queues[side].pop_front() {
                let d = dist[side][v as usize];
                // Expand v unless it is a highway vertex (paths through
                // the highway are covered by the label part). The
                // endpoints themselves are always expanded.
                if self.is_highway[v as usize] && v != s && v != t {
                    continue;
                }
                for &u in self.graph.neighbors(v, dirs[side]) {
                    if dist[side][u as usize] == INF_DIST {
                        dist[side][u as usize] = d + 1;
                        if dist[1 - side][u as usize] != INF_DIST {
                            best = best.min(d + 1 + dist[1 - side][u as usize]);
                        }
                        next.push_back(u);
                    }
                }
            }
            queues[side] = next;
            radius[side] += 1;
        }
        best
    }

    fn avoid_dijkstra(&self, s: VertexId, t: VertexId, cap: Dist) -> Dist {
        let n = self.graph.num_vertices();
        let mut dist = [vec![INF_DIST; n], vec![INF_DIST; n]];
        let mut heaps: [BinaryHeap<Reverse<(Dist, VertexId)>>; 2] =
            [BinaryHeap::new(), BinaryHeap::new()];
        dist[0][s as usize] = 0;
        dist[1][t as usize] = 0;
        heaps[0].push(Reverse((0, s)));
        heaps[1].push(Reverse((0, t)));
        let dirs = [Direction::Out, Direction::In];
        let mut best = cap;
        loop {
            let top_f = heaps[0].peek().map(|r| r.0 .0);
            let top_b = heaps[1].peek().map(|r| r.0 .0);
            let (side, top) = match (top_f, top_b) {
                (None, None) => break,
                (Some(f), None) => (0, f),
                (None, Some(b)) => (1, b),
                (Some(f), Some(b)) => {
                    if f <= b {
                        (0, f)
                    } else {
                        (1, b)
                    }
                }
            };
            let other = heaps[1 - side].peek().map_or(INF_DIST, |r| r.0 .0);
            if best != INF_DIST && top.saturating_add(other) >= best {
                break;
            }
            let Reverse((d, v)) = heaps[side].pop().unwrap();
            if d > dist[side][v as usize] {
                continue;
            }
            if dist[1 - side][v as usize] != INF_DIST {
                best = best.min(d.saturating_add(dist[1 - side][v as usize]));
            }
            if self.is_highway[v as usize] && v != s && v != t {
                continue; // meet allowed, expansion through is not
            }
            for (u, w) in self.graph.edges(v, dirs[side]) {
                let nd = d.saturating_add(w);
                if nd < dist[side][u as usize] {
                    dist[side][u as usize] = nd;
                    heaps[side].push(Reverse((nd, u)));
                }
            }
        }
        best
    }
}

impl DistanceOracle for HighwayCover {
    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return 0;
        }
        let via = self.via_highway(s, t);
        self.avoid_highway_search(s, t, via)
    }

    fn name(&self) -> &'static str {
        "HCL*"
    }

    fn index_bytes(&self) -> usize {
        (self.from.len() + self.to.len()) * self.graph.num_vertices() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::traversal::all_pairs;
    use sfgraph::GraphBuilder;

    fn check(g: Graph, k: usize) {
        let truth = all_pairs(&g);
        let n = g.num_vertices();
        let hc = HighwayCover::build(g, k);
        for s in 0..n as VertexId {
            for t in 0..n as VertexId {
                assert_eq!(hc.distance(s, t), truth[s as usize][t as usize], "{s}->{t} k={k}");
            }
        }
    }

    #[test]
    fn exact_on_random_undirected() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let n = rng.gen_range(3..25);
            let mut b = GraphBuilder::new_undirected(n);
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
            }
            for k in [0, 1, 3] {
                check(b.build_clone(), k);
            }
        }
    }

    #[test]
    fn exact_on_random_directed_weighted() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for _ in 0..10 {
            let n = rng.gen_range(3..20);
            let mut b = GraphBuilder::new_directed(n).weighted();
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_weighted_edge(
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(1..7),
                );
            }
            for k in [0, 2, 5] {
                check(b.build_clone(), k);
            }
        }
    }

    #[test]
    fn star_queries_resolve_via_hub() {
        let g = graphgen::star(50);
        let hc = HighwayCover::build(g, 1);
        assert_eq!(hc.highway_len(), 1);
        assert_eq!(hc.distance(5, 9), 2);
        assert_eq!(hc.distance(0, 9), 1);
    }
}
