//! Pruned Landmark Labeling (reference \[7\]; Akiba, Iwata, Yoshida,
//! SIGMOD 2013).
//!
//! Vertices are processed in decreasing rank; from each pivot `vk` a
//! BFS (Dijkstra when weighted) runs outward, adding `(vk, δ)` to the
//! label of every vertex reached at distance `δ` — *unless* the labels
//! built so far already answer `dist(vk, u) ≤ δ`, in which case the
//! search is pruned at `u` (the entry is skipped and `u`'s edges are
//! not relaxed). For directed graphs a forward search fills `Lin` and a
//! backward search fills `Lout`.
//!
//! The result is the canonical minimal 2-hop cover for the given order,
//! which makes PLL the reference point for HopDb's label sizes
//! (Table 6). The known limitation the paper exploits: construction
//! keeps the whole index *and* graph in memory and runs `|V|` searches,
//! so it cannot scale past memory.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use hoplabels::index::{join_min, DirectedLabels, LabelIndex, UndirectedLabels, VertexLabels};
use hoplabels::LabelEntry;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy, Ranking};
use sfgraph::{Direction, Dist, Graph, VertexId};

use crate::oracle::DistanceOracle;

/// A built PLL index plus the ranking mapping original ids to rank ids.
pub struct Pll {
    index: LabelIndex,
    ranking: Ranking,
}

impl Pll {
    /// Build with the paper's default ranking (degree for undirected,
    /// in×out-degree product for directed).
    ///
    /// ```
    /// use baselines::{DistanceOracle, Pll};
    /// use sfgraph::GraphBuilder;
    ///
    /// let mut b = GraphBuilder::new_directed(3);
    /// b.add_edge(0, 1);
    /// b.add_edge(1, 2);
    /// let pll = Pll::build(&b.build());
    /// assert_eq!(pll.distance(0, 2), 2);
    /// assert_eq!(pll.distance(2, 0), u32::MAX); // unreachable
    /// ```
    pub fn build(g: &Graph) -> Pll {
        let rank_by = if g.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
        Pll::build_ranked(g, &rank_by)
    }

    /// Build with an explicit ranking strategy.
    pub fn build_ranked(g: &Graph, rank_by: &RankBy) -> Pll {
        let ranking = rank_vertices(g, rank_by);
        let relabeled = relabel_by_rank(g, &ranking);
        let index = build_prelabeled(&relabeled);
        Pll { index, ranking }
    }

    /// The underlying label index (rank-id space).
    pub fn index(&self) -> &LabelIndex {
        &self.index
    }

    /// The ranking used.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }
}

impl DistanceOracle for Pll {
    fn distance(&self, s: VertexId, t: VertexId) -> Dist {
        self.index.query(self.ranking.rank_of(s), self.ranking.rank_of(t))
    }

    fn name(&self) -> &'static str {
        "PLL"
    }

    fn index_bytes(&self) -> usize {
        self.index.resident_bytes()
    }
}

/// Build a PLL index on a rank-relabeled graph (id 0 = highest rank).
pub fn build_prelabeled(g: &Graph) -> LabelIndex {
    let n = g.num_vertices();
    if g.is_directed() {
        let mut d = DirectedLabels {
            in_labels: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            out_labels: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        };
        for vk in 0..n as VertexId {
            // Forward search from vk covers paths vk ⇝ u: entries for
            // Lin(u); the pruning query joins Lout(vk) with Lin(u).
            pruned_search(
                g,
                vk,
                Direction::Out,
                &d.out_labels[vk as usize].clone(),
                |u, dist, pivot_labels| {
                    prune_or_insert(&mut d.in_labels, u, vk, dist, pivot_labels)
                },
            );
            // Backward search covers paths u ⇝ vk: entries for Lout(u);
            // pruning joins Lout(u) with Lin(vk).
            pruned_search(
                g,
                vk,
                Direction::In,
                &d.in_labels[vk as usize].clone(),
                |u, dist, pivot_labels| {
                    prune_or_insert(&mut d.out_labels, u, vk, dist, pivot_labels)
                },
            );
        }
        LabelIndex::Directed(d)
    } else {
        let mut labels: Vec<VertexLabels> =
            (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
        for vk in 0..n as VertexId {
            let pivot_labels = labels[vk as usize].clone();
            pruned_search(g, vk, Direction::Out, &pivot_labels, |u, dist, pl| {
                prune_or_insert(&mut labels, u, vk, dist, pl)
            });
        }
        LabelIndex::Undirected(UndirectedLabels { labels })
    }
}

/// Returns `true` if the entry was inserted (search continues through
/// `u`), `false` if pruned.
fn prune_or_insert(
    labels: &mut [VertexLabels],
    u: VertexId,
    vk: VertexId,
    dist: Dist,
    pivot_labels: &VertexLabels,
) -> bool {
    if u == vk {
        // The root keeps its trivial entry and always expands.
        return true;
    }
    if u < vk {
        // r(u) > r(vk): u was processed earlier; by canonical-labeling
        // correctness the pair (vk, u) is already covered, so prune.
        // (The join test below would conclude the same; this is the
        // standard PLL fast path.)
        return false;
    }
    if join_min(pivot_labels.entries(), labels[u as usize].entries()) <= dist {
        return false;
    }
    labels[u as usize].insert_min(LabelEntry::new(vk, dist));
    true
}

/// BFS / Dijkstra from `vk` in direction `dir`; `visit(u, dist, pivot
/// labels)` decides whether to expand through `u`.
fn pruned_search(
    g: &Graph,
    vk: VertexId,
    dir: Direction,
    pivot_labels: &VertexLabels,
    mut visit: impl FnMut(VertexId, Dist, &VertexLabels) -> bool,
) {
    let n = g.num_vertices();
    if g.is_weighted() {
        let mut dist = vec![Dist::MAX; n];
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(Dist, VertexId)>> = BinaryHeap::new();
        dist[vk as usize] = 0;
        heap.push(Reverse((0, vk)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if settled[u as usize] || d > dist[u as usize] {
                continue;
            }
            settled[u as usize] = true;
            if !visit(u, d, pivot_labels) {
                continue;
            }
            for (x, w) in g.edges(u, dir) {
                let nd = d.saturating_add(w);
                if nd < dist[x as usize] {
                    dist[x as usize] = nd;
                    heap.push(Reverse((nd, x)));
                }
            }
        }
    } else {
        let mut seen = vec![false; n];
        let mut queue: VecDeque<(VertexId, Dist)> = VecDeque::new();
        seen[vk as usize] = true;
        queue.push_back((vk, 0));
        while let Some((u, d)) = queue.pop_front() {
            if !visit(u, d, pivot_labels) {
                continue;
            }
            for &x in g.neighbors(u, dir) {
                if !seen[x as usize] {
                    seen[x as usize] = true;
                    queue.push_back((x, d + 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplabels::verify::{assert_exact, is_minimal};
    use sfgraph::traversal::all_pairs;
    use sfgraph::GraphBuilder;

    #[test]
    fn exact_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..15 {
            let n = rng.gen_range(3..30);
            let directed = rng.gen_bool(0.5);
            let weighted = rng.gen_bool(0.5);
            let mut b = if directed {
                GraphBuilder::new_directed(n)
            } else {
                GraphBuilder::new_undirected(n)
            };
            if weighted {
                b = b.weighted();
            }
            for _ in 0..rng.gen_range(n..4 * n) {
                b.add_weighted_edge(
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(0..n) as VertexId,
                    if weighted { rng.gen_range(1..8) } else { 1 },
                );
            }
            let g = b.build();
            let truth = all_pairs(&g);
            let pll = Pll::build(&g);
            for s in 0..n as VertexId {
                for t in 0..n as VertexId {
                    assert_eq!(
                        pll.distance(s, t),
                        truth[s as usize][t as usize],
                        "{s}->{t} (directed={directed}, weighted={weighted})"
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_labels_are_minimal() {
        // PLL produces the canonical cover, which is minimal (§2.1).
        let g = graphgen::road_graph_gr();
        let index = build_prelabeled(&g);
        assert_exact(&g, &index);
        assert!(is_minimal(&g, &index));
    }

    #[test]
    fn matches_table_3_on_road_graph() {
        // Degree ranking on G_R gives exactly Table 3's small cover.
        let g = graphgen::road_graph_gr();
        let index = build_prelabeled(&g);
        let LabelIndex::Undirected(u) = &index else { panic!() };
        let sizes: Vec<usize> = u.labels.iter().map(|l| l.len()).collect();
        assert_eq!(sizes, vec![1, 2, 3, 2, 2]);
    }

    #[test]
    fn pll_and_hopdb_agree_on_label_sizes_for_star() {
        let g = graphgen::star_graph_gs();
        let pll_index = build_prelabeled(&g);
        assert_exact(&g, &pll_index);
        assert_eq!(pll_index.total_entries(), 11); // 6 trivial + 5 leaf entries
    }
}
