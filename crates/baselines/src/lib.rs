#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # baselines — the comparison oracles of the paper's evaluation (§8)
//!
//! Every method answers exact point-to-point distance queries; they
//! differ in preprocessing and query cost:
//!
//! * [`bidij`] — `BIDIJ`: no index, bidirectional BFS/Dijkstra per
//!   query (the "Memory query time BIDIJ" column of Table 6);
//! * [`pll`] — Pruned Landmark Labeling (Akiba, Iwata, Yoshida;
//!   SIGMOD 2013, reference \[7\]): rank-ordered pruned searches that
//!   produce a canonical 2-hop index — the strongest in-memory
//!   competitor in Table 6;
//! * [`islabel`] — IS-Label (Fu, Wu, Cheng, Wong; VLDB 2013, reference
//!   \[18\]): independent-set hierarchy with distance-preserving edge
//!   augmentation, the only prior disk-capable method;
//! * [`hcl`] — a *highway-cover* labeling standing in for HCL
//!   (reference \[20\]); see DESIGN.md for the substitution argument.
//!
//! PLL and IS-Label produce [`hoplabels::LabelIndex`] values, so all
//! label-based methods share query code, statistics, and the disk
//! layout — exactly the comparability Table 6 relies on.

pub mod bidij;
pub mod hcl;
pub mod islabel;
pub mod oracle;
pub mod pll;

pub use bidij::Bidij;
pub use hcl::HighwayCover;
pub use islabel::{IsLabel, IsLabelError};
pub use oracle::DistanceOracle;
pub use pll::Pll;
