//! Brute-force verification of 2-hop covers — test infrastructure.
//!
//! These checkers make the paper's correctness theorems executable:
//! Theorem 1/3/5 say every index built by the engines answers all
//! queries exactly; [`check_exact`] tests that against all-pairs BFS /
//! Dijkstra ground truth. [`is_minimal`] checks 2-hop-cover minimality
//! (no entry can be deleted), the property Tables 1–4 illustrate.

use sfgraph::traversal::all_pairs;
use sfgraph::{Graph, VertexId};

use crate::index::LabelIndex;

/// First mismatching query, if any: `(s, t, index_answer, true_answer)`.
pub fn check_exact(g: &Graph, index: &LabelIndex) -> Option<(VertexId, VertexId, u32, u32)> {
    let ap = all_pairs(g);
    let n = g.num_vertices();
    for (s, row) in ap.iter().enumerate().take(n) {
        for (t, &want) in row.iter().enumerate().take(n) {
            let got = index.query(s as VertexId, t as VertexId);
            if got != want {
                return Some((s as VertexId, t as VertexId, got, want));
            }
        }
    }
    None
}

/// Panicking wrapper around [`check_exact`] with a readable message.
pub fn assert_exact(g: &Graph, index: &LabelIndex) {
    if let Some((s, t, got, want)) = check_exact(g, index) {
        panic!("index wrong for dist({s},{t}): got {got}, want {want}");
    }
}

/// Whether the cover is *minimal*: deleting any single non-trivial entry
/// breaks at least one query. Exhaustive — O(entries × n²) — for the
/// worked-example graphs only.
pub fn is_minimal(g: &Graph, index: &LabelIndex) -> bool {
    let mut index = index.clone();
    let n = index.num_vertices();
    let sides: &[bool] = if index.is_directed() { &[false, true] } else { &[false] };
    for &in_side in sides {
        for v in 0..n as VertexId {
            let entries: Vec<_> = labels_of(&index, v, in_side).entries().to_vec();
            for e in entries {
                if e.pivot == v {
                    continue; // trivial self-entry: needed, skip
                }
                labels_of_mut(&mut index, v, in_side).remove(e.pivot);
                let still_exact = check_exact(g, &index).is_none();
                labels_of_mut(&mut index, v, in_side).insert_min(e);
                if still_exact {
                    return false; // entry was redundant
                }
            }
        }
    }
    true
}

fn labels_of(index: &LabelIndex, v: VertexId, in_side: bool) -> &crate::index::VertexLabels {
    match index {
        LabelIndex::Directed(d) => {
            if in_side {
                &d.in_labels[v as usize]
            } else {
                &d.out_labels[v as usize]
            }
        }
        LabelIndex::Undirected(u) => &u.labels[v as usize],
    }
}

fn labels_of_mut(
    index: &mut LabelIndex,
    v: VertexId,
    in_side: bool,
) -> &mut crate::index::VertexLabels {
    match index {
        LabelIndex::Directed(d) => {
            if in_side {
                &mut d.in_labels[v as usize]
            } else {
                &mut d.out_labels[v as usize]
            }
        }
        LabelIndex::Undirected(u) => &mut u.labels[v as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LabelEntry;
    use crate::index::{UndirectedLabels, VertexLabels};
    use sfgraph::GraphBuilder;

    /// Hand-built exact cover for the path 0–1–2 (ids already ranked).
    fn path3_cover() -> (Graph, LabelIndex) {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let mut labels: Vec<VertexLabels> =
            (0..3).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
        labels[1].insert_min(LabelEntry::new(0, 1));
        labels[2].insert_min(LabelEntry::new(0, 2)); // wrong rank choice but exact
        labels[2].insert_min(LabelEntry::new(1, 1));
        (g, LabelIndex::Undirected(UndirectedLabels { labels }))
    }

    #[test]
    fn exact_cover_passes() {
        let (g, idx) = path3_cover();
        assert!(check_exact(&g, &idx).is_none());
    }

    #[test]
    fn broken_cover_is_detected() {
        let (g, mut idx) = path3_cover();
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[2].remove(1);
            u.labels[2].remove(0);
        }
        let (s, t, got, want) = check_exact(&g, &idx).unwrap();
        assert_eq!((s, t), (0, 2));
        assert_eq!(want, 2);
        assert_eq!(got, u32::MAX);
    }

    #[test]
    fn minimal_cover_recognised() {
        // Every entry of the hand cover is load-bearing: L(0) is trivial,
        // so queries from 0 need pivot 0 present in every other label.
        let (g, idx) = path3_cover();
        assert!(is_minimal(&g, &idx));
    }

    #[test]
    fn minimality_detects_redundant_entry() {
        let (g, mut idx) = path3_cover();
        // (1, 1) in L(0) is true but useless: every query involving 0 is
        // already answered via pivot 0 itself.
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[0].insert_min(LabelEntry::new(1, 1));
        }
        assert!(check_exact(&g, &idx).is_none());
        assert!(!is_minimal(&g, &idx));
    }

    #[test]
    #[should_panic(expected = "index wrong")]
    fn assert_exact_panics_on_bad_index() {
        let (g, _) = path3_cover();
        let empty = LabelIndex::new_undirected(3);
        assert_exact(&g, &empty);
    }
}
