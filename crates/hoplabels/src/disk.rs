//! On-disk index layout and I/O-counted disk queries.
//!
//! The paper's index is disk-resident: answering `dist(s, t)` reads the
//! two labels `Lout(s)` and `Lin(t)` from disk and merge-joins them
//! (Table 6's "Disk query time" column). The layout here is:
//!
//! ```text
//! magic "HOPIDX01" | flags u8 ×4 | n u64
//! out_offsets  (n+1) × u64      -- entry index into the out region
//! in_offsets   (n+1) × u64      -- directed only
//! out entries  (pivot u32, dist u32)*
//! in  entries  (pivot u32, dist u32)*   -- directed only
//! ```
//!
//! The offset directory (16 bytes/vertex) is held in memory, as any
//! practical disk index would; each query then costs exactly two label
//! reads, matching the paper's two-I/O query model.

use std::io::Write;
use std::sync::Arc;

use extmem::device::{CountedFile, TempStore};
use extmem::stats::IoStats;
use sfgraph::{Dist, VertexId};

use crate::entry::LabelEntry;
use crate::index::{join_min, LabelIndex, VertexLabels};

const MAGIC: &[u8; 8] = b"HOPIDX01";
const ENTRY_BYTES: u64 = 8;

/// Parsed `HOPIDX01` header: flags, vertex count, offset directories,
/// and the byte positions where the entry regions start. Shared by
/// [`DiskIndex::open`] (which reads it through a counted file) and
/// [`crate::flat::FlatIndex::from_hopidx_bytes`] (which parses a byte
/// image directly).
pub(crate) struct HopIdxHeader {
    pub(crate) directed: bool,
    pub(crate) n: usize,
    pub(crate) out_offsets: Vec<u64>,
    pub(crate) in_offsets: Vec<u64>,
    /// Byte offset of the first out-entry.
    pub(crate) out_base: usize,
    /// Byte offset of the first in-entry (== end of out region when
    /// undirected).
    pub(crate) in_base: usize,
}

impl HopIdxHeader {
    /// Parse the header from the front of a serialized index image.
    pub(crate) fn parse(bytes: &[u8]) -> std::io::Result<HopIdxHeader> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        if bytes.len() < 20 || &bytes[..8] != MAGIC {
            return Err(bad("not a HOPIDX01 file"));
        }
        // The flags word is `[directed, 0, 0, 0]`: reject anything else
        // so corruption in the header cannot be silently ignored.
        if bytes[8] > 1 || bytes[9..12] != [0, 0, 0] {
            return Err(bad("invalid flags word"));
        }
        let directed = bytes[8] != 0;
        let n = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
        let dirs = if directed { 2 } else { 1 };
        // All size arithmetic is on attacker-controlled header fields:
        // checked/saturating math turns a crafted vertex count into a
        // clean InvalidData error instead of an overflow panic or an
        // absurd allocation.
        let header_len = n
            .checked_add(1)
            .and_then(|slots| slots.checked_mul(8 * dirs))
            .and_then(|dir| dir.checked_add(20))
            .ok_or_else(|| bad("vertex count overflows the offset directory"))?;
        if bytes.len() < header_len {
            return Err(bad("truncated offset directory"));
        }
        let offsets_at = |at: usize| -> Vec<u64> {
            bytes[at..at + (n + 1) * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        let out_offsets = offsets_at(20);
        let in_offsets = if directed { offsets_at(20 + (n + 1) * 8) } else { Vec::new() };
        if !offsets_sorted(&out_offsets) || !offsets_sorted(&in_offsets) {
            return Err(bad("offset directory not monotone"));
        }
        let out_total = *out_offsets.last().ok_or_else(|| bad("empty offset table"))? as usize;
        let out_base = header_len;
        let in_base = out_total
            .checked_mul(ENTRY_BYTES as usize)
            .and_then(|b| b.checked_add(out_base))
            .ok_or_else(|| bad("entry counts overflow the out region"))?;
        Ok(HopIdxHeader { directed, n, out_offsets, in_offsets, out_base, in_base })
    }

    /// Total byte length a well-formed file with this header must have.
    /// Both loaders require the actual length to match this *exactly* —
    /// trailing bytes are rejected, not tolerated — and the saturating
    /// arithmetic turns overflowing header fields into a length no real
    /// file can match.
    pub(crate) fn expected_len(&self) -> usize {
        (self.in_offsets.last().copied().unwrap_or(0) as usize)
            .saturating_mul(ENTRY_BYTES as usize)
            .saturating_add(self.in_base)
    }
}

fn offsets_sorted(offsets: &[u64]) -> bool {
    offsets.windows(2).all(|w| w[0] <= w[1])
}

/// A 2-hop index stored in a counted file, queryable without loading the
/// labels into memory.
pub struct DiskIndex {
    file: CountedFile,
    directed: bool,
    n: usize,
    out_offsets: Vec<u64>,
    in_offsets: Vec<u64>,
    out_base: u64,
    in_base: u64,
    scratch_s: Vec<LabelEntry>,
    scratch_t: Vec<LabelEntry>,
}

impl DiskIndex {
    /// Serialize `index` into a fresh file in `store`.
    pub fn create(index: &LabelIndex, store: &TempStore, tag: &str) -> std::io::Result<DiskIndex> {
        let mut file = store.create(tag)?;
        let n = index.num_vertices();
        let directed = index.is_directed();

        let (out_offsets, in_offsets) = match index {
            LabelIndex::Directed(d) => (offsets_of(&d.out_labels), offsets_of(&d.in_labels)),
            LabelIndex::Undirected(u) => (offsets_of(&u.labels), Vec::new()),
        };

        let mut buf: Vec<u8> = Vec::with_capacity(1 << 16);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&[directed as u8, 0, 0, 0]);
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for &o in &out_offsets {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        for &o in &in_offsets {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        let header_len = buf.len() as u64;
        let out_total = *out_offsets.last().unwrap_or(&0);
        let out_base = header_len;
        let in_base = out_base + out_total * ENTRY_BYTES;

        let push_labels = |buf: &mut Vec<u8>, labels: &[VertexLabels]| {
            for l in labels {
                for e in l.entries() {
                    buf.extend_from_slice(&e.pivot.to_le_bytes());
                    buf.extend_from_slice(&e.dist.to_le_bytes());
                }
            }
        };
        match index {
            LabelIndex::Directed(d) => {
                push_labels(&mut buf, &d.out_labels);
                push_labels(&mut buf, &d.in_labels);
            }
            LabelIndex::Undirected(u) => push_labels(&mut buf, &u.labels),
        }
        file.write_all(&buf)?;
        file.flush()?;

        Ok(DiskIndex {
            file,
            directed,
            n,
            out_offsets,
            in_offsets,
            out_base,
            in_base,
            scratch_s: Vec::new(),
            scratch_t: Vec::new(),
        })
    }

    /// Open an index previously written by [`DiskIndex::create`] (e.g.
    /// a persisted file re-opened in a later process).
    pub fn open(mut file: CountedFile) -> std::io::Result<DiskIndex> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut prefix = [0u8; 20];
        file.read_exact_at(0, &mut prefix)?;
        if &prefix[..8] != MAGIC {
            return Err(bad("not a HOPIDX01 file"));
        }
        let directed = prefix[8] != 0;
        let n = u64::from_le_bytes(prefix[12..20].try_into().unwrap()) as usize;
        // Bound the untrusted vertex count by the file length before
        // sizing the header buffer from it: the directory alone needs
        // more than 8 bytes per vertex, so a corrupt count either
        // fails here or yields a modest allocation.
        let file_len = file.len()? as usize;
        let header_len = n
            .checked_add(1)
            .and_then(|slots| slots.checked_mul(8 * if directed { 2 } else { 1 }))
            .and_then(|dir| dir.checked_add(20))
            .filter(|&len| len <= file_len)
            .ok_or_else(|| bad("vertex count exceeds the index file"))?;
        let mut header_bytes = vec![0u8; header_len];
        file.read_exact_at(0, &mut header_bytes)?;
        let header = HopIdxHeader::parse(&header_bytes)?;
        // Exact, not `>=`: trailing bytes mean the file is not what the
        // header says it is, and serving from it would be a guess.
        if file.len()? as usize != header.expected_len() {
            return Err(bad("index file length does not match its header"));
        }
        Ok(DiskIndex {
            file,
            directed: header.directed,
            n: header.n,
            out_offsets: header.out_offsets,
            in_offsets: header.in_offsets,
            out_base: header.out_base as u64,
            in_base: header.in_base as u64,
            scratch_s: Vec::new(),
            scratch_t: Vec::new(),
        })
    }

    /// Consume the handle, keeping the backing file on disk, and return
    /// its path (pair with [`DiskIndex::open`] to reload later).
    pub fn persist(mut self) -> std::path::PathBuf {
        self.file.persist();
        self.file.path().to_path_buf()
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Whether this index stores separate `Lin`/`Lout` directions.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Bytes occupied by the index file.
    pub fn file_bytes(&self) -> std::io::Result<u64> {
        self.file.len()
    }

    /// Bytes held resident by this handle (the offset directories; the
    /// entries stay on disk).
    pub fn resident_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<u64>()
    }

    /// The I/O counters recording query traffic.
    pub fn stats(&self) -> Arc<IoStats> {
        self.file.stats()
    }

    fn read_label(
        file: &mut CountedFile,
        base: u64,
        offsets: &[u64],
        v: VertexId,
        scratch: &mut Vec<LabelEntry>,
    ) -> std::io::Result<()> {
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        let count = (hi - lo) as usize;
        scratch.clear();
        if count == 0 {
            return Ok(());
        }
        let mut bytes = vec![0u8; count * ENTRY_BYTES as usize];
        file.read_exact_at(base + lo * ENTRY_BYTES, &mut bytes)?;
        scratch.reserve(count);
        for chunk in bytes.chunks_exact(ENTRY_BYTES as usize) {
            let pivot = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
            let dist = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
            scratch.push(LabelEntry::new(pivot, dist));
        }
        Ok(())
    }

    /// Disk-based distance query: two label reads plus a merge join.
    ///
    /// `s == t` is answered from the trivial self-entry without
    /// touching the disk — paying two label reads to rediscover
    /// `dist(v, v) = 0` would double the I/O of self-queries.
    pub fn query(&mut self, s: VertexId, t: VertexId) -> std::io::Result<Dist> {
        if s == t {
            return Ok(0);
        }
        let (s_base, s_offsets) = (self.out_base, &self.out_offsets);
        Self::read_label(&mut self.file, s_base, s_offsets, s, &mut self.scratch_s)?;
        let (t_base, t_offsets) = if self.directed {
            (self.in_base, &self.in_offsets)
        } else {
            (self.out_base, &self.out_offsets)
        };
        Self::read_label(&mut self.file, t_base, t_offsets, t, &mut self.scratch_t)?;
        Ok(join_min(&self.scratch_s, &self.scratch_t))
    }
}

/// A [`DiskIndex`] with an LRU label cache.
///
/// Coverage statistics (Table 7) show that a tiny set of top-ranked
/// vertices appears in nearly every label — and the *labels of hot
/// query endpoints* repeat heavily in real workloads too. Caching whole
/// per-vertex labels (not blocks) exploits that skew: a few thousand
/// cached labels absorb most of the two reads a cold query pays.
///
/// Queries take `&self`: the disk handle and cache live behind an
/// internal mutex, so one `CachedDiskIndex` can be shared across
/// serving threads (concurrent queries serialize — correct first; the
/// resident [`crate::flat::FlatIndex`] is the parallel fast path).
pub struct CachedDiskIndex {
    n: usize,
    directed: bool,
    state: Mutex<CacheState>,
}

struct CacheState {
    inner: DiskIndex,
    capacity: usize,
    /// vertex (by side) -> (entries, LRU stamp)
    cache: HashMap<(VertexId, bool), (Vec<LabelEntry>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

use std::collections::HashMap;
use std::sync::Mutex;

fn poisoned() -> std::io::Error {
    std::io::Error::other("disk index lock poisoned")
}

impl CachedDiskIndex {
    /// Wrap a disk index with a cache of up to `capacity` labels.
    pub fn new(inner: DiskIndex, capacity: usize) -> CachedDiskIndex {
        let (n, directed) = (inner.num_vertices(), inner.is_directed());
        CachedDiskIndex {
            n,
            directed,
            state: Mutex::new(CacheState {
                inner,
                capacity: capacity.max(2),
                cache: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// `(hits, misses)` since creation.
    pub fn hit_stats(&self) -> (u64, u64) {
        self.state.lock().map(|s| (s.hits, s.misses)).unwrap_or((0, 0))
    }

    /// Number of vertices covered by the wrapped index.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Whether the wrapped index is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Bytes held resident: the wrapped index's offset directories plus
    /// the entries currently cached.
    pub fn resident_bytes(&self) -> usize {
        self.state
            .lock()
            .map(|s| {
                s.inner.resident_bytes()
                    + s.cache.values().map(|(l, _)| l.len() * ENTRY_BYTES as usize).sum::<usize>()
            })
            .unwrap_or(0)
    }

    /// Distance query; label reads go through the cache (`s == t`
    /// short-circuits to 0 without consulting cache, disk, or lock).
    pub fn query(&self, s: VertexId, t: VertexId) -> std::io::Result<Dist> {
        if s == t {
            return Ok(0);
        }
        let mut state = self.state.lock().map_err(|_| poisoned())?;
        let ls = state.label(s, false)?;
        let lt = state.label(t, true)?;
        Ok(join_min(&ls, &lt))
    }
}

impl CacheState {
    fn label(&mut self, v: VertexId, target_side: bool) -> std::io::Result<Vec<LabelEntry>> {
        self.clock += 1;
        let clock = self.clock;
        if let Some((entries, stamp)) = self.cache.get_mut(&(v, target_side)) {
            *stamp = clock;
            self.hits += 1;
            return Ok(entries.clone());
        }
        self.misses += 1;
        let (base, offsets) = if target_side && self.inner.directed {
            (self.inner.in_base, &self.inner.in_offsets)
        } else {
            (self.inner.out_base, &self.inner.out_offsets)
        };
        let mut scratch = Vec::new();
        DiskIndex::read_label(&mut self.inner.file, base, offsets, v, &mut scratch)?;
        if self.cache.len() >= self.capacity {
            // Evict the least-recently used entry (linear scan — the
            // cache is small and eviction is off the hot hit path).
            if let Some((&key, _)) = self.cache.iter().min_by_key(|(_, (_, stamp))| *stamp) {
                self.cache.remove(&key);
            }
        }
        self.cache.insert((v, target_side), (scratch.clone(), clock));
        Ok(scratch)
    }
}

fn offsets_of(labels: &[VertexLabels]) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(labels.len() + 1);
    offsets.push(0u64);
    let mut acc = 0u64;
    for l in labels {
        acc += l.len() as u64;
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DirectedLabels;
    use sfgraph::INF_DIST;

    fn small_directed_index() -> LabelIndex {
        // Path 1 -> 0 -> 2 plus 3 isolated.
        let mut d = DirectedLabels {
            in_labels: (0..4).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            out_labels: (0..4).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        };
        d.out_labels[1].insert_min(LabelEntry::new(0, 1));
        d.in_labels[2].insert_min(LabelEntry::new(0, 1));
        LabelIndex::Directed(d)
    }

    #[test]
    fn disk_queries_match_memory_queries() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let mut disk = DiskIndex::create(&index, &store, "idx").unwrap();
        for s in 0..4u32 {
            for t in 0..4u32 {
                assert_eq!(disk.query(s, t).unwrap(), index.query(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn undirected_roundtrip() {
        let mut idx = LabelIndex::new_undirected(3);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[1].insert_min(LabelEntry::new(0, 2));
            u.labels[2].insert_min(LabelEntry::new(0, 5));
        }
        let store = TempStore::new().unwrap();
        let mut disk = DiskIndex::create(&idx, &store, "u").unwrap();
        assert_eq!(disk.query(1, 2).unwrap(), 7);
        assert_eq!(disk.query(2, 1).unwrap(), 7);
        assert_eq!(disk.query(0, 0).unwrap(), 0);
    }

    #[test]
    fn query_io_is_two_label_reads() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let mut disk = DiskIndex::create(&index, &store, "io").unwrap();
        let stats = disk.stats();
        let before_ops = stats.read_ops();
        disk.query(1, 2).unwrap();
        assert_eq!(stats.read_ops() - before_ops, 2, "one read per label");
    }

    #[test]
    fn self_query_does_no_io() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let mut disk = DiskIndex::create(&index, &store, "self").unwrap();
        let stats = disk.stats();
        let (ops, bytes) = (stats.read_ops(), stats.read_bytes());
        for v in 0..4u32 {
            assert_eq!(disk.query(v, v).unwrap(), 0);
        }
        assert_eq!(stats.read_ops(), ops, "self-queries must not read labels");
        assert_eq!(stats.read_bytes(), bytes, "self-queries must not read bytes");

        // The cached wrapper must not spend cache slots on them either.
        let cached = CachedDiskIndex::new(disk, 16);
        for v in 0..4u32 {
            assert_eq!(cached.query(v, v).unwrap(), 0);
        }
        assert_eq!(cached.hit_stats(), (0, 0), "self-queries bypass the cache");
        assert_eq!(stats.read_ops(), ops);
    }

    #[test]
    fn unreachable_pairs() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let mut disk = DiskIndex::create(&index, &store, "inf").unwrap();
        assert_eq!(disk.query(3, 0).unwrap(), INF_DIST);
        assert_eq!(disk.query(2, 1).unwrap(), INF_DIST);
    }

    #[test]
    fn cached_index_matches_and_caches() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let disk = DiskIndex::create(&index, &store, "cache").unwrap();
        let stats = disk.stats();
        let cached = CachedDiskIndex::new(disk, 16);
        // First round: cold; second round: every label cached.
        for _round in 0..2 {
            for s in 0..4u32 {
                for t in 0..4u32 {
                    assert_eq!(cached.query(s, t).unwrap(), index.query(s, t));
                }
            }
        }
        let (hits, misses) = cached.hit_stats();
        // 16 pairs per round, minus the 4 self-pairs that short-circuit
        // before touching the cache, times 2 label lookups and 2 rounds.
        assert_eq!(hits + misses, 48);
        assert!(hits >= 24, "second round must be all hits: {hits} hits");
        // I/O stops growing once the cache is warm.
        let ops_warm = stats.read_ops();
        cached.query(1, 2).unwrap();
        assert_eq!(stats.read_ops(), ops_warm, "warm query must not touch the disk");
    }

    #[test]
    fn cache_eviction_keeps_answers_correct() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let disk = DiskIndex::create(&index, &store, "evict").unwrap();
        let cached = CachedDiskIndex::new(disk, 2); // thrashing capacity
        for _ in 0..3 {
            for s in 0..4u32 {
                for t in 0..4u32 {
                    assert_eq!(cached.query(s, t).unwrap(), index.query(s, t));
                }
            }
        }
        let (hits, misses) = cached.hit_stats();
        assert!(misses > 16, "capacity 2 must keep missing (got {misses} misses)");
        assert!(hits > 0, "same-vertex second read should still hit");
    }

    #[test]
    fn persist_and_reopen() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index();
        let disk = DiskIndex::create(&index, &store, "keep").unwrap();
        let path = disk.persist();
        assert!(path.exists());
        // Reopen through a fresh counted handle.
        let store2 = TempStore::new().unwrap();
        let mut f = store2.create("scratch").unwrap();
        // Splice the persisted file into a CountedFile via reopen-at-path:
        // copy bytes over the scratch file.
        std::io::Write::write_all(&mut f, &std::fs::read(&path).unwrap()).unwrap();
        std::io::Write::flush(&mut f).unwrap();
        let mut reopened = DiskIndex::open(f).unwrap();
        for s in 0..4u32 {
            for t in 0..4u32 {
                assert_eq!(reopened.query(s, t).unwrap(), index.query(s, t));
            }
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn open_rejects_garbage_and_truncation() {
        let store = TempStore::new().unwrap();
        let mut junk = store.create("junk").unwrap();
        std::io::Write::write_all(&mut junk, b"definitely-not-an-index").unwrap();
        std::io::Write::flush(&mut junk).unwrap();
        assert!(DiskIndex::open(junk).is_err());

        // Valid magic, absurd vertex count: must fail cleanly without
        // an overflow panic or a vertex-count-sized allocation.
        for bogus_n in [u64::MAX, 1u64 << 61, 1 << 40] {
            let mut crafted = store.create("crafted").unwrap();
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&[1, 0, 0, 0]);
            bytes.extend_from_slice(&bogus_n.to_le_bytes());
            bytes.extend_from_slice(&[0u8; 16]);
            std::io::Write::write_all(&mut crafted, &bytes).unwrap();
            std::io::Write::flush(&mut crafted).unwrap();
            assert!(DiskIndex::open(crafted).is_err(), "n = {bogus_n}");
        }

        // Valid header but truncated body.
        let index = small_directed_index();
        let disk = DiskIndex::create(&index, &store, "trunc").unwrap();
        let path = disk.persist();
        let bytes = std::fs::read(&path).unwrap();
        let mut cut = store.create("cut").unwrap();
        std::io::Write::write_all(&mut cut, &bytes[..bytes.len() - 8]).unwrap();
        std::io::Write::flush(&mut cut).unwrap();
        assert!(DiskIndex::open(cut).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn file_size_accounts_header_and_entries() {
        let store = TempStore::new().unwrap();
        let index = small_directed_index(); // 10 entries total
        let disk = DiskIndex::create(&index, &store, "sz").unwrap();
        let expect = 8 + 4 + 8 + 2 * 5 * 8 + 10 * 8;
        assert_eq!(disk.file_bytes().unwrap(), expect as u64);
    }
}
