//! The unified query surface every serving path dispatches through.
//!
//! [`QueryBackend`] abstracts over the two ways a finished index can be
//! queried at serving time — fully resident ([`crate::flat::FlatIndex`])
//! or disk-backed with an LRU label cache
//! ([`crate::disk::CachedDiskIndex`]) — so the server's generation
//! object and `hopdb-cli` hold one `Box<dyn QueryBackend>` instead of
//! matching an enum at every call site.
//!
//! Both implementations answer in *rank space* (see the crate-level
//! rank convention); id translation via a `.rank` sidecar stays the
//! caller's job, as does range-checking vertex ids against
//! [`QueryBackend::num_vertices`] — out-of-range ids may panic.
//!
//! ```
//! use hoplabels::{LabelEntry, LabelIndex, QueryBackend};
//! use hoplabels::flat::FlatIndex;
//!
//! let mut idx = LabelIndex::new_undirected(3);
//! if let LabelIndex::Undirected(u) = &mut idx {
//!     u.labels[1].insert_min(LabelEntry::new(0, 2));
//!     u.labels[2].insert_min(LabelEntry::new(0, 5));
//! }
//! let backend: Box<dyn QueryBackend> = Box::new(FlatIndex::from_index(&idx));
//! assert_eq!(backend.query(1, 2).unwrap(), 7);
//! let mut out = Vec::new();
//! backend.query_many_into(&[(1, 2), (2, 2)], 1, &mut out).unwrap();
//! assert_eq!(out, vec![7, 0]);
//! ```

use sfgraph::{Dist, VertexId};

use crate::disk::CachedDiskIndex;
use crate::flat::FlatIndex;

/// A queryable, immutable index generation: the trait the serving tier
/// (daemon, CLI) programs against.
///
/// Implementors must be shareable across threads (`Send + Sync`);
/// concurrent `query` calls may serialize internally (the disk fallback
/// does) but must stay correct.
pub trait QueryBackend: Send + Sync {
    /// Number of vertices covered; valid ids are `0..num_vertices()`.
    fn num_vertices(&self) -> usize;

    /// Whether the index stores separate `Lin`/`Lout` directions.
    fn is_directed(&self) -> bool;

    /// Bytes this backend holds resident in memory (entry arrays and
    /// directories for the flat path; offset directories and the label
    /// cache bound for the disk path).
    fn resident_bytes(&self) -> usize;

    /// Whether answers come from memory (`true`) or a disk-backed
    /// fallback (`false`).
    fn is_resident(&self) -> bool;

    /// Monotone identifier of the index generation this backend
    /// serves, so stats paths report provenance uniformly instead of
    /// special-casing backend types. Bare indexes are unversioned
    /// (`0`); the serving tier wraps them in
    /// [`crate::overlay::LiveIndex`], which carries the real id.
    fn generation_id(&self) -> u64 {
        0
    }

    /// Exact distance `dist(s, t)` in rank space;
    /// `sfgraph::INF_DIST` when unreachable. Ids must be in range.
    fn query(&self, s: VertexId, t: VertexId) -> std::io::Result<Dist>;

    /// Append one answer per pair to `out`, in input order, each
    /// bit-identical to [`QueryBackend::query`] on the same pair.
    /// `threads` is a parallelism hint (`0` = all cores); backends that
    /// cannot fan out ignore it. On error `out` is left untouched.
    fn query_many_into(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
        out: &mut Vec<Dist>,
    ) -> std::io::Result<()>;
}

impl QueryBackend for FlatIndex {
    fn num_vertices(&self) -> usize {
        FlatIndex::num_vertices(self)
    }

    fn is_directed(&self) -> bool {
        FlatIndex::is_directed(self)
    }

    fn resident_bytes(&self) -> usize {
        FlatIndex::resident_bytes(self)
    }

    fn is_resident(&self) -> bool {
        true
    }

    fn query(&self, s: VertexId, t: VertexId) -> std::io::Result<Dist> {
        Ok(FlatIndex::query(self, s, t))
    }

    fn query_many_into(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
        out: &mut Vec<Dist>,
    ) -> std::io::Result<()> {
        FlatIndex::query_many_into(self, pairs, threads, out);
        Ok(())
    }
}

impl QueryBackend for CachedDiskIndex {
    fn num_vertices(&self) -> usize {
        CachedDiskIndex::num_vertices(self)
    }

    fn is_directed(&self) -> bool {
        CachedDiskIndex::is_directed(self)
    }

    fn resident_bytes(&self) -> usize {
        CachedDiskIndex::resident_bytes(self)
    }

    fn is_resident(&self) -> bool {
        false
    }

    fn query(&self, s: VertexId, t: VertexId) -> std::io::Result<Dist> {
        CachedDiskIndex::query(self, s, t)
    }

    fn query_many_into(
        &self,
        pairs: &[(VertexId, VertexId)],
        _threads: usize,
        out: &mut Vec<Dist>,
    ) -> std::io::Result<()> {
        // All-or-nothing: stage into a scratch vector so an I/O error
        // halfway through leaves `out` untouched, as the trait promises.
        let mut staged = Vec::with_capacity(pairs.len());
        for &(s, t) in pairs {
            staged.push(CachedDiskIndex::query(self, s, t)?);
        }
        out.extend_from_slice(&staged);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskIndex;
    use crate::{LabelEntry, LabelIndex};
    use extmem::device::TempStore;

    fn tiny_index() -> LabelIndex {
        let mut idx = LabelIndex::new_undirected(3);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[1].insert_min(LabelEntry::new(0, 2));
            u.labels[2].insert_min(LabelEntry::new(0, 5));
        }
        idx
    }

    #[test]
    fn flat_and_disk_backends_agree_through_the_trait() {
        let idx = tiny_index();
        let store = TempStore::new().unwrap();
        let disk = DiskIndex::create(&idx, &store, "qb").unwrap();
        let backends: Vec<Box<dyn QueryBackend>> =
            vec![Box::new(FlatIndex::from_index(&idx)), Box::new(CachedDiskIndex::new(disk, 16))];
        let pairs = [(0u32, 1u32), (1, 2), (2, 2), (0, 2)];
        let mut answers: Vec<Vec<Dist>> = Vec::new();
        for b in &backends {
            assert_eq!(b.num_vertices(), 3);
            assert!(!b.is_directed());
            assert!(b.resident_bytes() > 0);
            let mut out = vec![999];
            b.query_many_into(&pairs, 1, &mut out).unwrap();
            assert_eq!(out[0], 999, "query_many_into must append, not overwrite");
            for (&(s, t), &got) in pairs.iter().zip(&out[1..]) {
                assert_eq!(b.query(s, t).unwrap(), got, "{s}->{t}");
            }
            answers.push(out[1..].to_vec());
        }
        assert!(backends[0].is_resident());
        assert!(!backends[1].is_resident());
        assert_eq!(answers[0], answers[1], "flat and disk answers diverge");
    }
}
