//! Delta overlay: a small second index answering queries on a mutated
//! graph without rebuilding the frozen labels.
//!
//! The frozen [`FlatIndex`](crate::flat::FlatIndex) is exact for the
//! graph it was built from. When edges are *inserted* (or an existing
//! edge's weight is decreased — insertions merge by minimum weight),
//! distances can only shrink, and every improved path must cross at
//! least one new edge. [`OverlaySnapshot`] exploits that decomposition:
//! any path in the mutated graph `G' = G ∪ E'` that uses a new edge
//! splits as
//!
//! ```text
//!   s ──old──▶ a ──(G' closure)──▶ b ──old──▶ t
//! ```
//!
//! where `a` is the tail of the *first* new edge on the path and `b`
//! the head of the *last* one. The overlay therefore stores the
//! affected vertex set `A` (endpoints of inserted edges) together with
//! the exact all-pairs closure `D[a][b] = d_G'(a, b)` over `A`, and the
//! serving-time answer becomes
//!
//! ```text
//!   d_G'(s, t) = min( frozen(s, t),
//!                     min over a ∈ tails, b ∈ heads of
//!                         frozen(s, a) + D[a][b] + frozen(b, t) )
//! ```
//!
//! The closure itself is computed the same way: seed an `|A| × |A|`
//! matrix with `min(frozen(x, y), new-edge weight)` and run
//! Floyd–Warshall — old-graph segments between affected vertices are
//! already covered by frozen queries, so the closure is exact for `G'`.
//!
//! Cost model: a snapshot rebuild is `O(|A|²)` frozen queries plus an
//! `O(|A|³)` closure, and each query against a non-empty overlay adds
//! `O(|A|)` frozen point queries plus an `O(|A|²)` scan. Both are
//! intentionally bounded by keeping the overlay small and compacting
//! (full rebuild on the mutated graph, which empties the overlay) once
//! it crosses a threshold.
//!
//! [`LiveIndex`] packages a frozen backend plus one immutable snapshot
//! behind [`QueryBackend`], so the serving tier swaps whole snapshots
//! atomically (copy-on-write) and every pinned `LiveIndex` keeps
//! answering from exactly one consistent state.
//!
//! Everything here operates in *rank space*, like the rest of the
//! crate; id translation stays the caller's job.

use std::io;
use std::sync::Arc;

use sfgraph::{Dist, VertexId, INF_DIST};

use crate::query::QueryBackend;

/// An immutable view of a batch of edge insertions on top of a frozen
/// index: the affected vertices and the exact distance closure among
/// them on the mutated graph. Built once per update batch, then shared
/// read-only by every in-flight query.
#[derive(Debug, Default)]
pub struct OverlaySnapshot {
    directed: bool,
    /// Deduplicated inserted edges, minimum weight per endpoint pair;
    /// undirected edges normalised to `u < v`. Kept so the overlay can
    /// be merged into the next snapshot and replayed by a compactor.
    edges: Vec<(VertexId, VertexId, Dist)>,
    /// Sorted endpoints of all inserted edges (the affected set `A`).
    verts: Vec<VertexId>,
    /// Positions in `verts` that can start an overlay detour: tails of
    /// inserted edges (every endpoint for undirected graphs).
    srcs: Vec<u32>,
    /// Positions in `verts` that can end one: heads of inserted edges.
    dsts: Vec<u32>,
    /// `verts.len()²` row-major mutated-graph distances over `verts`.
    closure: Vec<Dist>,
}

impl OverlaySnapshot {
    /// An overlay with no edges; queries pass through unchanged.
    pub fn empty() -> OverlaySnapshot {
        OverlaySnapshot::default()
    }

    /// Build a snapshot for `edges` (in rank space) over `frozen`.
    ///
    /// Self-loops are dropped and zero weights clamped to 1, mirroring
    /// `sfgraph::GraphBuilder`'s cleaning rules so that a later full
    /// rebuild of the mutated graph answers identically. Duplicate
    /// insertions keep the minimum weight; an edge the frozen graph
    /// already covers with a smaller weight is harmless (the `min`
    /// never loses to it).
    pub fn build(
        frozen: &dyn QueryBackend,
        edges: &[(VertexId, VertexId, Dist)],
    ) -> io::Result<OverlaySnapshot> {
        let directed = frozen.is_directed();
        let mut dedup: std::collections::BTreeMap<(VertexId, VertexId), Dist> =
            std::collections::BTreeMap::new();
        for &(u, v, w) in edges {
            if u == v {
                continue;
            }
            let key = if directed || u < v { (u, v) } else { (v, u) };
            let w = w.max(1);
            let slot = dedup.entry(key).or_insert(w);
            *slot = (*slot).min(w);
        }
        let edges: Vec<(VertexId, VertexId, Dist)> =
            dedup.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        if edges.is_empty() {
            return Ok(OverlaySnapshot { directed, ..OverlaySnapshot::default() });
        }

        let mut verts: Vec<VertexId> = edges.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        verts.sort_unstable();
        verts.dedup();
        let k = verts.len();
        let pos = |v: VertexId| verts.binary_search(&v).expect("endpoint in verts");

        // Base matrix: old-graph distances between affected vertices,
        // improved by the direct new edges.
        let mut closure = vec![INF_DIST; k * k];
        for (i, &a) in verts.iter().enumerate() {
            for (j, &b) in verts.iter().enumerate() {
                closure[i * k + j] = if i == j { 0 } else { frozen.query(a, b)? };
            }
        }
        for &(u, v, w) in &edges {
            let (pu, pv) = (pos(u), pos(v));
            let forward = &mut closure[pu * k + pv];
            *forward = (*forward).min(w);
            if !directed {
                let backward = &mut closure[pv * k + pu];
                *backward = (*backward).min(w);
            }
        }
        // Floyd–Warshall closes the matrix over paths alternating
        // old-graph segments and new edges — exactly the mutated-graph
        // distances among `verts`.
        for m in 0..k {
            for i in 0..k {
                let dim = closure[i * k + m];
                if dim == INF_DIST {
                    continue;
                }
                for j in 0..k {
                    let cand = dim.saturating_add(closure[m * k + j]);
                    if cand < closure[i * k + j] {
                        closure[i * k + j] = cand;
                    }
                }
            }
        }

        let (srcs, dsts) = if directed {
            let mut srcs: Vec<u32> = edges.iter().map(|&(u, _, _)| pos(u) as u32).collect();
            let mut dsts: Vec<u32> = edges.iter().map(|&(_, v, _)| pos(v) as u32).collect();
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();
            (srcs, dsts)
        } else {
            let all: Vec<u32> = (0..k as u32).collect();
            (all.clone(), all)
        };
        Ok(OverlaySnapshot { directed, edges, verts, srcs, dsts, closure })
    }

    /// Whether the overlay holds no edges (queries pass through).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Deduplicated inserted-edge count — the compaction trigger metric.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The deduplicated inserted edges, `(u, v, w)` in rank space.
    pub fn edges(&self) -> &[(VertexId, VertexId, Dist)] {
        &self.edges
    }

    /// Number of distinct vertices touched by inserted edges.
    pub fn affected(&self) -> usize {
        self.verts.len()
    }

    /// Heap bytes held by the snapshot (edge list plus closure).
    pub fn resident_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<(VertexId, VertexId, Dist)>()
            + self.verts.len() * std::mem::size_of::<VertexId>()
            + (self.srcs.len() + self.dsts.len()) * std::mem::size_of::<u32>()
            + self.closure.len() * std::mem::size_of::<Dist>()
    }

    /// Improve a frozen answer `base = frozen(s, t)` with paths that
    /// cross inserted edges. Returns `min(base, best overlay detour)`.
    pub fn improve(
        &self,
        frozen: &dyn QueryBackend,
        s: VertexId,
        t: VertexId,
        base: Dist,
    ) -> io::Result<Dist> {
        if self.edges.is_empty() || base == 0 {
            // `base == 0` means `s == t`; weights are ≥ 1 so no detour
            // through a new edge can beat it.
            return Ok(base);
        }
        let k = self.verts.len();
        let mut head_dist = Vec::with_capacity(self.dsts.len());
        for &j in &self.dsts {
            head_dist.push(frozen.query(self.verts[j as usize], t)?);
        }
        let mut best = base;
        for &i in &self.srcs {
            let da = frozen.query(s, self.verts[i as usize])?;
            if da >= best {
                continue;
            }
            let row = &self.closure[i as usize * k..(i as usize + 1) * k];
            for (&j, &db) in self.dsts.iter().zip(&head_dist) {
                if db >= best {
                    continue;
                }
                let cand = da.saturating_add(row[j as usize]).saturating_add(db);
                if cand < best {
                    best = cand;
                }
            }
        }
        Ok(best)
    }

    /// Whether the snapshot was built against a directed backend.
    pub fn is_directed(&self) -> bool {
        self.directed
    }
}

/// A frozen backend plus one immutable overlay snapshot, served as a
/// single [`QueryBackend`]: `query` answers `min(frozen, overlay)`.
///
/// `LiveIndex` is cheap to clone-with-new-overlay (the frozen side is
/// shared through an `Arc`), which is how the serving tier applies an
/// update batch: derive the next snapshot, wrap it in a new `LiveIndex`
/// and publish that atomically. In-flight queries keep the `Arc` they
/// pinned, so each one observes exactly one `(frozen, overlay)` state.
pub struct LiveIndex {
    frozen: Arc<dyn QueryBackend>,
    overlay: Arc<OverlaySnapshot>,
    generation: u64,
}

impl LiveIndex {
    /// Wrap a frozen backend with an empty overlay.
    pub fn new(frozen: Arc<dyn QueryBackend>, generation: u64) -> LiveIndex {
        LiveIndex { frozen, overlay: Arc::new(OverlaySnapshot::empty()), generation }
    }

    /// Wrap a frozen backend with an existing snapshot.
    pub fn with_overlay(
        frozen: Arc<dyn QueryBackend>,
        overlay: Arc<OverlaySnapshot>,
        generation: u64,
    ) -> LiveIndex {
        LiveIndex { frozen, overlay, generation }
    }

    /// A new `LiveIndex` over the same frozen labels whose overlay
    /// covers `edges` (rank space, the *complete* desired edge set —
    /// callers merge old overlay edges with the new batch themselves,
    /// typically by keeping an append-only log).
    pub fn rebuild_overlay(&self, edges: &[(VertexId, VertexId, Dist)]) -> io::Result<LiveIndex> {
        let snapshot = OverlaySnapshot::build(&*self.frozen, edges)?;
        Ok(LiveIndex {
            frozen: Arc::clone(&self.frozen),
            overlay: Arc::new(snapshot),
            generation: self.generation,
        })
    }

    /// The frozen half.
    pub fn frozen(&self) -> &Arc<dyn QueryBackend> {
        &self.frozen
    }

    /// The current overlay snapshot.
    pub fn overlay(&self) -> &Arc<OverlaySnapshot> {
        &self.overlay
    }
}

impl QueryBackend for LiveIndex {
    fn num_vertices(&self) -> usize {
        self.frozen.num_vertices()
    }

    fn is_directed(&self) -> bool {
        self.frozen.is_directed()
    }

    fn resident_bytes(&self) -> usize {
        self.frozen.resident_bytes() + self.overlay.resident_bytes()
    }

    fn is_resident(&self) -> bool {
        self.frozen.is_resident()
    }

    fn generation_id(&self) -> u64 {
        self.generation
    }

    fn query(&self, s: VertexId, t: VertexId) -> io::Result<Dist> {
        let base = self.frozen.query(s, t)?;
        self.overlay.improve(&*self.frozen, s, t, base)
    }

    fn query_many_into(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
        out: &mut Vec<Dist>,
    ) -> io::Result<()> {
        // Stage so an overlay I/O error leaves `out` untouched. The
        // overlay pass is per-pair and order-independent, so answers
        // stay bit-identical for any `threads` value the frozen side
        // fans out with.
        let mut staged = Vec::with_capacity(pairs.len());
        self.frozen.query_many_into(pairs, threads, &mut staged)?;
        if !self.overlay.is_empty() {
            for (slot, &(s, t)) in staged.iter_mut().zip(pairs) {
                *slot = self.overlay.improve(&*self.frozen, s, t, *slot)?;
            }
        }
        out.extend_from_slice(&staged);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::index::LabelIndex;
    use crate::LabelEntry;
    use sfgraph::builder::GraphBuilder;
    use sfgraph::traversal::all_pairs;
    use sfgraph::Graph;

    /// A trivially-exact 2-hop cover: every vertex stores the distance
    /// to/from every higher-ranked vertex (id ≤ its own). The
    /// highest-ranked vertex on any shortest path is such a pivot for
    /// both endpoints, so joins are exact.
    fn full_index(g: &Graph) -> LabelIndex {
        let n = g.num_vertices();
        let ap = all_pairs(g);
        let ap_rev: Option<Vec<Vec<Dist>>> = g.is_directed().then(|| {
            (0..n)
                .map(|t| (0..n).map(|s| ap[s][t]).collect::<Vec<Dist>>())
                .collect::<Vec<Vec<Dist>>>()
        });
        let mut idx = if g.is_directed() {
            LabelIndex::new_directed(n)
        } else {
            LabelIndex::new_undirected(n)
        };
        for v in 0..n {
            for p in 0..=v {
                match &mut idx {
                    LabelIndex::Undirected(u) => {
                        if ap[v][p] != INF_DIST {
                            u.labels[v].insert_min(LabelEntry::new(p as VertexId, ap[v][p]));
                        }
                    }
                    LabelIndex::Directed(d) => {
                        if ap[v][p] != INF_DIST {
                            d.out_labels[v].insert_min(LabelEntry::new(p as VertexId, ap[v][p]));
                        }
                        let to_v = ap_rev.as_ref().unwrap()[v][p];
                        if to_v != INF_DIST {
                            d.in_labels[v].insert_min(LabelEntry::new(p as VertexId, to_v));
                        }
                    }
                }
            }
        }
        idx
    }

    fn check_overlay(mut builder: GraphBuilder, inserts: &[(VertexId, VertexId, Dist)]) {
        let g = builder.build_clone();
        let frozen: Arc<dyn QueryBackend> = Arc::new(FlatIndex::from_index(&full_index(&g)));
        let live = LiveIndex::new(Arc::clone(&frozen), 1).rebuild_overlay(inserts).unwrap();

        for &(u, v, w) in inserts {
            builder.add_weighted_edge(u, v, w);
        }
        let mutated = builder.build();
        let want = all_pairs(&mutated);

        let n = g.num_vertices();
        let pairs: Vec<(VertexId, VertexId)> =
            (0..n).flat_map(|s| (0..n).map(move |t| (s as VertexId, t as VertexId))).collect();
        let mut got = Vec::new();
        live.query_many_into(&pairs, 1, &mut got).unwrap();
        for (&(s, t), &d) in pairs.iter().zip(&got) {
            assert_eq!(d, want[s as usize][t as usize], "{s}->{t}");
            assert_eq!(live.query(s, t).unwrap(), d, "point query {s}->{t}");
        }
        let mut threaded = Vec::new();
        live.query_many_into(&pairs, 4, &mut threaded).unwrap();
        assert_eq!(got, threaded, "answers must not depend on the thread count");
    }

    #[test]
    fn undirected_overlay_matches_rebuilt_ground_truth() {
        let mut b = GraphBuilder::new_undirected(8).weighted();
        for &(u, v, w) in
            &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 4, 4), (4, 5, 1), (0, 6, 9), (6, 7, 2)]
        {
            b.add_weighted_edge(u, v, w);
        }
        // A shortcut, a brand-new attachment for an isolated-ish tail,
        // and a weight improvement on an existing edge.
        check_overlay(b, &[(0, 4, 1), (5, 7, 2), (0, 6, 3)]);
    }

    #[test]
    fn directed_overlay_matches_rebuilt_ground_truth() {
        let mut b = GraphBuilder::new_directed(7).weighted();
        for &(u, v, w) in &[(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 0, 5), (4, 5, 2), (5, 6, 3)] {
            b.add_weighted_edge(u, v, w);
        }
        // Connect the two components in one direction only and add a
        // back-edge shortcut.
        check_overlay(b, &[(2, 4, 1), (6, 0, 2), (3, 1, 1)]);
    }

    #[test]
    fn empty_overlay_passes_queries_through() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let frozen: Arc<dyn QueryBackend> = Arc::new(FlatIndex::from_index(&full_index(&g)));
        let live = LiveIndex::new(Arc::clone(&frozen), 7);
        assert_eq!(live.generation_id(), 7);
        assert!(live.overlay().is_empty());
        assert_eq!(live.query(0, 2).unwrap(), 2);
        assert_eq!(live.query(0, 3).unwrap(), INF_DIST);
        assert_eq!(live.resident_bytes(), frozen.resident_bytes());
    }

    #[test]
    fn snapshot_dedups_and_cleans_like_graph_builder() {
        let mut b = GraphBuilder::new_undirected(4).weighted();
        b.add_weighted_edge(0, 1, 5);
        let g = b.build();
        let frozen: Arc<dyn QueryBackend> = Arc::new(FlatIndex::from_index(&full_index(&g)));
        // Self-loop dropped, duplicates keep min, zero clamps to 1,
        // mirrored undirected edges merge.
        let snap = OverlaySnapshot::build(
            &*frozen,
            &[(2, 2, 1), (1, 2, 9), (2, 1, 4), (3, 2, 0), (1, 2, 6)],
        )
        .unwrap();
        assert_eq!(snap.num_edges(), 2);
        assert_eq!(snap.edges(), &[(1, 2, 4), (2, 3, 1)]);
        assert_eq!(snap.affected(), 3);
        assert_eq!(snap.improve(&*frozen, 0, 3, INF_DIST).unwrap(), 10);
    }
}
