//! `FlatIndex` — a frozen, read-optimized struct-of-arrays label index.
//!
//! [`crate::index::LabelIndex`] is the *construction* representation:
//! one `Vec<LabelEntry>` per vertex, resizable because the engines keep
//! inserting and pruning. Once building is done, that layout pays for
//! its flexibility on every query: a pointer chase per label, an enum
//! dispatch per side, bounds checks in the join loop, and an
//! array-of-structs stride that drags the distance halves of entries
//! through the cache while the merge only compares pivots.
//!
//! `FlatIndex` freezes a finished index into CSR form (Akiba et al.'s
//! Pruned Landmark Labeling uses the same family of tricks to run
//! hub-label queries at memory bandwidth): a `u32` offset directory
//! per direction over one contiguous `data` array in which every
//! vertex's run stores its pivots first, then its dists —
//!
//! ```text
//! offsets: [o_0, o_1, …, o_n]
//! data:    [ …pivots(0)…, ⊥…, …dists(0)…, ∞…,  …pivots(1)…, ⊥…, … ]
//! ```
//!
//! Each pivot half is padded with [`SENTINEL`] (`u32::MAX`, never a
//! real vertex id) to a whole number of 4-lane SIMD blocks, the dist
//! half mirrors it with `INF_DIST`. That buys the hot join three
//! things: the block loop needs no slice-length checks (a sentinel can
//! only "match" another sentinel, and such a sum clamps back to
//! unreachable), it consumes any label in full blocks without ever
//! touching a neighbouring label, and a query side is one sequential
//! memory stream — the winning match's distance sits a couple of cache
//! lines behind the pivots being scanned instead of in a second random
//! array.
//!
//! The join itself is *adaptive*: balanced labels take the SIMD block
//! merge (all 16 lane pairs per block pair via four lane rotations,
//! advance the block with the smaller maximum), while heavily skewed
//! pairs (a tail vertex against a hub — the common case on scale-free
//! graphs) switch to galloping probes of the small side into the large
//! one.
//!
//! Throughput workloads go through [`FlatIndex::query_many`], which
//! shards a pair slice across scoped threads; the index is immutable,
//! so serving parallelises embarrassingly and results come back in
//! input order.

use std::path::Path;

use sfgraph::{Dist, VertexId, INF_DIST};

use crate::index::LabelIndex;

/// Label terminator stored after every per-vertex run in the pivot
/// array. `u32::MAX` is never a valid vertex id (graphs use dense ids
/// `0..n` with `n < u32::MAX`), so a sentinel compare can never collide
/// with a real pivot.
pub const SENTINEL: VertexId = VertexId::MAX;

/// When one label is at least this many times longer than the other,
/// the adaptive join abandons the linear merge and gallops the short
/// side into the long one. Below this ratio the merge's sequential
/// prefetch wins; above it, `short · log(long)` probes beat
/// `short + long` steps.
pub const GALLOP_RATIO: usize = 16;

/// One direction's labels: a CSR offset directory over one contiguous
/// `data` array holding, per vertex, the pivot run followed by the
/// matching dist run (each padded to whole 4-slot blocks):
///
/// ```text
/// offsets: [o_0, o_1, …, o_n]                       (u32 word offsets)
/// data:    [ …pivots(0)…,⊥pad, …dists(0)…,∞pad, …pivots(1)…, … ]
/// ```
///
/// Keeping a label's dists directly behind its pivots makes a query
/// side a *single* sequential memory stream: the rare match's distance
/// lookup lands a few cache lines after the pivots being scanned
/// instead of in a second random location.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct FlatSide {
    /// `offsets[v]..offsets[v + 1]` is vertex `v`'s run in `data`;
    /// pivots first, then the dist block.
    offsets: Vec<u32>,
    data: Vec<u32>,
    /// Real entries stored (sentinel padding excluded).
    entries: usize,
    /// Scratch for the label currently being built.
    cur_pivots: Vec<VertexId>,
    cur_dists: Vec<Dist>,
}

impl FlatSide {
    fn with_capacity(n: usize, entries: usize) -> FlatSide {
        FlatSide {
            offsets: Vec::with_capacity(n + 1),
            data: Vec::with_capacity(2 * entries + 8 * n),
            entries: 0,
            cur_pivots: Vec::new(),
            cur_dists: Vec::new(),
        }
    }

    /// Begin the run of the next vertex.
    fn begin_label(&mut self) {
        debug_assert!(self.cur_pivots.is_empty(), "previous label not ended");
        self.offsets.push(word_offset(self.data.len()));
    }

    fn push(&mut self, pivot: VertexId, dist: Dist) {
        self.cur_pivots.push(pivot);
        self.cur_dists.push(dist);
        self.entries += 1;
    }

    /// Terminate the current vertex's run: pad the pivot block with at
    /// least one sentinel up to a whole number of 4-slot blocks (so the
    /// SIMD join consumes any run in full blocks without ever reading a
    /// neighbouring label), pad the dist block to match, and flush both
    /// behind each other into `data`.
    fn end_label(&mut self) {
        loop {
            self.cur_pivots.push(SENTINEL);
            self.cur_dists.push(INF_DIST);
            if self.cur_pivots.len().is_multiple_of(4) {
                break;
            }
        }
        self.data.extend_from_slice(&self.cur_pivots);
        self.data.extend_from_slice(&self.cur_dists);
        self.cur_pivots.clear();
        self.cur_dists.clear();
    }

    fn finish(&mut self) {
        self.offsets.push(word_offset(self.data.len()));
        self.offsets.shrink_to_fit();
        self.data.shrink_to_fit();
        // Drop the build scratch entirely — the frozen side must not
        // keep a hub-label's worth of dead capacity alive for the
        // lifetime of a serving index.
        self.cur_pivots = Vec::new();
        self.cur_dists = Vec::new();
    }

    /// The sentinel-padded pivot run of `v` (the first half of the
    /// run; the dist block mirrors it in the second half).
    #[inline]
    fn pivots_of(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.data[lo..lo + (hi - lo) / 2]
    }

    /// The sentinel-padded run of `v` as a pivot slice plus a dist
    /// accessor, without bounds checks on the offset directory or the
    /// data array.
    ///
    /// # Safety
    /// `v < n` (the directory has `n + 1` slots) — [`FlatIndex::query`]
    /// asserts this once per query instead of paying four slice checks.
    /// The offsets themselves are trusted: construction appends them
    /// monotonically up to the final array length.
    #[inline]
    unsafe fn label_unchecked(&self, v: VertexId) -> (&[VertexId], &[Dist]) {
        let lo = *self.offsets.get_unchecked(v as usize) as usize;
        let hi = *self.offsets.get_unchecked(v as usize + 1) as usize;
        let half = (hi - lo) / 2;
        let base = self.data.as_ptr().add(lo);
        (std::slice::from_raw_parts(base, half), std::slice::from_raw_parts(base.add(half), half))
    }

    /// Number of real entries of `v` (sentinel padding excluded).
    fn len(&self, v: VertexId) -> usize {
        let pivots = self.pivots_of(v);
        let mut hi = pivots.len();
        while hi > 0 && pivots[hi - 1] == SENTINEL {
            hi -= 1;
        }
        hi
    }

    fn resident_bytes(&self) -> usize {
        (self.offsets.len() + self.data.len()) * std::mem::size_of::<u32>()
    }
}

/// Offsets are stored as `u32` words to halve the directory's cache
/// footprint; a label `data` array would need to exceed 16 GiB before
/// this overflows, at which point construction fails loudly.
fn word_offset(len: usize) -> u32 {
    u32::try_from(len).expect("FlatIndex data exceeds u32 offsets (> 4 Gi words)")
}

/// A frozen, query-only 2-hop label index in flat SoA/CSR layout.
///
/// Built from a finished [`LabelIndex`] with [`FlatIndex::from_index`],
/// or loaded straight from the serialized `HOPIDX01` on-disk format
/// with [`FlatIndex::from_hopidx_bytes`] / [`FlatIndex::load`] without
/// materialising the nested representation first.
///
/// ```
/// use hoplabels::flat::FlatIndex;
/// use hoplabels::{LabelEntry, LabelIndex};
///
/// let mut idx = LabelIndex::new_undirected(3);
/// if let LabelIndex::Undirected(u) = &mut idx {
///     u.labels[1].insert_min(LabelEntry::new(0, 2));
///     u.labels[2].insert_min(LabelEntry::new(0, 5));
/// }
/// let flat = FlatIndex::from_index(&idx);
/// assert_eq!(flat.query(1, 2), 7); // 1 –2– 0 –5– 2
/// assert_eq!(flat.query(2, 2), 0);
/// assert_eq!(flat.query_many(&[(1, 2), (2, 1)], 2), vec![7, 7]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatIndex {
    directed: bool,
    n: usize,
    /// `Lout` for directed graphs, the single `L` otherwise.
    out: FlatSide,
    /// `Lin` for directed graphs; empty for undirected.
    inn: FlatSide,
}

impl FlatIndex {
    /// Freeze a finished nested index into the flat layout.
    pub fn from_index(index: &LabelIndex) -> FlatIndex {
        let n = index.num_vertices();
        let flatten = |labels: &[crate::index::VertexLabels]| {
            let entries = labels.iter().map(|l| l.len()).sum();
            let mut side = FlatSide::with_capacity(labels.len(), entries);
            for l in labels {
                side.begin_label();
                for e in l.entries() {
                    side.push(e.pivot, e.dist);
                }
                side.end_label();
            }
            side.finish();
            side
        };
        match index {
            LabelIndex::Directed(d) => FlatIndex {
                directed: true,
                n,
                out: flatten(&d.out_labels),
                inn: flatten(&d.in_labels),
            },
            LabelIndex::Undirected(u) => {
                FlatIndex { directed: false, n, out: flatten(&u.labels), inn: FlatSide::default() }
            }
        }
    }

    /// Parse a serialized `HOPIDX01` index (the format written by
    /// [`crate::disk::DiskIndex::create`] and `hopdb-cli build`)
    /// straight into the flat layout — one pass over the byte image, no
    /// intermediate [`LabelIndex`] or per-vertex allocations, so a
    /// server can load its serving index directly.
    pub fn from_hopidx_bytes(bytes: &[u8]) -> std::io::Result<FlatIndex> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let header = crate::disk::HopIdxHeader::parse(bytes)?;
        // Exact, not `>=`: a trailing-garbage image is as untrustworthy
        // as a truncated one — refuse to serve from it.
        if bytes.len() != header.expected_len() {
            return Err(bad("index image length does not match its header"));
        }
        let n = header.n;

        let side_of = |entry_base: usize, offsets: &[u64]| -> std::io::Result<FlatSide> {
            let total = *offsets.last().unwrap_or(&0) as usize;
            // Saturating: a crafted entry count that overflows simply
            // fails the length check instead of wrapping past it.
            let need = total.saturating_mul(8).saturating_add(entry_base);
            if bytes.len() < need {
                return Err(bad("truncated index file"));
            }
            let mut side = FlatSide::with_capacity(n, total);
            for v in 0..n {
                side.begin_label();
                let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
                for at in (entry_base + lo * 8..entry_base + hi * 8).step_by(8) {
                    let pivot = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
                    let dist = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
                    side.push(pivot, dist);
                }
                side.end_label();
            }
            side.finish();
            Ok(side)
        };

        let out = side_of(header.out_base, &header.out_offsets)?;
        let inn = if header.directed {
            side_of(header.in_base, &header.in_offsets)?
        } else {
            FlatSide::default()
        };
        Ok(FlatIndex { directed: header.directed, n, out, inn })
    }

    /// Load a serialized `HOPIDX01` index file into the flat layout.
    pub fn load(path: &Path) -> std::io::Result<FlatIndex> {
        FlatIndex::from_hopidx_bytes(&std::fs::read(path)?)
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Whether this is a directed index (separate `Lin`/`Lout`).
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Total number of real label entries (sentinel padding excluded).
    pub fn total_entries(&self) -> usize {
        self.out.entries + self.inn.entries
    }

    /// Bytes of raw label entries, 8 bytes per `(pivot, dist)` pair —
    /// comparable with [`LabelIndex::entry_bytes`].
    pub fn entry_bytes(&self) -> usize {
        self.total_entries() * 8
    }

    /// Bytes this structure actually holds resident: entry arrays,
    /// sentinel slots, and the offset directories.
    pub fn resident_bytes(&self) -> usize {
        self.out.resident_bytes() + self.inn.resident_bytes()
    }

    /// Entry count of the source-side label of `v` (`Lout`/`L`).
    #[inline]
    pub fn out_label_len(&self, v: VertexId) -> usize {
        self.out.len(v)
    }

    /// Entry count of the target-side label of `v` (`Lin`/`L`).
    #[inline]
    pub fn in_label_len(&self, v: VertexId) -> usize {
        if self.directed {
            self.inn.len(v)
        } else {
            self.out.len(v)
        }
    }

    /// Exact distance query `dist(s, t)`; [`INF_DIST`] when
    /// unreachable. Vertex ids are rank positions, exactly as in
    /// [`LabelIndex::query`].
    #[inline]
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return 0;
        }
        assert!((s as usize) < self.n && (t as usize) < self.n, "vertex out of range");
        // SAFETY: both ids were just range-checked against `n`.
        let ((sp, sd), (tp, td)) = unsafe {
            (
                self.out.label_unchecked(s),
                if self.directed {
                    self.inn.label_unchecked(t)
                } else {
                    self.out.label_unchecked(t)
                },
            )
        };
        join_adaptive(sp, sd, tp, td)
    }

    /// Answer a batch of `(s, t)` pairs, sharding the slice across up
    /// to `threads` scoped workers (`0` = all cores). Results are
    /// returned in input order; each pair's answer is bit-identical to
    /// [`FlatIndex::query`] on the same pair.
    pub fn query_many(&self, pairs: &[(VertexId, VertexId)], threads: usize) -> Vec<Dist> {
        let mut results = Vec::with_capacity(pairs.len());
        self.query_many_into(pairs, threads, &mut results);
        results
    }

    /// Like [`FlatIndex::query_many`], but *appends* the answers to
    /// `out` instead of allocating a fresh vector — the serving tier
    /// reuses one buffer across coalesced micro-batches.
    pub fn query_many_into(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
        out: &mut Vec<Dist>,
    ) {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        let base = out.len();
        out.resize(base + pairs.len(), INF_DIST);
        let results = &mut out[base..];
        if threads <= 1 || pairs.len() < 2 {
            for (r, &(s, t)) in results.iter_mut().zip(pairs) {
                *r = self.query(s, t);
            }
            return;
        }
        let chunk = pairs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (pair_chunk, result_chunk) in pairs.chunks(chunk).zip(results.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (r, &(s, t)) in result_chunk.iter_mut().zip(pair_chunk) {
                        *r = self.query(s, t);
                    }
                });
            }
        });
    }
}

/// Adaptive join over two sentinel-padded SoA labels: SIMD block merge
/// for comparable sizes, galloping probes when one side dwarfs the
/// other (ratio >= [`GALLOP_RATIO`]).
#[inline]
fn join_adaptive(ap: &[VertexId], ad: &[Dist], bp: &[VertexId], bd: &[Dist]) -> Dist {
    // Padded run lengths (multiples of 4, sentinels included) — close
    // enough to the real sizes for the skew heuristic.
    let (la, lb) = (ap.len(), bp.len());
    let best = if la * GALLOP_RATIO < lb {
        join_gallop(ap, ad, bp, bd)
    } else if lb * GALLOP_RATIO < la {
        join_gallop(bp, bd, ap, ad)
    } else {
        #[cfg(target_arch = "x86_64")]
        {
            join_blocks(ap, ad, bp, bd)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            join_linear(ap, ad, bp, bd)
        }
    };
    if best >= INF_DIST as u64 {
        INF_DIST
    } else {
        best as Dist
    }
}

/// The balanced join as one uniform SIMD loop: compare the runs in
/// 4-wide blocks (every pair of lanes via four lane rotations of the
/// b-block), then advance the block whose maximum is smaller — the
/// standard block-merge intersection. Runs are padded to whole 4-slot
/// blocks, so the loop needs no scalar tail: the final block of a label
/// is part sentinel, compares harmlessly (a sentinel lane can only
/// "match" another sentinel, and that sum clamps to unreachable), and
/// an all-sentinel leading lane ends the join early — the other side
/// can no longer find a partner. Returns the best `u64` sum; the
/// caller clamps to [`INF_DIST`].
#[cfg(target_arch = "x86_64")]
#[inline]
fn join_blocks(ap: &[VertexId], ad: &[Dist], bp: &[VertexId], bd: &[Dist]) -> u64 {
    use core::arch::x86_64::*;
    let (la, lb) = (ap.len(), bp.len());
    debug_assert!(la % 4 == 0 && lb % 4 == 0 && la >= 4 && lb >= 4);
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = u64::MAX;
    // SAFETY: `i`/`j` advance in steps of 4 from 0 and the loop guard
    // keeps `i < la` / `j < lb`; the run lengths are multiples of 4, so
    // every 16-byte block load and every lane access below stays inside
    // the run. SSE2 is part of the x86_64 baseline.
    unsafe {
        // Matches cluster at the front of the runs (the top-ranked
        // pivots that cover nearly every label sort first), and their
        // distance loads hit a *different* array after the pivot scan —
        // start those lines now so the sums don't stall on a late miss.
        _mm_prefetch(ad.as_ptr() as *const i8, _MM_HINT_T0);
        _mm_prefetch(bd.as_ptr() as *const i8, _MM_HINT_T0);
        while i < la && j < lb {
            // Lookahead hints: the next block loads sit behind the
            // advance decision, so hinting one cache line ahead from
            // the already-known positions keeps upcoming misses in
            // flight. The addresses may run past the label (or the
            // whole array) — prefetch never faults, the hint is simply
            // discarded.
            _mm_prefetch(ap.as_ptr().wrapping_add(i + 16) as *const i8, _MM_HINT_T0);
            _mm_prefetch(bp.as_ptr().wrapping_add(j + 16) as *const i8, _MM_HINT_T0);
            let va = _mm_loadu_si128(ap.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(bp.as_ptr().add(j) as *const __m128i);
            // Rotate b's lanes so every (a-lane, b-lane) pair is
            // checked for equality once: rotation r puts b[(l + r) % 4]
            // against a[l].
            let m0 = _mm_cmpeq_epi32(va, vb);
            let m1 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01));
            let m2 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10));
            let m3 = _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11));
            let any = _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3));
            if _mm_movemask_epi8(any) != 0 {
                // Common pivots are rare; decode lane hits only now.
                for (r, m) in [(0usize, m0), (1, m1), (2, m2), (3, m3)] {
                    let mut mask = _mm_movemask_ps(_mm_castsi128_ps(m)) as u32;
                    while mask != 0 {
                        let l = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let d = *ad.get_unchecked(i + l) as u64
                            + *bd.get_unchecked(j + (l + r) % 4) as u64;
                        best = best.min(d);
                    }
                }
            }
            // A block whose first lane is already the sentinel holds no
            // real entries — that side is exhausted, nothing further on
            // the other side can match. Lane 0 is read out of the
            // vectors already in registers. (Predictable: taken once.)
            let (a0, b0) = (_mm_cvtsi128_si32(va) as u32, _mm_cvtsi128_si32(vb) as u32);
            if a0 == SENTINEL || b0 == SENTINEL {
                break;
            }
            let (a3, b3) = (*ap.get_unchecked(i + 3), *bp.get_unchecked(j + 3));
            // Flag-based advance (conditional increments, no three-way
            // branch): on real query mixes the advance direction is
            // close to random, and a branch here would mispredict every
            // other block at ~15–20 cycles a flush; the lookahead
            // prefetches above keep the next lines in flight despite
            // the data dependency this creates.
            i += ((a3 <= b3) as usize) << 2;
            j += ((b3 <= a3) as usize) << 2;
        }
    }
    best
}

/// Scalar fallback for the balanced join on targets without the SIMD
/// kernel: a sentinel-terminated two-pointer merge. Returns the best
/// sum as a `u64` — the caller clamps to [`INF_DIST`] so sentinel
/// self-matches (`INF + INF`) collapse to "unreachable".
///
/// The loop carries no slice-length checks: an index advances only
/// while its pivot is <= the other side's pivot, and [`SENTINEL`] is
/// the maximum `u32` closing every run, so neither index can move past
/// its final sentinel slot — and the loop stops as soon as *either*
/// side reaches a sentinel, because the remaining pivots of the other
/// side can no longer find a partner.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
#[inline]
fn join_linear(ap: &[VertexId], ad: &[Dist], bp: &[VertexId], bd: &[Dist]) -> u64 {
    debug_assert_eq!(ap.last(), Some(&SENTINEL));
    debug_assert_eq!(bp.last(), Some(&SENTINEL));
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = u64::MAX;
    // SAFETY: `i` advances only when `pa <= pb` and `j` only when
    // `pb <= pa`; SENTINEL is the maximum `u32` and closes both runs
    // (asserted above), so once an index reaches a sentinel slot the
    // loop condition fails before the index can advance past the run —
    // every access stays in bounds.
    unsafe {
        let (mut pa, mut pb) = (*ap.get_unchecked(0), *bp.get_unchecked(0));
        // Branch-lean merge body: the pointer stepping is a pair of
        // flag-based increments (conditional moves, not a three-way
        // branch that would mispredict nearly every step at ~15-20
        // cycles a miss). The only data-dependent branch left is the
        // pivot match, which is rare and overwhelmingly predicted
        // not-taken — and guarding the distance loads behind it keeps
        // cold queries from dragging both `dists` arrays through the
        // cache when no pivot is shared.
        while pa != SENTINEL && pb != SENTINEL {
            if pa == pb {
                let d = *ad.get_unchecked(i) as u64 + *bd.get_unchecked(j) as u64;
                best = best.min(d);
            }
            i += (pa <= pb) as usize;
            j += (pb <= pa) as usize;
            pa = *ap.get_unchecked(i);
            pb = *bp.get_unchecked(j);
        }
    }
    best
}

/// Galloping join: for each entry of the short side, exponential-probe
/// then binary-search the long side. `short` and `long` are
/// sentinel-padded; the gallop front only moves forward, so the whole
/// join costs `O(|short| · log |long|)`. Returns the best `u64` sum;
/// the caller clamps to [`INF_DIST`].
fn join_gallop(
    short_p: &[VertexId],
    short_d: &[Dist],
    long_p: &[VertexId],
    long_d: &[Dist],
) -> u64 {
    let mut best = u64::MAX;
    let mut lo = 0usize; // long side is consumed monotonically
    let long_len = long_p.len() - 1; // exclude the final sentinel
    for (i, &p) in short_p[..short_p.len() - 1].iter().enumerate() {
        if p == SENTINEL {
            break; // sentinel padding: the short side is exhausted
        }
        // Exponential probe for the window containing `p`.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long_len && long_p[hi] < p {
            lo = hi;
            hi = (hi + step).min(long_len);
            step <<= 1;
        }
        // Binary search in [lo, hi].
        let found = long_p[lo..hi.min(long_len)].partition_point(|&q| q < p) + lo;
        if found >= long_len {
            break; // every remaining short pivot exceeds the long side
        }
        lo = found;
        if long_p[found] == p {
            let d = short_d[i] as u64 + long_d[found] as u64;
            best = best.min(d);
            lo = found + 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LabelEntry;
    use crate::index::{DirectedLabels, VertexLabels};

    fn directed_example() -> LabelIndex {
        // Path 1 -> 0 -> 2 plus 3 isolated.
        let mut d = DirectedLabels {
            in_labels: (0..4).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            out_labels: (0..4).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        };
        d.out_labels[1].insert_min(LabelEntry::new(0, 1));
        d.in_labels[2].insert_min(LabelEntry::new(0, 1));
        LabelIndex::Directed(d)
    }

    #[test]
    fn flat_matches_nested_directed() {
        let idx = directed_example();
        let flat = FlatIndex::from_index(&idx);
        assert!(flat.is_directed());
        assert_eq!(flat.num_vertices(), 4);
        for s in 0..4u32 {
            for t in 0..4u32 {
                assert_eq!(flat.query(s, t), idx.query(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn flat_matches_nested_undirected() {
        let mut idx = LabelIndex::new_undirected(3);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[1].insert_min(LabelEntry::new(0, 2));
            u.labels[2].insert_min(LabelEntry::new(0, 5));
        }
        let flat = FlatIndex::from_index(&idx);
        for s in 0..3u32 {
            for t in 0..3u32 {
                assert_eq!(flat.query(s, t), idx.query(s, t), "{s}->{t}");
            }
        }
        assert_eq!(flat.total_entries(), idx.total_entries());
        assert_eq!(flat.entry_bytes(), idx.entry_bytes());
        assert!(flat.resident_bytes() > flat.entry_bytes());
    }

    #[test]
    fn gallop_matches_linear_on_skewed_labels() {
        // A long label (hub) against short ones: below and above the
        // gallop ratio, answers must agree with the nested join.
        let long: Vec<LabelEntry> = (0..400).map(|p| LabelEntry::new(3 * p, p + 1)).collect();
        for short_len in [1usize, 2, 5, 24] {
            let short: Vec<LabelEntry> =
                (0..short_len as u32).map(|p| LabelEntry::new(6 * p, 2 * p + 3)).collect();
            let mut idx = LabelIndex::new_undirected(2);
            if let LabelIndex::Undirected(u) = &mut idx {
                u.labels[0] = VertexLabels::from_entries(long.clone());
                u.labels[1] = VertexLabels::from_entries(short.clone());
            }
            let flat = FlatIndex::from_index(&idx);
            assert_eq!(flat.query(0, 1), idx.query(0, 1), "short_len {short_len}");
            assert_eq!(flat.query(1, 0), idx.query(1, 0), "short_len {short_len}");
        }
    }

    #[test]
    fn gallop_handles_disjoint_and_past_the_end_pivots() {
        let mut idx = LabelIndex::new_undirected(2);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[0] =
                VertexLabels::from_entries((0..200).map(|p| LabelEntry::new(2 * p, 1)).collect());
            // Odd pivots only, one far past the long side's last pivot.
            u.labels[1] = VertexLabels::from_entries(vec![
                LabelEntry::new(1, 1),
                LabelEntry::new(7, 1),
                LabelEntry::new(1_000_001, 1),
            ]);
        }
        let flat = FlatIndex::from_index(&idx);
        assert_eq!(flat.query(0, 1), INF_DIST);
    }

    #[test]
    fn large_distances_and_saturating_sums_stay_exact() {
        // Distances near u32 bounds: sums clamp to unreachable exactly
        // like the nested join's saturating add.
        let mut idx = LabelIndex::new_undirected(3);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[1].insert_min(LabelEntry::new(0, 123_456_789));
            u.labels[2].insert_min(LabelEntry::new(0, INF_DIST - 1));
        }
        let flat = FlatIndex::from_index(&idx);
        for s in 0..3u32 {
            for t in 0..3u32 {
                assert_eq!(flat.query(s, t), idx.query(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn self_query_short_circuits_even_for_empty_labels() {
        let idx = LabelIndex::new_undirected(2);
        let flat = FlatIndex::from_index(&idx);
        assert_eq!(flat.query(1, 1), 0);
    }

    #[test]
    fn query_many_matches_query_in_input_order() {
        let idx = directed_example();
        let flat = FlatIndex::from_index(&idx);
        let pairs: Vec<(u32, u32)> = (0..4).flat_map(|s| (0..4).map(move |t| (s, t))).collect();
        let expect: Vec<Dist> = pairs.iter().map(|&(s, t)| flat.query(s, t)).collect();
        for threads in [0usize, 1, 2, 3, 8, 64] {
            assert_eq!(flat.query_many(&pairs, threads), expect, "threads {threads}");
        }
        assert_eq!(flat.query_many(&[], 4), Vec::<Dist>::new());
        assert_eq!(flat.query_many(&[(1, 2)], 4), vec![2]);
    }

    #[test]
    fn hopidx_roundtrip_directed_and_undirected() {
        use extmem::device::TempStore;
        let store = TempStore::new().unwrap();
        for idx in [directed_example(), {
            let mut u = LabelIndex::new_undirected(3);
            if let LabelIndex::Undirected(l) = &mut u {
                l.labels[1].insert_min(LabelEntry::new(0, 2));
            }
            u
        }] {
            let disk = crate::disk::DiskIndex::create(&idx, &store, "flat-rt").unwrap();
            let path = disk.persist();
            let flat = FlatIndex::load(&path).unwrap();
            assert_eq!(flat, FlatIndex::from_index(&idx));
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn from_hopidx_bytes_rejects_garbage_and_truncation() {
        assert!(FlatIndex::from_hopidx_bytes(b"junk").is_err());
        // A valid magic with an absurd vertex count must fail cleanly
        // (no overflow panic, no giant allocation).
        for bogus_n in [u64::MAX, 1 << 61, 1 << 40] {
            let mut crafted = Vec::new();
            crafted.extend_from_slice(b"HOPIDX01");
            crafted.extend_from_slice(&[1, 0, 0, 0]);
            crafted.extend_from_slice(&bogus_n.to_le_bytes());
            crafted.extend_from_slice(&[0u8; 16]);
            assert!(FlatIndex::from_hopidx_bytes(&crafted).is_err(), "n = {bogus_n}");
        }
        use extmem::device::TempStore;
        let store = TempStore::new().unwrap();
        let disk = crate::disk::DiskIndex::create(&directed_example(), &store, "cut").unwrap();
        let path = disk.persist();
        let bytes = std::fs::read(&path).unwrap();
        assert!(FlatIndex::from_hopidx_bytes(&bytes[..bytes.len() - 4]).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
