//! Pivot-range sharding of `HOPIDX01` index images.
//!
//! A 2-hop query is `min` over the *common pivots* of `Lout(s)` and
//! `Lin(t)`. Partitioning the pivot universe `[0, n)` into `k`
//! contiguous ranges therefore partitions every label entry into
//! exactly one shard, and
//!
//! ```text
//! dist(s, t) = min over shards j of dist_j(s, t)
//! ```
//!
//! because each candidate pivot contributes to exactly one shard-local
//! join and `INF_DIST` (`u32::MAX`) is the identity of `min`. Each
//! shard produced by [`shard_image`] is itself a complete, valid
//! `HOPIDX01` image over the *same* vertex set (same `n`, same
//! direction flag) — it loads with `FlatIndex::load` and serves with an
//! unmodified `hopdb-server` daemon; only the label entries whose pivot
//! falls in the shard's range are retained.
//!
//! Range boundaries are chosen by entry count, not vertex count: the
//! rank convention front-loads label mass onto the few top-ranked
//! pivots (Table 7's coverage skew), so an even vertex split would put
//! nearly all entries in shard 0. [`shard_image`] walks the pivot
//! histogram and cuts at the entry-count quantiles instead.
//!
//! Each shard image is paired with a [`ShardSpec`] describing its slot
//! in the partition; [`ShardSpec::encode`] serializes it as a tiny
//! `HOPSHRD1` sidecar (stored as `<image>.shard` next to the image, the
//! way rankings are stored as `.rank` sidecars) so a daemon can report
//! its range to the router via the `route_info` protocol exchange.
//!
//! The `rank_pruned` flag records a property the router can exploit:
//! when every entry's pivot id is `<=` its vertex id (true for any
//! index built under the rank convention, verified during the split —
//! not assumed), the winning pivot of `(s, t)` is `<= min(s, t)`, so
//! only shards whose `lo <= min(s, t)` can contribute and the router
//! may skip the rest. The flag is only usable when clients speak rank
//! ids (no `.rank` translation sidecar); otherwise the router must
//! broadcast, which is still exact, just not pruned.

use std::io;

use extmem::wire;
use sfgraph::{Dist, VertexId};

use crate::disk::HopIdxHeader;

/// Magic tag opening a serialized [`ShardSpec`] sidecar.
pub const SHARD_MAGIC: &[u8; 8] = b"HOPSHRD1";

/// Serialized [`ShardSpec`] length: magic + 4×u32 + flag + padding.
pub const SHARD_SIDECAR_LEN: usize = 28;

/// One shard's slot in a pivot-range partition of an index image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// First pivot id owned by this shard (inclusive).
    pub lo: VertexId,
    /// One past the last pivot id owned by this shard.
    pub hi: VertexId,
    /// This shard's position in the partition (0-based).
    pub index: u32,
    /// Total number of shards in the partition.
    pub count: u32,
    /// Whether every entry in the *source* image satisfied
    /// `pivot <= vertex` (the rank-space pruning invariant).
    pub rank_pruned: bool,
}

impl ShardSpec {
    /// Serialize as a `HOPSHRD1` sidecar blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SHARD_SIDECAR_LEN);
        out.extend_from_slice(SHARD_MAGIC);
        out.extend_from_slice(&self.lo.to_le_bytes());
        out.extend_from_slice(&self.hi.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.count.to_le_bytes());
        out.push(self.rank_pruned as u8);
        out.extend_from_slice(&[0, 0, 0]);
        out
    }

    /// Parse a `HOPSHRD1` sidecar blob, validating every field so a
    /// corrupt sidecar is refused rather than routed on.
    pub fn decode(bytes: &[u8]) -> io::Result<ShardSpec> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if bytes.len() != SHARD_SIDECAR_LEN || bytes.first_chunk::<8>() != Some(SHARD_MAGIC) {
            return Err(bad("not a HOPSHRD1 shard sidecar"));
        }
        let word = |at: usize| wire::u32_at(bytes, at);
        let (Some(lo), Some(hi), Some(index), Some(count)) =
            (word(8), word(12), word(16), word(20))
        else {
            return Err(bad("not a HOPSHRD1 shard sidecar"));
        };
        if lo > hi {
            return Err(bad("shard range is inverted"));
        }
        if count == 0 || index >= count {
            return Err(bad("shard index outside the partition"));
        }
        let pad_ok = bytes.get(25..28) == Some([0u8, 0, 0].as_slice());
        let Some(flag) = wire::u8_at(bytes, 24).filter(|&f| f <= 1 && pad_ok) else {
            return Err(bad("invalid shard flags"));
        };
        Ok(ShardSpec { lo, hi, index, count, rank_pruned: flag != 0 })
    }
}

/// Fold `other` into `acc` pointwise by `min` — the cross-shard answer
/// merge. `INF_DIST` is the identity, so a shard with no common pivot
/// for a pair never disturbs another shard's answer.
///
/// # Panics
/// If the slices disagree in length (shards answer the same batch).
pub fn min_merge(acc: &mut [Dist], other: &[Dist]) {
    assert_eq!(acc.len(), other.len(), "shard answers must align");
    for (a, &b) in acc.iter_mut().zip(other) {
        *a = (*a).min(b);
    }
}

/// Split a serialized `HOPIDX01` image into `k` shard images by pivot
/// range, balanced by entry count. Returns the shards in partition
/// order; ranges tile `[0, n)` exactly (empty ranges are possible when
/// `k` exceeds the number of populated pivots).
pub fn shard_image(bytes: &[u8], k: usize) -> io::Result<Vec<(Vec<u8>, ShardSpec)>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if k == 0 {
        return Err(bad("shard count must be at least 1"));
    }
    if k > u32::MAX as usize {
        return Err(bad("shard count exceeds u32"));
    }
    let header = HopIdxHeader::parse(bytes)?;
    if bytes.len() != header.expected_len() {
        return Err(bad("index image length does not match its header"));
    }
    let n = header.n;

    // One pass over every entry: pivot histogram (for balanced cuts),
    // range validation, and the rank-pruning invariant check.
    let mut hist = vec![0u64; n];
    let mut rank_pruned = true;
    let mut scan = |base: usize, offsets: &[u64]| -> io::Result<()> {
        for (v, (&lo_e, &hi_e)) in offsets.iter().zip(offsets.iter().skip(1)).enumerate() {
            for e in lo_e..hi_e {
                let at = base + e as usize * 8;
                let pivot =
                    wire::u32_at(bytes, at).ok_or_else(|| bad("label entry out of bounds"))?;
                let Some(slot) = hist.get_mut(pivot as usize) else {
                    return Err(bad("label pivot out of range"));
                };
                *slot += 1;
                if pivot > v as u32 {
                    rank_pruned = false;
                }
            }
        }
        Ok(())
    };
    scan(header.out_base, &header.out_offsets)?;
    if header.directed {
        scan(header.in_base, &header.in_offsets)?;
    }

    // Cut at entry-count quantiles: boundary i is the smallest vertex
    // whose prefix mass reaches total*i/k. Quantile targets are
    // monotone, so the boundaries are too, and they tile [0, n).
    let total: u64 = hist.iter().sum();
    let mut bounds = Vec::with_capacity(k + 1);
    bounds.push(0usize);
    let mut prefix = 0u64;
    let mut at = 0usize;
    for i in 1..k {
        // u128: `total * i` can exceed u64 for enormous images.
        let target = (total as u128 * i as u128 / k as u128) as u64;
        while prefix < target {
            let Some(&mass) = hist.get(at) else { break };
            prefix += mass;
            at += 1;
        }
        bounds.push(at);
    }
    bounds.push(n);

    let mut shards = Vec::with_capacity(k);
    for (i, (&lo, &hi)) in bounds.iter().zip(bounds.iter().skip(1)).enumerate() {
        let (lo, hi) = (lo as u32, hi as u32);
        let image = build_shard(bytes, &header, lo, hi);
        let spec = ShardSpec { lo, hi, index: i as u32, count: k as u32, rank_pruned };
        shards.push((image, spec));
    }
    Ok(shards)
}

/// Emit one shard: the source image with every label filtered to the
/// entries whose pivot lies in `[lo, hi)`, offsets rebuilt to match.
fn build_shard(bytes: &[u8], header: &HopIdxHeader, lo: u32, hi: u32) -> Vec<u8> {
    let n = header.n;
    // Labels are sorted by pivot, so each label's kept entries are one
    // contiguous run found by scanning (labels are short; no need to
    // binary-search).
    let filter_side = |base: usize, offsets: &[u64]| -> (Vec<u64>, Vec<u8>) {
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u64);
        let mut entries: Vec<u8> = Vec::new();
        let mut kept = 0u64;
        for (&lo_e, &hi_e) in offsets.iter().zip(offsets.iter().skip(1)) {
            for e in lo_e..hi_e {
                let at = base + e as usize * 8;
                // `shard_image` validated every entry before calling;
                // a short read here would mean the image changed under
                // us, and skipping beats panicking.
                let Some(entry) = bytes.get(at..at + 8) else { continue };
                let in_range = wire::u32_at(entry, 0).is_some_and(|p| p >= lo && p < hi);
                if in_range {
                    entries.extend_from_slice(entry);
                    kept += 1;
                }
            }
            new_offsets.push(kept);
        }
        (new_offsets, entries)
    };

    let (out_offsets, out_entries) = filter_side(header.out_base, &header.out_offsets);
    let (in_offsets, in_entries) = if header.directed {
        filter_side(header.in_base, &header.in_offsets)
    } else {
        (Vec::new(), Vec::new())
    };

    let mut image = Vec::with_capacity(
        20 + (out_offsets.len() + in_offsets.len()) * 8 + out_entries.len() + in_entries.len(),
    );
    image.extend_from_slice(b"HOPIDX01");
    image.extend_from_slice(&[header.directed as u8, 0, 0, 0]);
    image.extend_from_slice(&(n as u64).to_le_bytes());
    for &o in &out_offsets {
        image.extend_from_slice(&o.to_le_bytes());
    }
    for &o in &in_offsets {
        image.extend_from_slice(&o.to_le_bytes());
    }
    image.extend_from_slice(&out_entries);
    image.extend_from_slice(&in_entries);
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::index::{DirectedLabels, LabelIndex, VertexLabels};
    use crate::LabelEntry;
    use extmem::device::TempStore;
    use sfgraph::INF_DIST;

    fn image_of(index: &LabelIndex) -> Vec<u8> {
        let store = TempStore::new().unwrap();
        let disk = crate::disk::DiskIndex::create(index, &store, "shard-src").unwrap();
        let path = disk.persist();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(path).unwrap();
        bytes
    }

    fn small_directed() -> LabelIndex {
        // Path 3 -> 2 -> 1 -> 0 under rank ids (0 highest-ranked).
        let mut d = DirectedLabels {
            in_labels: (0..4).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            out_labels: (0..4).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        };
        d.out_labels[1].insert_min(LabelEntry::new(0, 1));
        d.out_labels[2].insert_min(LabelEntry::new(0, 2));
        d.out_labels[2].insert_min(LabelEntry::new(1, 1));
        d.out_labels[3].insert_min(LabelEntry::new(0, 3));
        d.out_labels[3].insert_min(LabelEntry::new(2, 1));
        d.in_labels[0].insert_min(LabelEntry::new(0, 0));
        LabelIndex::Directed(d)
    }

    #[test]
    fn spec_roundtrip_and_rejection() {
        let spec = ShardSpec { lo: 3, hi: 17, index: 1, count: 4, rank_pruned: true };
        let blob = spec.encode();
        assert_eq!(blob.len(), SHARD_SIDECAR_LEN);
        assert_eq!(ShardSpec::decode(&blob).unwrap(), spec);

        assert!(ShardSpec::decode(b"nonsense").is_err());
        let mut inverted =
            ShardSpec { lo: 9, hi: 9, index: 0, count: 1, rank_pruned: false }.encode();
        inverted[8..12].copy_from_slice(&10u32.to_le_bytes()); // lo = 10 > hi = 9
        assert!(ShardSpec::decode(&inverted).is_err());
        let mut out_of_partition = spec.encode();
        out_of_partition[16..20].copy_from_slice(&4u32.to_le_bytes()); // index == count
        assert!(ShardSpec::decode(&out_of_partition).is_err());
        let mut bad_flag = spec.encode();
        bad_flag[24] = 7;
        assert!(ShardSpec::decode(&bad_flag).is_err());
    }

    #[test]
    fn shards_tile_and_min_merge_matches_unsharded() {
        let index = small_directed();
        let bytes = image_of(&index);
        let whole = FlatIndex::from_hopidx_bytes(&bytes).unwrap();
        let pairs: Vec<(u32, u32)> = (0..4).flat_map(|s| (0..4).map(move |t| (s, t))).collect();
        let expect = whole.query_many(&pairs, 1);

        for k in 1..=6 {
            let shards = shard_image(&bytes, k).unwrap();
            assert_eq!(shards.len(), k);
            assert_eq!(shards[0].1.lo, 0);
            assert_eq!(shards[k - 1].1.hi, 4);
            for w in shards.windows(2) {
                assert_eq!(w[0].1.hi, w[1].1.lo, "ranges must tile");
            }
            let mut merged = vec![INF_DIST; pairs.len()];
            for (image, spec) in &shards {
                assert!(spec.rank_pruned, "rank-convention index must verify as pruned");
                let flat = FlatIndex::from_hopidx_bytes(image).unwrap();
                assert_eq!(flat.num_vertices(), 4);
                assert!(flat.is_directed());
                min_merge(&mut merged, &flat.query_many(&pairs, 1));
            }
            assert_eq!(merged, expect, "k = {k}");
        }
    }

    #[test]
    fn non_rank_pruned_image_is_flagged() {
        // An undirected label set where a low vertex cites a higher
        // pivot — legal for querying, but not rank-pruned.
        let mut idx = LabelIndex::new_undirected(3);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[0].insert_min(LabelEntry::new(2, 5));
            u.labels[1].insert_min(LabelEntry::new(2, 1));
        }
        let bytes = image_of(&idx);
        let shards = shard_image(&bytes, 2).unwrap();
        assert!(shards.iter().all(|(_, s)| !s.rank_pruned));
        // Still exact under the merge.
        let whole = FlatIndex::from_hopidx_bytes(&bytes).unwrap();
        let pairs = [(0u32, 1u32), (1, 0), (0, 2), (2, 2)];
        let mut merged = vec![INF_DIST; pairs.len()];
        for (image, _) in &shards {
            min_merge(
                &mut merged,
                &FlatIndex::from_hopidx_bytes(image).unwrap().query_many(&pairs, 1),
            );
        }
        assert_eq!(merged, whole.query_many(&pairs, 1));
    }

    #[test]
    fn garbage_and_zero_shards_are_refused() {
        assert!(shard_image(b"not an index", 2).is_err());
        let bytes = image_of(&small_directed());
        assert!(shard_image(&bytes, 0).is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(truncated.len() - 8);
        assert!(shard_image(&truncated, 2).is_err());
    }
}
