//! Label sets and the 2-hop index with its merge-join query.

use sfgraph::{Dist, VertexId, INF_DIST};

use crate::entry::LabelEntry;

/// One vertex's label: entries sorted by pivot id, pivots unique.
///
/// Because vertices are rank-relabeled, pivot order is rank order, so two
/// labels can be joined with a linear merge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexLabels {
    entries: Vec<LabelEntry>,
}

impl VertexLabels {
    /// Empty label.
    pub fn new() -> VertexLabels {
        VertexLabels::default()
    }

    /// Label containing only the trivial self-entry `(v, 0)`.
    pub fn with_trivial(v: VertexId) -> VertexLabels {
        VertexLabels { entries: vec![LabelEntry::trivial(v)] }
    }

    /// The sorted entries.
    #[inline]
    pub fn entries(&self) -> &[LabelEntry] {
        &self.entries
    }

    /// Number of entries (including the self-entry if present).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the label is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distance recorded for `pivot`, if present.
    pub fn get(&self, pivot: VertexId) -> Option<Dist> {
        self.entries.binary_search_by_key(&pivot, |e| e.pivot).ok().map(|i| self.entries[i].dist)
    }

    /// Insert `entry`, keeping the minimum distance per pivot.
    ///
    /// Returns `true` if the entry was added or improved an existing one.
    pub fn insert_min(&mut self, entry: LabelEntry) -> bool {
        match self.entries.binary_search_by_key(&entry.pivot, |e| e.pivot) {
            Ok(i) => {
                if entry.dist < self.entries[i].dist {
                    self.entries[i].dist = entry.dist;
                    true
                } else {
                    false
                }
            }
            Err(i) => {
                self.entries.insert(i, entry);
                true
            }
        }
    }

    /// Merge a batch of entries — sorted by pivot, pivots unique — into
    /// the label in one pass, keeping the minimum distance per pivot.
    ///
    /// This is the bulk counterpart of [`VertexLabels::insert_min`] used
    /// by the sharded engine when it applies a merged shard's survivors:
    /// one O(|label| + |batch|) merge instead of |batch| binary-search
    /// inserts, each of which may shift the tail of the entry vector.
    ///
    /// `on_apply(entry, had_existing)` is called for every entry that is
    /// added (`had_existing == false`) or that improves an existing
    /// pivot's distance (`had_existing == true`); entries dominated by
    /// the current label are skipped silently. Returns the number of
    /// applied entries.
    pub fn merge_min_sorted(
        &mut self,
        batch: &[LabelEntry],
        mut on_apply: impl FnMut(LabelEntry, bool),
    ) -> usize {
        debug_assert!(
            batch.windows(2).all(|w| w[0].pivot < w[1].pivot),
            "batch must be strictly sorted by pivot"
        );
        if batch.is_empty() {
            return 0;
        }
        // Tiny batches (stepping-heavy rounds produce many 1–2 entry
        // survivor groups) are cheaper as shifted in-place inserts than
        // as a full rebuild of the entry vector.
        if batch.len() <= 4 {
            let mut applied = 0usize;
            for &new in batch {
                match self.entries.binary_search_by_key(&new.pivot, |e| e.pivot) {
                    Ok(i) => {
                        if new.dist < self.entries[i].dist {
                            self.entries[i].dist = new.dist;
                            on_apply(new, true);
                            applied += 1;
                        }
                    }
                    Err(i) => {
                        self.entries.insert(i, new);
                        on_apply(new, false);
                        applied += 1;
                    }
                }
            }
            return applied;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + batch.len());
        let (mut i, mut j) = (0usize, 0usize);
        let mut applied = 0usize;
        while i < self.entries.len() && j < batch.len() {
            let (cur, new) = (self.entries[i], batch[j]);
            match cur.pivot.cmp(&new.pivot) {
                std::cmp::Ordering::Less => {
                    merged.push(cur);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(new);
                    on_apply(new, false);
                    applied += 1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if new.dist < cur.dist {
                        merged.push(new);
                        on_apply(new, true);
                        applied += 1;
                    } else {
                        merged.push(cur);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        for &new in &batch[j..] {
            merged.push(new);
            on_apply(new, false);
            applied += 1;
        }
        self.entries = merged;
        applied
    }

    /// Remove the entry for `pivot`; returns whether one existed.
    pub fn remove(&mut self, pivot: VertexId) -> bool {
        match self.entries.binary_search_by_key(&pivot, |e| e.pivot) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Rebuild from possibly unsorted, possibly duplicated entries,
    /// keeping the minimum distance per pivot.
    pub fn from_entries(mut entries: Vec<LabelEntry>) -> VertexLabels {
        entries.sort_unstable();
        entries.dedup_by(|later, first| later.pivot == first.pivot);
        VertexLabels { entries }
    }
}

/// Minimum `d1 + d2` over common pivots of two sorted labels — the 2-hop
/// query of Section 2, and also the pruning test of §3.3/§4.2.
///
/// Linear merge join; returns [`INF_DIST`] when no pivot is shared.
#[inline]
pub fn join_min(a: &[LabelEntry], b: &[LabelEntry]) -> Dist {
    join_min_pivot(a, b).map_or(INF_DIST, |(_, d)| d)
}

/// Like [`join_min`] but also reports the winning pivot.
///
/// The merge stops as soon as either slice is exhausted *or* the
/// current pivot on one side exceeds the other side's last pivot —
/// labels are sorted, so no further common pivot can exist and draining
/// the longer tail would be wasted work (on scale-free graphs a tail
/// vertex's short label routinely ends far before a hub label does).
pub fn join_min_pivot(a: &[LabelEntry], b: &[LabelEntry]) -> Option<(VertexId, Dist)> {
    let (Some(a_last), Some(b_last)) = (a.last(), b.last()) else {
        return None;
    };
    let (a_last, b_last) = (a_last.pivot, b_last.pivot);
    let (mut i, mut j) = (0usize, 0usize);
    let mut best: Option<(VertexId, Dist)> = None;
    while i < a.len() && j < b.len() {
        let (pa, pb) = (a[i].pivot, b[j].pivot);
        if pa > b_last || pb > a_last {
            break; // past the other side's range: no partner possible
        }
        match pa.cmp(&pb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a[i].dist.saturating_add(b[j].dist);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((pa, d));
                }
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Labels of a directed graph: `Lin(v)` and `Lout(v)` per vertex.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirectedLabels {
    /// `Lin(v)`: pivots `u` with a path `u ⇝ v`, `r(u) > r(v)`.
    pub in_labels: Vec<VertexLabels>,
    /// `Lout(v)`: pivots `u` with a path `v ⇝ u`, `r(u) > r(v)`.
    pub out_labels: Vec<VertexLabels>,
}

/// Labels of an undirected graph: a single `L(v)` per vertex.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UndirectedLabels {
    /// `L(v)`: pivots `u` with a path between `u` and `v`, `r(u) > r(v)`.
    pub labels: Vec<VertexLabels>,
}

/// A complete 2-hop label index for one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LabelIndex {
    /// Directed: queries join `Lout(s)` with `Lin(t)`.
    Directed(DirectedLabels),
    /// Undirected: queries join `L(s)` with `L(t)`.
    Undirected(UndirectedLabels),
}

impl LabelIndex {
    /// Fresh directed index on `n` vertices, trivial self-entries only.
    pub fn new_directed(n: usize) -> LabelIndex {
        LabelIndex::Directed(DirectedLabels {
            in_labels: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            out_labels: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        })
    }

    /// Fresh undirected index on `n` vertices, trivial self-entries only.
    pub fn new_undirected(n: usize) -> LabelIndex {
        LabelIndex::Undirected(UndirectedLabels {
            labels: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        })
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        match self {
            LabelIndex::Directed(d) => d.out_labels.len(),
            LabelIndex::Undirected(u) => u.labels.len(),
        }
    }

    /// Whether this is a directed index.
    pub fn is_directed(&self) -> bool {
        matches!(self, LabelIndex::Directed(_))
    }

    /// The label joined on the source side of a query (`Lout(s)` / `L(s)`).
    #[inline]
    pub fn source_labels(&self, s: VertexId) -> &VertexLabels {
        match self {
            LabelIndex::Directed(d) => &d.out_labels[s as usize],
            LabelIndex::Undirected(u) => &u.labels[s as usize],
        }
    }

    /// The label joined on the target side of a query (`Lin(t)` / `L(t)`).
    #[inline]
    pub fn target_labels(&self, t: VertexId) -> &VertexLabels {
        match self {
            LabelIndex::Directed(d) => &d.in_labels[t as usize],
            LabelIndex::Undirected(u) => &u.labels[t as usize],
        }
    }

    /// Exact distance query `dist(s, t)`; [`INF_DIST`] when unreachable.
    ///
    /// `s == t` short-circuits to 0 — every vertex carries the trivial
    /// self-entry, so joining two labels to rediscover it is pure
    /// overhead.
    #[inline]
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        if s == t {
            return 0;
        }
        join_min(self.source_labels(s).entries(), self.target_labels(t).entries())
    }

    /// Distance plus the pivot that realises it.
    pub fn query_with_pivot(&self, s: VertexId, t: VertexId) -> Option<(VertexId, Dist)> {
        join_min_pivot(self.source_labels(s).entries(), self.target_labels(t).entries())
    }

    /// Total number of stored entries (both directions for directed).
    pub fn total_entries(&self) -> usize {
        match self {
            LabelIndex::Directed(d) => {
                d.in_labels.iter().map(VertexLabels::len).sum::<usize>()
                    + d.out_labels.iter().map(VertexLabels::len).sum::<usize>()
            }
            LabelIndex::Undirected(u) => u.labels.iter().map(VertexLabels::len).sum(),
        }
    }

    /// Mean entries per vertex — the `Avg |label|` column of Table 7.
    pub fn avg_label_size(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            self.total_entries() as f64 / n as f64
        }
    }

    /// Bytes of raw label entries at 8 bytes per `(pivot, dist)` pair —
    /// the information-theoretic payload of the index.
    pub fn entry_bytes(&self) -> usize {
        self.total_entries() * std::mem::size_of::<LabelEntry>()
    }

    /// Practical resident footprint: entry payload plus the per-vertex
    /// offset directory (8 bytes per vertex per direction, `n + 1`
    /// slots each) that any frozen or disk-resident layout
    /// ([`crate::flat::FlatIndex`], [`crate::disk::DiskIndex`]) holds
    /// to find a label. This is the number Table 6's memory column
    /// should quote — `entry_bytes` alone undercounts what a serving
    /// process actually keeps resident.
    pub fn resident_bytes(&self) -> usize {
        let directions = if self.is_directed() { 2 } else { 1 };
        self.entry_bytes() + directions * (self.num_vertices() + 1) * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_min_keeps_minimum() {
        let mut l = VertexLabels::with_trivial(5);
        assert!(l.insert_min(LabelEntry::new(2, 7)));
        assert!(!l.insert_min(LabelEntry::new(2, 9)));
        assert!(l.insert_min(LabelEntry::new(2, 3)));
        assert_eq!(l.get(2), Some(3));
        assert_eq!(l.get(5), Some(0));
        assert_eq!(l.len(), 2);
        // Entries stay sorted by pivot.
        assert!(l.entries().windows(2).all(|w| w[0].pivot < w[1].pivot));
    }

    #[test]
    fn merge_min_sorted_matches_repeated_insert_min() {
        let base = vec![LabelEntry::new(1, 5), LabelEntry::new(4, 2), LabelEntry::new(9, 9)];
        let batch = vec![
            LabelEntry::new(0, 3),  // new, before everything
            LabelEntry::new(4, 1),  // improves 2 -> 1
            LabelEntry::new(6, 7),  // new, between
            LabelEntry::new(9, 9),  // dominated (equal): skipped
            LabelEntry::new(12, 4), // new, past the end
        ];
        let mut bulk = VertexLabels::from_entries(base.clone());
        let mut seen = Vec::new();
        let applied = bulk.merge_min_sorted(&batch, |e, had| seen.push((e.pivot, had)));
        assert_eq!(applied, 4);
        assert_eq!(seen, vec![(0, false), (4, true), (6, false), (12, false)]);

        let mut one_by_one = VertexLabels::from_entries(base);
        for &e in &batch {
            one_by_one.insert_min(e);
        }
        assert_eq!(bulk, one_by_one);
        assert!(bulk.entries().windows(2).all(|w| w[0].pivot < w[1].pivot));

        // The tiny-batch (≤ 4 entries) in-place path must agree too.
        let tiny = &batch[..3];
        let mut tiny_bulk = one_by_one.clone();
        let mut tiny_seq = one_by_one.clone();
        let applied = tiny_bulk.merge_min_sorted(tiny, |_, _| {});
        assert_eq!(applied, 0, "already-applied batch must be fully dominated");
        tiny_bulk.merge_min_sorted(&[LabelEntry::new(3, 1)], |e, had| {
            assert!(!had);
            assert_eq!(e.pivot, 3);
        });
        tiny_seq.insert_min(LabelEntry::new(3, 1));
        assert_eq!(tiny_bulk, tiny_seq);
    }

    #[test]
    fn merge_min_sorted_into_empty_and_with_empty() {
        let mut l = VertexLabels::new();
        assert_eq!(l.merge_min_sorted(&[], |_, _| unreachable!()), 0);
        let batch = vec![LabelEntry::new(2, 1), LabelEntry::new(5, 3)];
        assert_eq!(l.merge_min_sorted(&batch, |_, had| assert!(!had)), 2);
        assert_eq!(l.entries(), batch.as_slice());
    }

    #[test]
    fn join_min_finds_best_common_pivot() {
        let a = VertexLabels::from_entries(vec![
            LabelEntry::new(0, 4),
            LabelEntry::new(2, 1),
            LabelEntry::new(7, 0),
        ]);
        let b = VertexLabels::from_entries(vec![
            LabelEntry::new(0, 1),
            LabelEntry::new(2, 9),
            LabelEntry::new(5, 0),
        ]);
        assert_eq!(join_min(a.entries(), b.entries()), 5); // via 0: 4+1
        assert_eq!(join_min_pivot(a.entries(), b.entries()), Some((0, 5)));
    }

    #[test]
    fn join_min_no_common_pivot() {
        let a = VertexLabels::from_entries(vec![LabelEntry::new(1, 1)]);
        let b = VertexLabels::from_entries(vec![LabelEntry::new(2, 1)]);
        assert_eq!(join_min(a.entries(), b.entries()), INF_DIST);
        assert_eq!(join_min_pivot(a.entries(), b.entries()), None);
    }

    #[test]
    fn query_self_distance_zero() {
        let idx = LabelIndex::new_undirected(4);
        assert_eq!(idx.query(2, 2), 0);
        assert_eq!(idx.query(1, 2), INF_DIST);
    }

    #[test]
    fn directed_query_uses_out_then_in() {
        // Path 1 -> 0 -> 2 with pivot 0 (highest rank).
        let mut d = DirectedLabels {
            in_labels: (0..3).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            out_labels: (0..3).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        };
        d.out_labels[1].insert_min(LabelEntry::new(0, 1));
        d.in_labels[2].insert_min(LabelEntry::new(0, 1));
        let idx = LabelIndex::Directed(d);
        assert_eq!(idx.query(1, 2), 2);
        assert_eq!(idx.query(2, 1), INF_DIST); // not symmetric
        assert_eq!(idx.query_with_pivot(1, 2), Some((0, 2)));
    }

    #[test]
    fn from_entries_dedups_keeping_min() {
        let l = VertexLabels::from_entries(vec![
            LabelEntry::new(3, 9),
            LabelEntry::new(3, 2),
            LabelEntry::new(1, 5),
        ]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.get(3), Some(2));
    }

    #[test]
    fn counts_and_sizes() {
        let mut idx = LabelIndex::new_undirected(2);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[1].insert_min(LabelEntry::new(0, 1));
        }
        assert_eq!(idx.total_entries(), 3);
        assert_eq!(idx.avg_label_size(), 1.5);
        assert_eq!(idx.entry_bytes(), 24);
        // 3 entries × 8 plus the (n + 1) × 8-byte offset directory.
        assert_eq!(idx.resident_bytes(), 24 + 3 * 8);

        let mut didx = LabelIndex::new_directed(2);
        if let LabelIndex::Directed(d) = &mut didx {
            d.out_labels[1].insert_min(LabelEntry::new(0, 1));
        }
        assert_eq!(didx.entry_bytes(), 5 * 8);
        // Two directories for a directed index.
        assert_eq!(didx.resident_bytes(), 5 * 8 + 2 * 3 * 8);
    }

    #[test]
    fn join_exits_past_the_other_sides_range() {
        // b's pivots all exceed a's last pivot after the first step:
        // the merge must still find nothing and must not panic.
        let a = VertexLabels::from_entries(vec![LabelEntry::new(1, 1), LabelEntry::new(3, 1)]);
        let b = VertexLabels::from_entries(vec![LabelEntry::new(5, 1), LabelEntry::new(9, 1)]);
        assert_eq!(join_min(a.entries(), b.entries()), INF_DIST);
        assert_eq!(join_min(b.entries(), a.entries()), INF_DIST);
        // A shared pivot right at the boundary still wins.
        let c = VertexLabels::from_entries(vec![LabelEntry::new(3, 2), LabelEntry::new(9, 1)]);
        assert_eq!(join_min(a.entries(), c.entries()), 3);
        assert_eq!(join_min(&[], c.entries()), INF_DIST);
    }

    #[test]
    fn remove_entry() {
        let mut l = VertexLabels::with_trivial(1);
        l.insert_min(LabelEntry::new(0, 2));
        assert!(l.remove(0));
        assert!(!l.remove(0));
        assert_eq!(l.len(), 1);
    }
}
