//! Shortest-*path* reconstruction from a distance oracle.
//!
//! 2-hop labels answer distances; recovering an actual path is the
//! standard extension: from `s`, repeatedly step to an out-neighbour
//! `x` with `w(s, x) + dist(x, t) = dist(s, t)` until `t` is reached.
//! Each step costs one neighbourhood scan with one oracle query per
//! neighbour, so a path of `k` edges costs `O(k · deg · Q)` where `Q`
//! is the oracle's query time — microseconds end to end with a label
//! index, versus a full search per path without one.

use sfgraph::{Direction, Dist, Graph, VertexId, INF_DIST};

/// Reconstruct one shortest path `s ⇝ t` (inclusive of both endpoints)
/// using `dist` as the exact distance oracle for `g`.
///
/// Returns `None` when `t` is unreachable from `s`. The oracle must be
/// exact for `g`; an inconsistent oracle makes reconstruction fail
/// (returns `None`) rather than loop forever.
///
/// ```
/// use sfgraph::GraphBuilder;
/// use sfgraph::traversal::all_pairs;
/// use hoplabels::path::shortest_path;
///
/// let mut b = GraphBuilder::new_undirected(4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3)] {
///     b.add_edge(u, v);
/// }
/// let g = b.build();
/// let ap = all_pairs(&g); // any exact oracle works, e.g. a HopDb index
/// let path = shortest_path(&g, |s, t| ap[s as usize][t as usize], 0, 3);
/// assert_eq!(path, Some(vec![0, 1, 2, 3]));
/// ```
pub fn shortest_path(
    g: &Graph,
    mut dist: impl FnMut(VertexId, VertexId) -> Dist,
    s: VertexId,
    t: VertexId,
) -> Option<Vec<VertexId>> {
    let total = dist(s, t);
    if total == INF_DIST {
        return None;
    }
    let mut path = Vec::with_capacity(total as usize + 1);
    path.push(s);
    let mut cur = s;
    let mut remaining = total;
    while cur != t {
        let mut advanced = false;
        for (x, w) in g.edges(cur, Direction::Out) {
            if w <= remaining && dist(x, t).saturating_add(w) == remaining {
                path.push(x);
                remaining -= w;
                cur = x;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return None; // inconsistent oracle — bail out, never spin
        }
    }
    Some(path)
}

/// Validate that `path` is a real path in `g` whose length equals
/// `expected` (test helper, also usable as a production sanity check).
pub fn path_length(g: &Graph, path: &[VertexId]) -> Option<Dist> {
    let mut total: Dist = 0;
    for w in path.windows(2) {
        total = total.saturating_add(g.edge_weight(w[0], w[1])?);
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfgraph::traversal::all_pairs;
    use sfgraph::GraphBuilder;

    fn check_paths(g: &Graph) {
        let ap = all_pairs(g);
        let n = g.num_vertices() as VertexId;
        for s in 0..n {
            for t in 0..n {
                let got = shortest_path(g, |a, b| ap[a as usize][b as usize], s, t);
                if ap[s as usize][t as usize] == INF_DIST {
                    assert!(got.is_none(), "{s}->{t} should be unreachable");
                } else {
                    let path = got.expect("path exists");
                    assert_eq!(path.first(), Some(&s));
                    assert_eq!(path.last(), Some(&t));
                    assert_eq!(
                        path_length(g, &path),
                        Some(ap[s as usize][t as usize]),
                        "path {path:?} has wrong length for {s}->{t}"
                    );
                }
            }
        }
    }

    #[test]
    fn paths_on_random_directed_weighted() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        for _ in 0..10 {
            let n = rng.gen_range(2..20);
            let mut b = GraphBuilder::new_directed(n).weighted();
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_weighted_edge(
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(1..6),
                );
            }
            check_paths(&b.build());
        }
    }

    #[test]
    fn paths_on_random_undirected() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        for _ in 0..10 {
            let n = rng.gen_range(2..25);
            let mut b = GraphBuilder::new_undirected(n);
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
            }
            check_paths(&b.build());
        }
    }

    #[test]
    fn trivial_and_single_edge_paths() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1);
        let g = b.build();
        let ap = all_pairs(&g);
        let d = |a: VertexId, b: VertexId| ap[a as usize][b as usize];
        assert_eq!(shortest_path(&g, d, 0, 0), Some(vec![0]));
        assert_eq!(shortest_path(&g, d, 0, 1), Some(vec![0, 1]));
        assert_eq!(shortest_path(&g, d, 1, 0), None);
    }

    #[test]
    fn inconsistent_oracle_fails_gracefully() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        // Claims dist 1 for (0, 2) — no neighbour can satisfy it.
        let bogus = |_s: VertexId, _t: VertexId| 1;
        assert_eq!(shortest_path(&g, bogus, 0, 2), None);
    }
}
