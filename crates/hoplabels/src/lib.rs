#![warn(missing_docs)]

//! # hoplabels — 2-hop distance label indexes
//!
//! The query-side half of the paper: data structures for 2-hop label
//! covers, independent of how the labels were constructed (the `hopdb`
//! crate builds them; the `baselines` crate's PLL builds them too).
//!
//! * [`entry::LabelEntry`] — a `(pivot, dist)` pair;
//! * [`index::VertexLabels`] — one vertex's label, sorted by pivot id;
//! * [`index::LabelIndex`] — the full index: `Lin`/`Lout` per vertex for
//!   directed graphs, a single `L` per vertex for undirected graphs, with
//!   the merge-join distance query of Section 2;
//! * [`flat::FlatIndex`] — the frozen read path: struct-of-arrays CSR
//!   labels with sentinel-terminated runs, an adaptive merge/gallop
//!   join, and the batched parallel `query_many` used for serving;
//! * [`stats`] — label-size and pivot-coverage statistics backing
//!   Table 7 and Figures 8–9;
//! * [`disk`] — the on-disk index layout and the I/O-counted disk query
//!   of Table 6's "Disk query time" column;
//! * [`query::QueryBackend`] — the unified serving-time query surface
//!   implemented by both `FlatIndex` and `disk::CachedDiskIndex`;
//! * [`overlay`] — the delta overlay for live edge insertions:
//!   [`overlay::LiveIndex`] answers `min(frozen, overlay)` behind
//!   `QueryBackend` so the serving tier takes writes without a rebuild;
//! * [`shard`] — pivot-range sharding: split one index image into `k`
//!   smaller images whose per-shard answers min-merge back to the
//!   unsharded answer, for scale-out serving;
//! * [`bitparallel`] — the bit-parallel post-processing of Section 6;
//! * [`path`] — shortest-path reconstruction on top of any oracle;
//! * [`verify`] — brute-force exactness/minimality checkers for tests.
//!
//! ## Rank convention
//!
//! All structures assume the graph has been *rank-relabeled*
//! (`sfgraph::ranking::relabel_by_rank`): vertex id 0 is the
//! highest-ranked vertex and `r(u) > r(v)` ⇔ `u < v`. Labels store
//! pivots in increasing id order, i.e. decreasing rank order.

pub mod bitparallel;
pub mod disk;
pub mod entry;
pub mod flat;
pub mod index;
pub mod overlay;
pub mod path;
pub mod query;
pub mod shard;
pub mod stats;
pub mod verify;

pub use entry::LabelEntry;
pub use flat::FlatIndex;
pub use index::{DirectedLabels, LabelIndex, UndirectedLabels, VertexLabels};
pub use overlay::{LiveIndex, OverlaySnapshot};
pub use query::QueryBackend;
pub use shard::{min_merge, shard_image, ShardSpec};
