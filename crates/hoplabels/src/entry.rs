//! A single label entry.

use sfgraph::{Dist, VertexId};

/// One 2-hop label entry `(pivot, dist)`.
///
/// In `Lout(u)` the entry means: there is a (trough) path `u ⇝ pivot` of
/// length `dist` and `r(pivot) > r(u)`. In `Lin(v)` it means a path
/// `pivot ⇝ v` of length `dist` with `r(pivot) > r(v)`. The trivial
/// self-entry `(v, 0)` is always present (the paper keeps it for query
/// answering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelEntry {
    /// Pivot vertex (id = rank position; smaller id = higher rank).
    pub pivot: VertexId,
    /// Length of the covered path.
    pub dist: Dist,
}

impl LabelEntry {
    /// Construct an entry.
    #[inline]
    pub fn new(pivot: VertexId, dist: Dist) -> LabelEntry {
        LabelEntry { pivot, dist }
    }

    /// The trivial self-entry `(v, 0)`.
    #[inline]
    pub fn trivial(v: VertexId) -> LabelEntry {
        LabelEntry { pivot: v, dist: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_pivot_then_dist() {
        let mut v = vec![LabelEntry::new(3, 0), LabelEntry::new(1, 9), LabelEntry::new(1, 2)];
        v.sort();
        assert_eq!(v, vec![LabelEntry::new(1, 2), LabelEntry::new(1, 9), LabelEntry::new(3, 0)]);
    }

    #[test]
    fn trivial_entry() {
        assert_eq!(LabelEntry::trivial(7), LabelEntry::new(7, 0));
    }
}
