//! Label statistics: the measurements behind Table 7 and Figures 8–9.
//!
//! A label entry `(v, d)` is *covered by* its pivot `v`. On a
//! rank-relabeled graph the "top x% of vertices" are simply ids
//! `0 .. x·n`, so coverage curves reduce to a prefix-sum over a
//! per-pivot entry count.

use sfgraph::VertexId;

use crate::index::LabelIndex;

/// Per-pivot entry counts plus the derived coverage measurements.
#[derive(Clone, Debug)]
pub struct CoverageStats {
    /// `counts[p]` = number of entries whose pivot is vertex `p`
    /// (self-entries excluded — every vertex trivially covers itself).
    counts: Vec<u64>,
    /// Prefix sums of `counts` (len `n + 1`).
    prefix: Vec<u64>,
    /// Total non-trivial entries.
    total: u64,
}

impl CoverageStats {
    /// Gather pivot coverage from an index.
    pub fn from_index(index: &LabelIndex) -> CoverageStats {
        let n = index.num_vertices();
        let mut counts = vec![0u64; n];
        let mut tally = |labels: &crate::index::VertexLabels, owner: VertexId| {
            for e in labels.entries() {
                if e.pivot != owner {
                    counts[e.pivot as usize] += 1;
                }
            }
        };
        match index {
            LabelIndex::Directed(d) => {
                for (v, l) in d.in_labels.iter().enumerate() {
                    tally(l, v as VertexId);
                }
                for (v, l) in d.out_labels.iter().enumerate() {
                    tally(l, v as VertexId);
                }
            }
            LabelIndex::Undirected(u) => {
                for (v, l) in u.labels.iter().enumerate() {
                    tally(l, v as VertexId);
                }
            }
        }
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0);
        let mut acc = 0u64;
        for &c in &counts {
            acc += c;
            prefix.push(acc);
        }
        CoverageStats { counts, prefix, total: acc }
    }

    /// Total non-trivial entries in the index.
    pub fn total_entries(&self) -> u64 {
        self.total
    }

    /// Entries covered by pivot `p`.
    pub fn count_for(&self, p: VertexId) -> u64 {
        self.counts[p as usize]
    }

    /// Fraction of entries covered by the `k` highest-ranked vertices.
    pub fn coverage_of_top(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let k = k.min(self.counts.len());
        self.prefix[k] as f64 / self.total as f64
    }

    /// Smallest number of top-ranked vertices covering at least
    /// `fraction` of all entries — Table 7's "top vertices coverage"
    /// columns use fractions 0.7 / 0.8 / 0.9 and report the result as a
    /// percentage of `|V|`.
    pub fn vertices_for_coverage(&self, fraction: f64) -> usize {
        let want = (self.total as f64 * fraction).ceil() as u64;
        // prefix is non-decreasing: binary search the first k reaching it.
        match self.prefix.binary_search(&want) {
            Ok(mut i) => {
                // Land on the first index achieving the value.
                while i > 0 && self.prefix[i - 1] >= want {
                    i -= 1;
                }
                i
            }
            Err(i) => i,
        }
    }

    /// Percentage (0–100) of `|V|` needed to cover `fraction` of entries.
    pub fn percent_vertices_for_coverage(&self, fraction: f64) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        100.0 * self.vertices_for_coverage(fraction) as f64 / self.counts.len() as f64
    }

    /// Sampled coverage curve for Fig. 8: `points` evenly spaced values
    /// of top-vertex share in `(0, max_frac]`, each mapped to coverage
    /// percent.
    pub fn coverage_curve(&self, max_frac: f64, points: usize) -> Vec<(f64, f64)> {
        let n = self.counts.len();
        (1..=points)
            .map(|i| {
                let frac = max_frac * i as f64 / points as f64;
                let k = ((n as f64 * frac).round() as usize).clamp(1, n.max(1));
                (100.0 * frac, 100.0 * self.coverage_of_top(k))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LabelEntry;
    use crate::index::{LabelIndex, UndirectedLabels, VertexLabels};

    /// Index where pivot 0 covers 8 entries, pivot 1 covers 2.
    fn skewed_index() -> LabelIndex {
        let mut labels: Vec<VertexLabels> =
            (0..10).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
        for v in 2..10 {
            labels[v].insert_min(LabelEntry::new(0, 1));
        }
        for v in 2..4 {
            labels[v].insert_min(LabelEntry::new(1, 2));
        }
        LabelIndex::Undirected(UndirectedLabels { labels })
    }

    #[test]
    fn counts_exclude_self_entries() {
        let s = CoverageStats::from_index(&skewed_index());
        assert_eq!(s.total_entries(), 10);
        assert_eq!(s.count_for(0), 8);
        assert_eq!(s.count_for(1), 2);
        assert_eq!(s.count_for(5), 0);
    }

    #[test]
    fn coverage_prefixes() {
        let s = CoverageStats::from_index(&skewed_index());
        assert!((s.coverage_of_top(1) - 0.8).abs() < 1e-9);
        assert!((s.coverage_of_top(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vertices_for_coverage_thresholds() {
        let s = CoverageStats::from_index(&skewed_index());
        assert_eq!(s.vertices_for_coverage(0.7), 1);
        assert_eq!(s.vertices_for_coverage(0.8), 1);
        assert_eq!(s.vertices_for_coverage(0.9), 2);
        assert!((s.percent_vertices_for_coverage(0.9) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone() {
        let s = CoverageStats::from_index(&skewed_index());
        let curve = s.coverage_curve(1.0, 10);
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-9);
        }
        assert!((curve.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_index_is_fully_covered() {
        let s = CoverageStats::from_index(&LabelIndex::new_undirected(3));
        assert_eq!(s.total_entries(), 0);
        assert_eq!(s.vertices_for_coverage(0.9), 0);
        assert!((s.coverage_of_top(1) - 1.0).abs() < 1e-9);
    }
}
