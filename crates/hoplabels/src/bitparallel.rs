//! Bit-parallel label post-processing (Section 6 of the paper).
//!
//! After a 2-hop index `L` is built for an undirected unweighted graph,
//! part of it is converted into PLL-style bit-parallel labels: up to
//! [`MAX_ROOTS`] *roots* `r` are chosen (highest rank first), and for each
//! root up to 64 of its neighbours form the disjoint set `S_r`. A tuple
//! `(r, d_rv, S⁻¹_r(v), S⁰_r(v))` per vertex then replaces every plain
//! entry whose pivot is `r` or lies in `S_r`: bit `i` of `S⁻¹`/`S⁰` says
//! the `i`-th member `u` of `S_r` satisfies `d_uv − d_rv = −1 / 0`
//! (entries with difference `+1` are *discarded* — a path via `u` can
//! never beat the path via `r` because `d_ur = 1`). Queries check common
//! roots with one 64-bit marker intersection and recover the exact
//! distance as `d_sr + d_tr` minus 2 or 1 according to the set overlaps,
//! then take the minimum with the remaining *normal* labels.

use sfgraph::{Dist, Graph, VertexId, INF_DIST};

use crate::index::{join_min, LabelIndex, VertexLabels};

/// Maximum number of roots: one bit per root in the per-vertex marker.
pub const MAX_ROOTS: usize = 64;

/// One bit-parallel tuple of `LBP(v)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpTuple {
    /// Index of the root in [`BitParallelIndex::roots`].
    pub root_idx: u32,
    /// Exact distance `d(root, v)`.
    pub dist: Dist,
    /// Bit `i` ⇔ the `i`-th member `u` of `S_r` has `d_uv = d_rv − 1`.
    pub s_minus: u64,
    /// Bit `i` ⇔ the `i`-th member `u` of `S_r` has `d_uv = d_rv`.
    pub s_zero: u64,
}

/// Bit-parallel index: transformed tuples plus the remaining normal
/// 2-hop labels.
pub struct BitParallelIndex {
    roots: Vec<VertexId>,
    /// Per-vertex tuples, sorted by `root_idx`.
    tuples: Vec<Vec<BpTuple>>,
    /// Bit `i` of `markers[v]` ⇔ `LBP(v)` has a tuple for root `i`.
    markers: Vec<u64>,
    /// The untransformed labels `LN(v)`.
    normal: Vec<VertexLabels>,
}

impl BitParallelIndex {
    /// Transform an undirected 2-hop index into bit-parallel form.
    ///
    /// `num_roots` is clamped to [`MAX_ROOTS`] (the paper's default is
    /// 50). Roots are taken in rank order; each root's `S_r` holds up to
    /// 64 neighbours not claimed by an earlier root.
    ///
    /// # Panics
    /// Panics if `index` is directed or `g` is weighted (Section 6
    /// applies to undirected unweighted graphs only) or if `g` and
    /// `index` disagree on the vertex count.
    pub fn build(g: &Graph, index: &LabelIndex, num_roots: usize) -> BitParallelIndex {
        assert!(!index.is_directed(), "bit-parallel labels need an undirected index");
        assert!(!g.is_weighted(), "bit-parallel labels need unit edge lengths");
        assert_eq!(g.num_vertices(), index.num_vertices());
        let n = g.num_vertices();
        let num_roots = num_roots.min(MAX_ROOTS);

        // Choose roots and their disjoint neighbour sets.
        let mut roots: Vec<VertexId> = Vec::with_capacity(num_roots);
        let mut role = vec![Role::Free; n]; // each vertex: root, member, or free
        let mut member_pos = vec![0u8; n];
        let mut member_root = vec![0u32; n];
        let mut sets: Vec<Vec<VertexId>> = Vec::with_capacity(num_roots);
        for v in 0..n as VertexId {
            if roots.len() == num_roots {
                break;
            }
            if role[v as usize] != Role::Free {
                continue;
            }
            let root_idx = roots.len() as u32;
            role[v as usize] = Role::Root;
            let mut set = Vec::new();
            for &u in g.neighbors(v, sfgraph::Direction::Out) {
                if set.len() == 64 {
                    break;
                }
                if role[u as usize] == Role::Free {
                    role[u as usize] = Role::Member;
                    member_pos[u as usize] = set.len() as u8;
                    member_root[u as usize] = root_idx;
                    set.push(u);
                }
            }
            sets.push(set);
            roots.push(v);
        }
        let root_index_of =
            |v: VertexId| -> Option<u32> { roots.iter().position(|&r| r == v).map(|i| i as u32) };

        let labels = match index {
            LabelIndex::Undirected(u) => &u.labels,
            LabelIndex::Directed(_) => unreachable!(),
        };

        let mut tuples: Vec<Vec<BpTuple>> = vec![Vec::new(); n];
        let mut markers = vec![0u64; n];
        let mut normal: Vec<VertexLabels> = Vec::with_capacity(n);

        for v in 0..n as VertexId {
            let mut keep: Vec<crate::entry::LabelEntry> = Vec::new();
            let mut local: Vec<BpTuple> = Vec::new();
            let find_or_insert = |local: &mut Vec<BpTuple>, root_idx: u32, dist: Dist| -> usize {
                match local.binary_search_by_key(&root_idx, |t| t.root_idx) {
                    Ok(i) => i,
                    Err(i) => {
                        local.insert(i, BpTuple { root_idx, dist, s_minus: 0, s_zero: 0 });
                        i
                    }
                }
            };
            for &e in labels[v as usize].entries() {
                match role[e.pivot as usize] {
                    Role::Root => {
                        let idx = root_index_of(e.pivot).expect("root has an index");
                        find_or_insert(&mut local, idx, e.dist);
                    }
                    Role::Member => {
                        let u = e.pivot;
                        let root_idx = member_root[u as usize];
                        let r = roots[root_idx as usize];
                        // Need d(r, v); exact via the original index (r is
                        // the higher-ranked vertex, so the query resolves).
                        let drv = index.query(r, v);
                        debug_assert_ne!(drv, INF_DIST, "member pivot implies root reachable");
                        let i = find_or_insert(&mut local, root_idx, drv);
                        let bit = 1u64 << member_pos[u as usize];
                        // d_uv − d_rv ∈ {−1, 0, +1} because d(u, r) = 1.
                        if e.dist + 1 == drv {
                            local[i].s_minus |= bit;
                        } else if e.dist == drv {
                            local[i].s_zero |= bit;
                        }
                        // +1 difference: discard — the root tuple covers it.
                    }
                    Role::Free => keep.push(e),
                }
            }
            for t in &local {
                markers[v as usize] |= 1u64 << t.root_idx;
            }
            tuples[v as usize] = local;
            normal.push(VertexLabels::from_entries(keep));
        }

        BitParallelIndex { roots, tuples, markers, normal }
    }

    /// Number of roots actually used.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// The root vertices, in rank order.
    pub fn roots(&self) -> &[VertexId] {
        &self.roots
    }

    /// Entries remaining in the normal labels.
    pub fn total_normal_entries(&self) -> usize {
        self.normal.iter().map(VertexLabels::len).sum()
    }

    /// Total bit-parallel tuples stored.
    pub fn total_tuples(&self) -> usize {
        self.tuples.iter().map(Vec::len).sum()
    }

    /// Approximate in-memory footprint in bytes (tuples are 24 B, normal
    /// entries 8 B, one 8 B marker per vertex).
    pub fn size_bytes(&self) -> usize {
        self.total_tuples() * std::mem::size_of::<BpTuple>()
            + self.total_normal_entries() * 8
            + self.markers.len() * 8
    }

    /// Exact distance query (Section 6's bit-parallel evaluation).
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        let mut best =
            join_min(self.normal[s as usize].entries(), self.normal[t as usize].entries());
        if self.markers[s as usize] & self.markers[t as usize] != 0 {
            let (a, b) = (&self.tuples[s as usize], &self.tuples[t as usize]);
            let (mut i, mut j) = (0usize, 0usize);
            while i < a.len() && j < b.len() {
                match a[i].root_idx.cmp(&b[j].root_idx) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let (ts, tt) = (&a[i], &b[j]);
                        let mut d = ts.dist.saturating_add(tt.dist);
                        if ts.s_minus & tt.s_minus != 0 {
                            d = d.saturating_sub(2);
                        } else if (ts.s_minus & tt.s_zero) | (ts.s_zero & tt.s_minus) != 0 {
                            d = d.saturating_sub(1);
                        }
                        best = best.min(d);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        best
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Free,
    Root,
    Member,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LabelEntry;
    use crate::index::UndirectedLabels;
    use sfgraph::traversal::all_pairs;
    use sfgraph::{Graph, GraphBuilder};

    /// Build a correct (canonical-by-rank) 2-hop cover by brute force:
    /// for every pair, label via the highest-ranked vertex on some
    /// shortest path. Small graphs only.
    fn brute_force_cover(g: &Graph) -> LabelIndex {
        let n = g.num_vertices();
        let ap = all_pairs(g);
        let mut labels: Vec<VertexLabels> =
            (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
        for s in 0..n {
            for t in 0..n {
                if ap[s][t] == INF_DIST || s == t {
                    continue;
                }
                // Highest-ranked vertex on any shortest s-t path.
                let mut best: Option<VertexId> = None;
                for w in 0..n {
                    if ap[s][w] != INF_DIST
                        && ap[w][t] != INF_DIST
                        && ap[s][w] + ap[w][t] == ap[s][t]
                    {
                        best = Some(best.map_or(w as VertexId, |b| b.min(w as VertexId)));
                    }
                }
                let w = best.expect("some vertex lies on the path");
                labels[s].insert_min(LabelEntry::new(w, ap[s][w as usize]));
                labels[t].insert_min(LabelEntry::new(w, ap[w as usize][t]));
            }
        }
        LabelIndex::Undirected(UndirectedLabels { labels })
    }

    fn check_graph(g: &Graph, num_roots: usize) {
        let index = brute_force_cover(g);
        let ap = all_pairs(g);
        let bp = BitParallelIndex::build(g, &index, num_roots);
        for s in 0..g.num_vertices() as VertexId {
            for t in 0..g.num_vertices() as VertexId {
                assert_eq!(
                    bp.query(s, t),
                    ap[s as usize][t as usize],
                    "bp query {s}->{t} (roots={num_roots})"
                );
            }
        }
    }

    #[test]
    fn star_exact_with_roots() {
        let mut b = GraphBuilder::new_undirected(8);
        for leaf in 1..8 {
            b.add_edge(0, leaf);
        }
        check_graph(&b.build(), 1);
    }

    #[test]
    fn path_exact_various_roots() {
        let mut b = GraphBuilder::new_undirected(10);
        for i in 0..9u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        for roots in [0, 1, 2, 5] {
            check_graph(&g, roots);
        }
    }

    #[test]
    fn disconnected_graph() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 4);
        check_graph(&b.build(), 3);
    }

    #[test]
    fn transformation_moves_entries_out_of_normal_labels() {
        let mut b = GraphBuilder::new_undirected(8);
        for leaf in 1..8 {
            b.add_edge(0, leaf);
        }
        let g = b.build();
        let index = brute_force_cover(&g);
        let before = index.total_entries();
        let bp = BitParallelIndex::build(&g, &index, 2);
        assert!(bp.total_normal_entries() < before, "some entries must transform");
        assert!(bp.num_roots() >= 1);
        assert_eq!(bp.roots()[0], 0, "rank order: vertex 0 is the first root");
    }

    #[test]
    fn zero_roots_degenerates_to_plain_index() {
        let mut b = GraphBuilder::new_undirected(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        let g = b.build();
        let index = brute_force_cover(&g);
        let bp = BitParallelIndex::build(&g, &index, 0);
        assert_eq!(bp.total_tuples(), 0);
        assert_eq!(bp.total_normal_entries(), index.total_entries());
    }
}
