//! Exhaustive post-pruning (§5.2's closing remark: "by exhaustive
//! pruning, the label size is the same as that of Hop-Stepping").
//!
//! The per-iteration pruning of §3.3 only tests candidates against
//! entries that exist *at that moment*; an entry inserted early can be
//! made redundant by a higher-ranked pivot discovered later in the same
//! iteration or in a later one. This pass removes all such stragglers.
//!
//! Safety argument: process pivots in decreasing rank (increasing id).
//! An entry `(u → v, d)` with pivot `v` is removed iff some witness
//! pivot `w` with `r(w) > r(v)` satisfies
//! `dist(u, w) + dist(w, v) ≤ d` using only entries whose pivots were
//! already *kept*. Because witnesses outrank the entry they remove, the
//! "redundant via" relation is acyclic in rank, and by induction every
//! removed entry stays covered by kept ones — queries remain exact
//! (asserted by tests against ground truth).

use hoplabels::index::{LabelIndex, VertexLabels};
use sfgraph::{Dist, VertexId, INF_DIST};

/// Minimum `d1 + d2` over common pivots strictly below `limit` (i.e.
/// strictly higher-ranked than the entry under test).
fn join_min_below(
    a: &[hoplabels::LabelEntry],
    b: &[hoplabels::LabelEntry],
    limit: VertexId,
) -> Dist {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = INF_DIST;
    while i < a.len() && j < b.len() && a[i].pivot < limit && b[j].pivot < limit {
        match a[i].pivot.cmp(&b[j].pivot) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                best = best.min(a[i].dist.saturating_add(b[j].dist));
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Remove every entry already covered by higher-ranked pivots; returns
/// the number of entries removed.
pub fn post_prune(index: &mut LabelIndex) -> u64 {
    let n = index.num_vertices();
    // Inverted directory: for each pivot, who carries it (side: false =
    // out/source labels, true = in/target labels).
    let mut by_pivot: Vec<Vec<(VertexId, bool)>> = vec![Vec::new(); n];
    {
        let scan =
            |labels: &[VertexLabels], side: bool, by_pivot: &mut Vec<Vec<(VertexId, bool)>>| {
                for (owner, l) in labels.iter().enumerate() {
                    for e in l.entries() {
                        if e.pivot != owner as VertexId {
                            by_pivot[e.pivot as usize].push((owner as VertexId, side));
                        }
                    }
                }
            };
        match &*index {
            LabelIndex::Directed(d) => {
                scan(&d.out_labels, false, &mut by_pivot);
                scan(&d.in_labels, true, &mut by_pivot);
            }
            LabelIndex::Undirected(u) => scan(&u.labels, false, &mut by_pivot),
        }
    }

    let mut removed = 0u64;
    for pivot in 0..n as VertexId {
        for &(owner, in_side) in &by_pivot[pivot as usize] {
            let (src_entries, dst_entries, dist) = match &*index {
                LabelIndex::Directed(d) => {
                    if in_side {
                        // (pivot, d) ∈ Lin(owner): path pivot ⇝ owner.
                        let Some(dist) = d.in_labels[owner as usize].get(pivot) else { continue };
                        (
                            d.out_labels[pivot as usize].entries(),
                            d.in_labels[owner as usize].entries(),
                            dist,
                        )
                    } else {
                        // (pivot, d) ∈ Lout(owner): path owner ⇝ pivot.
                        let Some(dist) = d.out_labels[owner as usize].get(pivot) else { continue };
                        (
                            d.out_labels[owner as usize].entries(),
                            d.in_labels[pivot as usize].entries(),
                            dist,
                        )
                    }
                }
                LabelIndex::Undirected(u) => {
                    let Some(dist) = u.labels[owner as usize].get(pivot) else { continue };
                    (u.labels[owner as usize].entries(), u.labels[pivot as usize].entries(), dist)
                }
            };
            if join_min_below(src_entries, dst_entries, pivot) <= dist {
                let labels = match index {
                    LabelIndex::Directed(d) => {
                        if in_side {
                            &mut d.in_labels[owner as usize]
                        } else {
                            &mut d.out_labels[owner as usize]
                        }
                    }
                    LabelIndex::Undirected(u) => &mut u.labels[owner as usize],
                };
                labels.remove(pivot);
                removed += 1;
            }
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HopDbConfig, Strategy};
    use crate::engine::build_index;
    use hoplabels::verify::assert_exact;
    use sfgraph::{GraphBuilder, VertexId};

    #[test]
    fn post_prune_preserves_exactness_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(4..20);
            let directed = rng.gen_bool(0.5);
            let mut b = if directed {
                GraphBuilder::new_directed(n)
            } else {
                GraphBuilder::new_undirected(n)
            };
            for _ in 0..rng.gen_range(n..4 * n) {
                b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
            }
            let g = b.build();
            let (mut index, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Doubling));
            post_prune(&mut index);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn doubling_post_pruned_matches_stepping_size() {
        // §5.2: Hop-Doubling plus exhaustive pruning reaches the same
        // label size as Hop-Stepping (also exhaustively pruned).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let n = rng.gen_range(4..16);
            let mut b = GraphBuilder::new_undirected(n);
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
            }
            let g = b.build();
            let (mut dbl, _) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Doubling));
            let (mut step, _) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
            post_prune(&mut dbl);
            post_prune(&mut step);
            assert_exact(&g, &dbl);
            assert_exact(&g, &step);
            assert_eq!(dbl.total_entries(), step.total_entries());
        }
    }

    #[test]
    fn removes_pruned_example_entry() {
        // On the Fig. 3 graph, unpruned doubling keeps (2 → 1, 2) in
        // Lout(2); Example 2 prunes it. Post-pruning must remove it too.
        let g = graphgen::example_graph_fig3();
        let (mut index, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Doubling));
        if let LabelIndex::Directed(d) = &index {
            assert_eq!(d.out_labels[2].get(1), Some(2), "unpruned keeps (2→1,2)");
        }
        let removed = post_prune(&mut index);
        assert!(removed >= 1);
        if let LabelIndex::Directed(d) = &index {
            assert_eq!(d.out_labels[2].get(1), None, "post-prune removes (2→1,2)");
        }
        assert_exact(&g, &index);
    }

    #[test]
    fn idempotent() {
        let g = graphgen::example_graph_fig3();
        let (mut index, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Doubling));
        post_prune(&mut index);
        let again = post_prune(&mut index);
        assert_eq!(again, 0, "second pass must find nothing");
    }
}
