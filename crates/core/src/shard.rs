//! Owner-partitioned sharding helpers for the parallel engine.
//!
//! Within one iteration of Algorithm 1, candidate generation and the
//! 2-hop pruning test are independent per `(owner, pivot)` key: the
//! rules only *read* the frozen label index of the previous iteration.
//! The parallel engine therefore scatters the previous iteration's
//! entries over worker chunks, routes every generated candidate to the
//! shard `owner % shards`, and lets each shard merge, deduplicate, and
//! prune its partition in isolation. Because the shards partition the
//! key space, the union of the per-shard pools equals the sequential
//! global pool exactly — sorting each shard's survivors by
//! `(owner, pivot)` before insertion makes the whole build
//! deterministic and bit-identical to the sequential engine.

/// Shard index a candidate owned by `owner` is routed to.
///
/// Round-robin over rank ids: consecutive ranks land on different
/// shards, spreading the hub-heavy low ranks of a scale-free ranking
/// evenly instead of clustering them on shard 0.
#[inline]
pub fn shard_of(owner: u32, shards: usize) -> usize {
    owner as usize % shards
}

/// Split `items` into exactly `parts` contiguous chunks whose lengths
/// differ by at most one (trailing chunks may be empty when
/// `items.len() < parts`).
pub fn chunks<T>(items: &[T], parts: usize) -> Vec<&[T]> {
    let parts = parts.max(1);
    let base = items.len() / parts;
    let extra = items.len() % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(&items[start..start + len]);
        start += len;
    }
    debug_assert_eq!(start, items.len());
    out
}

/// Worker-thread count for a round with `work` driving entries:
/// parallelism below this many entries costs more in scatter/join
/// overhead than it saves, so small rounds run on one thread. The
/// decision only affects scheduling, never results.
pub fn effective_threads(threads: usize, work: usize) -> usize {
    const MIN_WORK_PER_THREAD: usize = 512;
    if work < 2 * MIN_WORK_PER_THREAD {
        1
    } else {
        threads.clamp(1, work / MIN_WORK_PER_THREAD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<u32> = (0..10).collect();
        for parts in 1..=12 {
            let cs = chunks(&items, parts);
            assert_eq!(cs.len(), parts);
            let flat: Vec<u32> = cs.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "parts = {parts}");
            let (min, max) = (
                cs.iter().map(|c| c.len()).min().unwrap(),
                cs.iter().map(|c| c.len()).max().unwrap(),
            );
            assert!(max - min <= 1, "uneven split at parts = {parts}");
        }
    }

    #[test]
    fn chunks_of_empty_slice() {
        let cs = chunks::<u32>(&[], 4);
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn effective_threads_scales_with_work() {
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(8, 1000), 1);
        assert_eq!(effective_threads(8, 2048), 4);
        assert_eq!(effective_threads(8, 1 << 20), 8);
        assert_eq!(effective_threads(1, 1 << 20), 1);
    }

    #[test]
    fn shard_routing_is_round_robin() {
        assert_eq!(shard_of(0, 4), 0);
        assert_eq!(shard_of(5, 4), 1);
        assert_eq!(shard_of(7, 4), 3);
    }
}
