//! I/O-efficient index construction (Section 4).
//!
//! All label state lives in sorted record files on the `extmem`
//! substrate; per-iteration work is organised as joins over those files:
//!
//! * **Candidate generation** — the rules join `prev` entries with label
//!   files. Both join inputs are sorted by the shared vertex, so
//!   Rules 1/4 (and the stepping variants, which join against edge
//!   files) are streaming *sort-merge co-group* joins; Rules 2/5 join
//!   `prev` against the pivot-sorted (inverted) label files, again
//!   merge-style. Candidates go through the external sorter with a
//!   min-distance combiner — the "avoid duplicates" step of
//!   Algorithm 2.
//! * **Pruning** — the block nested-loop of §4.2: the outer loop loads a
//!   memory-budget block of candidates grouped by their query *source*
//!   together with that source's label; the inner loop streams the
//!   target-side label file once per block and merge-joins each
//!   candidate's two labels. Self-entries are stored in the files, so
//!   the same-pair dominance check falls out of the join exactly as in
//!   the in-memory engine.
//! * **Merge** — survivors are merged (min-distance) into the label
//!   files and, inverted, into the pivot-sorted files; survivors become
//!   the next iteration's `prev`.
//!
//! Every byte flows through counted files, so the
//! [`ExternalBuildResult::io`] report gives honest `scan(N) = N/B`
//! figures for Table 6's disk-based columns.
//!
//! # Threading
//!
//! With [`HopDbConfig::parallelism`] ≥ 2 the per-iteration work is
//! pipelined without changing a single byte of output or I/O traffic:
//!
//! * the **out-side and in-side rule joins** of the directed case run on
//!   separate scoped threads — their generate → prune → invert chains
//!   share only read-only label files;
//! * every candidate sorter uses the `extmem` **background spill
//!   worker**, so `cogroup_join` keeps streaming groups while previous
//!   full buffers quicksort and write behind a bounded channel;
//! * the **four label-file merges** (two for undirected) at the end of
//!   each iteration consume disjoint run pairs and run concurrently —
//!   all four at once when the thread budget allows (≥ 4), in two waves
//!   of two otherwise.
//!
//! The knob is a concurrency *budget* over this fixed structure, not an
//! exact worker count: `2` and `3` behave alike (two compute threads,
//! each briefly shadowed by a mostly-I/O-bound spill worker), and values
//! above 4 buy nothing more — the structural parallelism tops out at the
//! four merge streams. Memory honesty: a pipelined sorter can hold up to
//! `(spill queue depth + 2) × M` records in flight (one buffer filling,
//! two queued, one being sorted), and the directed case runs two such
//! sorters at once, so size `memory_records` with roughly an 8× margin
//! when threading; the sequential path stays strictly within one `M`
//! buffer per operator.
//!
//! Determinism is structural, not locked: each parallel unit owns its
//! files, the record flow per unit is exactly the sequential one, and
//! the shared `extmem` counters are atomics — so the build is
//! bit-identical at any thread count and the I/O totals do not move.
//!
//! Deviation from the paper: the *graph topology* (for stepping's edge
//! joins) is exported to edge files, but the final index is loaded
//! back into memory at the end so callers can verify/serve it — at
//! laptop scale that is always possible; for the paper's 9 GB graphs
//! one would hand the final runs directly to `hoplabels::disk`.

use std::io;

use extmem::device::TempStore;
use extmem::run::{Run, RunReader, RunWriter};
use extmem::sorter::{merge_runs, ExternalSorter};
use extmem::{ExtMemConfig, LabelRecord, Record};
use hoplabels::index::{DirectedLabels, LabelIndex, UndirectedLabels, VertexLabels};
use hoplabels::LabelEntry;
use sfgraph::{Direction, Dist, Graph};

use crate::config::HopDbConfig;
use crate::iteration::{BuildStats, IterationStats};

/// Outcome of an external build.
pub struct ExternalBuildResult {
    /// The finished index (loaded back into memory).
    pub index: LabelIndex,
    /// Per-iteration statistics, as for the in-memory engine.
    pub stats: BuildStats,
    /// Total I/O traffic: `(read_bytes, write_bytes, read_blocks,
    /// write_blocks)` for the configured block size.
    pub io: (u64, u64, u64, u64),
    /// Sorted runs spilled by the external sorters over the whole build
    /// — the `sort(N)` volume of the §4 cost model.
    pub sort_runs: u64,
    /// K-way merge passes performed by the external sorters.
    pub merge_passes: u64,
}

/// Build a label index for a rank-relabeled graph with bounded memory.
///
/// [`HopDbConfig::parallelism`] ≥ 2 enables the threaded pipeline (see
/// the module docs); the built index and the I/O totals are identical
/// at every thread count.
///
/// # Panics
/// Panics if `cfg.prune` is false — the external path implements the
/// paper's (always-pruned) §4 algorithm only.
pub fn build_external(
    g: &Graph,
    cfg: &HopDbConfig,
    ext: &ExtMemConfig,
) -> io::Result<ExternalBuildResult> {
    assert!(cfg.prune, "the external engine implements the pruned algorithm of §4");
    let store = TempStore::new()?;
    let mut result = if g.is_directed() {
        run_directed(g, cfg, ext, &store)?
    } else {
        run_undirected(g, cfg, ext, &store)?
    };
    // The §5.2 exhaustive pass runs on the loaded index, exactly as the
    // in-memory engine does — same flag, same final label sets.
    if cfg.post_prune {
        result.stats.post_pruned = crate::postprune::post_prune(&mut result.index);
        result.stats.final_entries = result.index.total_entries() as u64;
    }
    Ok(result)
}

const IO_BUF: usize = 4096; // records per reader/writer buffer

fn buffer_records(ext: &ExtMemConfig) -> usize {
    (ext.block_bytes / LabelRecord::SIZE).clamp(16, IO_BUF)
}

/// Reads one *group* (maximal run of records with equal `key`) at a time
/// from a sorted run.
struct GroupReader {
    reader: RunReader<LabelRecord>,
    pending: Option<LabelRecord>,
}

impl GroupReader {
    fn new(run: &Run<LabelRecord>, buf: usize) -> io::Result<GroupReader> {
        let mut reader = run.reader_shared(buf)?;
        let pending = reader.next_record()?;
        Ok(GroupReader { reader, pending })
    }

    /// Key of the next group, or `None` at end of stream.
    fn peek_key(&self) -> Option<u32> {
        self.pending.map(|r| r.key)
    }

    /// Read the next whole group into `out` (cleared first); returns its
    /// key.
    fn next_group(&mut self, out: &mut Vec<LabelRecord>) -> io::Result<Option<u32>> {
        out.clear();
        let Some(first) = self.pending.take() else { return Ok(None) };
        let key = first.key;
        out.push(first);
        loop {
            match self.reader.next_record()? {
                Some(r) if r.key == key => out.push(r),
                other => {
                    self.pending = other;
                    break;
                }
            }
        }
        Ok(Some(key))
    }

    /// Advance until the next group's key is ≥ `key` (discarding groups —
    /// part of the sequential scan the paper's outer loop performs).
    fn skip_to(&mut self, key: u32, scratch: &mut Vec<LabelRecord>) -> io::Result<()> {
        while let Some(k) = self.peek_key() {
            if k >= key {
                break;
            }
            self.next_group(scratch)?;
        }
        Ok(())
    }
}

/// Minimum `dist_a + dist_b` over common pivots of two pivot-sorted
/// record groups (the 2-hop join on file records).
fn join_min_records(a: &[LabelRecord], b: &[LabelRecord]) -> Dist {
    let (mut i, mut j) = (0usize, 0usize);
    let mut best = Dist::MAX;
    while i < a.len() && j < b.len() {
        match a[i].pivot.cmp(&b[j].pivot) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                best = best.min(a[i].dist.saturating_add(b[j].dist));
                i += 1;
                j += 1;
            }
        }
    }
    best
}

fn group_eq(a: &LabelRecord, b: &LabelRecord) -> bool {
    (a.key, a.pivot) == (b.key, b.pivot)
}

fn keep_min(a: LabelRecord, b: LabelRecord) -> LabelRecord {
    if a.dist <= b.dist {
        a
    } else {
        b
    }
}

/// Candidate sorter; `overlap` moves its spill passes onto a background
/// worker (bit-identical output and I/O counts, see `extmem::sorter`).
fn sorter<'s>(
    store: &'s TempStore,
    ext: &ExtMemConfig,
    overlap: bool,
) -> ExternalSorter<'s, LabelRecord> {
    let s = ExternalSorter::new(store, ext.clone()).with_combiner(group_eq, keep_min);
    if overlap {
        s.with_background_spill()
    } else {
        s
    }
}

/// Sort a run of records by `(key, pivot)` with min-distance combining.
fn sort_run(
    store: &TempStore,
    ext: &ExtMemConfig,
    run: Run<LabelRecord>,
    overlap: bool,
) -> io::Result<Run<LabelRecord>> {
    let mut s = sorter(store, ext, overlap);
    let mut reader = run.reader(buffer_records(ext))?;
    while let Some(r) = reader.next_record()? {
        s.push(r)?;
    }
    s.finish()
}

/// Merge two `(key, pivot)`-sorted runs, min-combining duplicates.
fn merge_sorted(
    store: &TempStore,
    ext: &ExtMemConfig,
    a: Run<LabelRecord>,
    b: Run<LabelRecord>,
) -> io::Result<Run<LabelRecord>> {
    merge_runs(store, vec![a, b], buffer_records(ext), Some(keep_min), group_eq)
}

/// Merge two independent `(base, survivors)` pairs — concurrently on a
/// scoped thread when `concurrent` (the pairs consume disjoint runs, so
/// scheduling cannot change either output).
#[allow(clippy::type_complexity)]
fn merge_two(
    store: &TempStore,
    ext: &ExtMemConfig,
    concurrent: bool,
    a: (Run<LabelRecord>, Run<LabelRecord>),
    b: (Run<LabelRecord>, Run<LabelRecord>),
) -> (io::Result<Run<LabelRecord>>, io::Result<Run<LabelRecord>>) {
    if concurrent {
        std::thread::scope(|sc| {
            let ma = sc.spawn(|| merge_sorted(store, ext, a.0, a.1));
            let mb = merge_sorted(store, ext, b.0, b.1);
            (ma.join().expect("merge worker panicked"), mb)
        })
    } else {
        (merge_sorted(store, ext, a.0, a.1), merge_sorted(store, ext, b.0, b.1))
    }
}

/// Invert (`key` ↔ `pivot`) and sort — produces the pivot-sorted view.
fn inverted_sorted(
    store: &TempStore,
    ext: &ExtMemConfig,
    run: &Run<LabelRecord>,
    overlap: bool,
) -> io::Result<Run<LabelRecord>> {
    let mut s = sorter(store, ext, overlap);
    let mut reader = run.reader_shared(buffer_records(ext))?;
    while let Some(r) = reader.next_record()? {
        s.push(r.inverted())?;
    }
    s.finish()
}

/// Write self-entries plus the given initialization entries, sorted.
fn initial_run(
    store: &TempStore,
    ext: &ExtMemConfig,
    n: usize,
    entries: impl Iterator<Item = LabelRecord>,
) -> io::Result<Run<LabelRecord>> {
    let mut s = sorter(store, ext, false);
    for v in 0..n as u32 {
        s.push(LabelRecord::new(v, v, 0))?;
    }
    for r in entries {
        s.push(r)?;
    }
    s.finish()
}

/// Edge file: `key = group vertex`, `pivot = neighbour`, `dist = weight`.
fn edge_run(
    store: &TempStore,
    ext: &ExtMemConfig,
    g: &Graph,
    dir: Direction,
) -> io::Result<Run<LabelRecord>> {
    let mut w = RunWriter::new(store.create("edges")?, buffer_records(ext));
    for v in g.vertices() {
        for (t, wgt) in g.edges(v, dir) {
            w.push(LabelRecord::new(v, t, wgt))?;
        }
    }
    w.finish()
}

/// Sort an in-memory slice into a fresh run.
fn sort_slice(
    store: &TempStore,
    ext: &ExtMemConfig,
    records: &[LabelRecord],
) -> io::Result<Run<LabelRecord>> {
    let mut s = sorter(store, ext, false);
    for &r in records {
        s.push(r)?;
    }
    s.finish()
}

/// Copy a run (used when one run must serve as both `prev` and a merge
/// input, which consumes it).
fn copy_run(
    store: &TempStore,
    ext: &ExtMemConfig,
    run: &Run<LabelRecord>,
) -> io::Result<Run<LabelRecord>> {
    let buf = buffer_records(ext);
    let mut w = RunWriter::new(store.create("copy")?, buf);
    let mut r = run.reader_shared(buf)?;
    while let Some(rec) = r.next_record()? {
        w.push(rec)?;
    }
    w.finish()
}

/// Materialise a `(key, pivot)`-sorted label run as per-vertex labels.
fn load_labels(
    run: &Run<LabelRecord>,
    n: usize,
    ext: &ExtMemConfig,
) -> io::Result<Vec<VertexLabels>> {
    let mut labels: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
    let mut reader = run.reader_shared(buffer_records(ext))?;
    while let Some(r) = reader.next_record()? {
        labels[r.key as usize].push(LabelEntry::new(r.pivot, r.dist));
    }
    Ok(labels.into_iter().map(VertexLabels::from_entries).collect())
}

/// Co-group join of `prev` (sorted by key) with `side` (sorted by key):
/// for every shared key, `emit` sees the two groups and pushes
/// candidates into the sorter.
fn cogroup_join(
    prev: &Run<LabelRecord>,
    side: &Run<LabelRecord>,
    ext: &ExtMemConfig,
    cands: &mut ExternalSorter<'_, LabelRecord>,
    mut emit: impl FnMut(
        &[LabelRecord],
        &[LabelRecord],
        &mut ExternalSorter<'_, LabelRecord>,
    ) -> io::Result<()>,
) -> io::Result<()> {
    let buf = buffer_records(ext);
    let mut pr = GroupReader::new(prev, buf)?;
    let mut sr = GroupReader::new(side, buf)?;
    let (mut pg, mut sg, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
    while let Some(pk) = pr.peek_key() {
        sr.skip_to(pk, &mut scratch)?;
        match sr.peek_key() {
            Some(sk) if sk == pk => {
                pr.next_group(&mut pg)?;
                sr.next_group(&mut sg)?;
                emit(&pg, &sg, cands)?;
            }
            _ => {
                pr.next_group(&mut pg)?; // no partner group: skip
            }
        }
    }
    Ok(())
}

/// Prune candidates with the 2-hop test `dist(src, dst) ≤ d` — the block
/// nested-loop of §4.2.
///
/// `cands` must be sorted by `key = query source`; `src_labels` (sorted
/// by owner) provides the source-side labels for the outer blocks;
/// `dst_labels` (sorted by owner) is streamed once per block for the
/// target side (`pivot` of each candidate). Returns
/// `(survivors sorted by (key, pivot), pruned_count)`.
fn prune_candidates(
    store: &TempStore,
    ext: &ExtMemConfig,
    cands: Run<LabelRecord>,
    src_labels: &Run<LabelRecord>,
    dst_labels: &Run<LabelRecord>,
    overlap: bool,
) -> io::Result<(Run<LabelRecord>, u64)> {
    let buf = buffer_records(ext);
    let block_budget = (ext.memory_records / 2).max(64);
    let mut cand_reader = GroupReader::new(&cands, buf)?;
    let mut src_reader = GroupReader::new(src_labels, buf)?;
    let mut survivors = RunWriter::new(store.create("survivors")?, buf);
    let mut pruned = 0u64;
    let (mut cg, mut sg, mut scratch) = (Vec::new(), Vec::new(), Vec::new());

    loop {
        // Outer: load candidate groups + their source labels up to the
        // memory budget.
        let mut block: Vec<(LabelRecord, usize)> = Vec::new(); // (cand, src group idx)
        let mut src_groups: Vec<Vec<LabelRecord>> = Vec::new();
        let mut loaded = 0usize;
        while loaded < block_budget {
            let Some(ck) = cand_reader.peek_key() else { break };
            cand_reader.next_group(&mut cg)?;
            src_reader.skip_to(ck, &mut scratch)?;
            if src_reader.peek_key() == Some(ck) {
                src_reader.next_group(&mut sg)?;
            } else {
                sg.clear(); // unreachable: self-entries cover every vertex
            }
            src_groups.push(sg.clone());
            let idx = src_groups.len() - 1;
            loaded += cg.len() + sg.len();
            for &c in &cg {
                block.push((c, idx));
            }
        }
        if block.is_empty() {
            break;
        }
        // Sort block candidates by target vertex for the inner merge.
        block.sort_unstable_by_key(|(c, _)| (c.pivot, c.key));
        // Inner: stream the target-side label file once.
        let mut dst_reader = GroupReader::new(dst_labels, buf)?;
        let mut dg = Vec::new();
        let mut i = 0usize;
        while i < block.len() {
            let target = block[i].0.pivot;
            dst_reader.skip_to(target, &mut scratch)?;
            debug_assert_eq!(
                dst_reader.peek_key(),
                Some(target),
                "self-entries guarantee every vertex has a label group"
            );
            dst_reader.next_group(&mut dg)?;
            while i < block.len() && block[i].0.pivot == target {
                let (c, gi) = block[i];
                if join_min_records(&src_groups[gi], &dg) <= c.dist {
                    pruned += 1;
                } else {
                    survivors.push(c)?;
                }
                i += 1;
            }
        }
    }
    // Survivors were written in per-block (pivot, key) order; resort by
    // (key, pivot) for the merge step.
    let run = survivors.finish()?;
    let sorted = sort_run(store, ext, run, overlap)?;
    Ok((sorted, pruned))
}

// -------------------------------------------------------------------
// Rule emitters (shared by both directions and both orientations)
// -------------------------------------------------------------------

/// Stepping rules (R1+R2 / R4+R5 composed with single edges): prev entry
/// `(·, v, d)` × edge `(·, x, w)` emits `(x, v, d + w)` for `x > v`.
fn emit_stepping(
    pg: &[LabelRecord],
    eg: &[LabelRecord],
    s: &mut ExternalSorter<'_, LabelRecord>,
) -> io::Result<()> {
    for p in pg {
        for e in eg {
            if e.pivot > p.pivot {
                s.push(LabelRecord::new(e.pivot, p.pivot, p.dist.saturating_add(e.dist)))?;
            }
        }
    }
    Ok(())
}

/// Doubling rules R1/R4: prev entry `(u, v, d)` × label entry `(·, x, d')`
/// with `v < x < u` emits `(x, v, d + d')`.
fn emit_doubling_label(
    pg: &[LabelRecord],
    lg: &[LabelRecord],
    s: &mut ExternalSorter<'_, LabelRecord>,
) -> io::Result<()> {
    for p in pg {
        for l in lg {
            if l.pivot > p.pivot && l.pivot < p.key {
                s.push(LabelRecord::new(l.pivot, p.pivot, p.dist.saturating_add(l.dist)))?;
            }
        }
    }
    Ok(())
}

/// Doubling rules R2/R5: prev entry `(u, v, d)` × inverted-file owner
/// `(·, x, d')` with `x > u` emits `(x, v, d + d')`.
fn emit_doubling_inverted(
    pg: &[LabelRecord],
    ig: &[LabelRecord],
    s: &mut ExternalSorter<'_, LabelRecord>,
) -> io::Result<()> {
    for p in pg {
        for o in ig {
            if o.pivot > p.key {
                s.push(LabelRecord::new(o.pivot, p.pivot, p.dist.saturating_add(o.dist)))?;
            }
        }
    }
    Ok(())
}

// -------------------------------------------------------------------
// Per-side iteration pipelines
// -------------------------------------------------------------------

/// Everything one join side produces in one iteration: the surviving
/// candidates (owner- and pivot-sorted) ready for the label-file merges,
/// the next iteration's `prev` run, and the iteration counters.
struct SideOutcome {
    candidates: u64,
    pruned: u64,
    surv: Run<LabelRecord>,
    surv_inv: Run<LabelRecord>,
    prev: Run<LabelRecord>,
}

/// Shared read-only label state one directed join side works against.
struct SideInputs<'r> {
    /// Edge file joined during stepping iterations (in-edges for the
    /// out side, out-edges for the in side).
    edges: &'r Run<LabelRecord>,
    /// Owner-sorted out-label file.
    out: &'r Run<LabelRecord>,
    /// Owner-sorted in-label file.
    inn: &'r Run<LabelRecord>,
    /// Pivot-sorted view of this side's own label file.
    own_inv: &'r Run<LabelRecord>,
}

/// Out-side of a directed iteration: generate out-candidates from
/// `prev_out`, prune them (the candidate key *is* the query source),
/// and prepare the merge inputs.
fn directed_out_side(
    store: &TempStore,
    ext: &ExtMemConfig,
    overlap: bool,
    stepping: bool,
    prev_out: &Run<LabelRecord>,
    inputs: SideInputs<'_>,
) -> io::Result<SideOutcome> {
    let mut s = sorter(store, ext, overlap);
    if stepping {
        // R1+R2 over in-edges of the prev out-entry's owner.
        cogroup_join(prev_out, inputs.edges, ext, &mut s, emit_stepping)?;
    } else {
        // R1: prev out (u,v,d) × Lin(u) entries (u1,d1), v < u1 < u.
        cogroup_join(prev_out, inputs.inn, ext, &mut s, emit_doubling_label)?;
        // R2: prev out (u,v,d) × out-inv group of u: owners u2 > u.
        cogroup_join(prev_out, inputs.own_inv, ext, &mut s, emit_doubling_inverted)?;
    }
    let cands = s.finish()?;
    let candidates = cands.len();
    // Out-candidates: key = owner = query source; join Lout(key) with
    // Lin(pivot).
    let (surv, pruned) = prune_candidates(store, ext, cands, inputs.out, inputs.inn, overlap)?;
    let surv_inv = inverted_sorted(store, ext, &surv, overlap)?;
    let prev = copy_run(store, ext, &surv)?;
    Ok(SideOutcome { candidates, pruned, surv, surv_inv, prev })
}

/// In-side of a directed iteration. In-candidates `(owner v, pivot u)`
/// cover a path `u ⇝ v`: the query source is the *pivot*, so the side
/// swaps key/pivot around the prune and swaps back.
fn directed_in_side(
    store: &TempStore,
    ext: &ExtMemConfig,
    overlap: bool,
    stepping: bool,
    prev_in: &Run<LabelRecord>,
    inputs: SideInputs<'_>,
) -> io::Result<SideOutcome> {
    let mut s = sorter(store, ext, overlap);
    if stepping {
        // R4+R5 over out-edges of the prev in-entry's owner.
        cogroup_join(prev_in, inputs.edges, ext, &mut s, emit_stepping)?;
    } else {
        // R4: prev in (v,u,d) × Lout(v) entries (u4,d4), u < u4 < v.
        cogroup_join(prev_in, inputs.out, ext, &mut s, emit_doubling_label)?;
        // R5: prev in (v,u,d) × in-inv group of v: owners u5 > v.
        cogroup_join(prev_in, inputs.own_inv, ext, &mut s, emit_doubling_inverted)?;
    }
    let cands_by_owner = s.finish()?;
    let candidates = cands_by_owner.len();
    let cands_by_src = inverted_sorted(store, ext, &cands_by_owner, overlap)?;
    drop(cands_by_owner);
    let (surv_by_src, pruned) =
        prune_candidates(store, ext, cands_by_src, inputs.out, inputs.inn, overlap)?;
    let surv = inverted_sorted(store, ext, &surv_by_src, overlap)?;
    // `surv_by_src` *is* the pivot-sorted view of `surv`: invert ∘
    // invert is the identity, and both runs carry combined,
    // `(key, pivot)`-sorted records — reuse it rather than paying a
    // third sort of the survivor set.
    let surv_inv = surv_by_src;
    let prev = copy_run(store, ext, &surv)?;
    Ok(SideOutcome { candidates, pruned, surv, surv_inv, prev })
}

/// One undirected iteration (§7: one label file plays both join roles —
/// `inputs.out` and `inputs.inn` are both the single label file).
fn undirected_iteration(
    store: &TempStore,
    ext: &ExtMemConfig,
    overlap: bool,
    stepping: bool,
    prev: &Run<LabelRecord>,
    inputs: SideInputs<'_>,
) -> io::Result<SideOutcome> {
    let mut s = sorter(store, ext, overlap);
    if stepping {
        cogroup_join(prev, inputs.edges, ext, &mut s, emit_stepping)?;
    } else {
        // Converted R1: prev (u,v,d) × L(u) entries with v < u1 < u.
        cogroup_join(prev, inputs.out, ext, &mut s, emit_doubling_label)?;
        // Converted R2: prev (u,v,d) × inv group of u: owners > u.
        cogroup_join(prev, inputs.own_inv, ext, &mut s, emit_doubling_inverted)?;
    }
    let cands = s.finish()?;
    let candidates = cands.len();
    let (surv, pruned) = prune_candidates(store, ext, cands, inputs.out, inputs.inn, overlap)?;
    let surv_inv = inverted_sorted(store, ext, &surv, overlap)?;
    let prev = copy_run(store, ext, &surv)?;
    Ok(SideOutcome { candidates, pruned, surv, surv_inv, prev })
}

fn io_report(store: &TempStore, ext: &ExtMemConfig) -> (u64, u64, u64, u64) {
    let io = store.stats();
    (
        io.read_bytes(),
        io.write_bytes(),
        io.read_blocks(ext.block_bytes),
        io.write_blocks(ext.block_bytes),
    )
}

// -------------------------------------------------------------------
// Directed driver
// -------------------------------------------------------------------

fn run_directed(
    g: &Graph,
    cfg: &HopDbConfig,
    ext: &ExtMemConfig,
    store: &TempStore,
) -> io::Result<ExternalBuildResult> {
    let started = std::time::Instant::now();
    let n = g.num_vertices();
    let threads = cfg.resolved_parallelism();
    let threaded = threads >= 2;
    let mut stats = BuildStats { threads, ..BuildStats::default() };

    // Initialization (iteration 1): self-entries + one entry per edge.
    let init_start = std::time::Instant::now();
    let mut out_init = Vec::new(); // (owner u, pivot v, d): v < u
    let mut in_init = Vec::new(); // (owner v, pivot u, d): u < v
    for u in g.vertices() {
        for (v, w) in g.edges(u, Direction::Out) {
            if v < u {
                out_init.push(LabelRecord::new(u, v, w));
            } else {
                in_init.push(LabelRecord::new(v, u, w));
            }
        }
    }
    let init_count = (out_init.len() + in_init.len()) as u64;
    let mut out = initial_run(store, ext, n, out_init.iter().copied())?;
    let mut inn = initial_run(store, ext, n, in_init.iter().copied())?;
    let mut out_inv = inverted_sorted(store, ext, &out, false)?;
    let mut in_inv = inverted_sorted(store, ext, &inn, false)?;
    let edges_in = edge_run(store, ext, g, Direction::In)?;
    let edges_out = edge_run(store, ext, g, Direction::Out)?;
    // prev runs hold only new entries (no self-entries).
    let mut prev_out = sort_slice(store, ext, &out_init)?;
    let mut prev_in = sort_slice(store, ext, &in_init)?;
    stats.iterations.push(IterationStats {
        iteration: 1,
        stepping: true,
        candidates: init_count,
        pruned: 0,
        inserted: init_count,
        total_entries: init_count + 2 * n as u64,
        elapsed: init_start.elapsed(),
        shards: Vec::new(),
    });

    let mut iter = 1u32;
    while (!prev_out.is_empty() || !prev_in.is_empty()) && iter < cfg.max_iterations {
        iter += 1;
        let round_start = std::time::Instant::now();
        let stepping = cfg.strategy.steps_at(iter);

        // ---- generation + pruning, one pipeline per join side ----
        let out_inputs = SideInputs { edges: &edges_in, out: &out, inn: &inn, own_inv: &out_inv };
        let in_inputs = SideInputs { edges: &edges_out, out: &out, inn: &inn, own_inv: &in_inv };
        let (out_side, in_side) = if threaded {
            // The sides share only read-only label files; each owns its
            // sorters and temp runs, so scheduling cannot reorder any
            // per-side record stream.
            std::thread::scope(|sc| {
                let out_task = sc
                    .spawn(|| directed_out_side(store, ext, true, stepping, &prev_out, out_inputs));
                let in_side = directed_in_side(store, ext, true, stepping, &prev_in, in_inputs);
                (out_task.join().expect("out-side worker panicked"), in_side)
            })
        } else {
            (
                directed_out_side(store, ext, false, stepping, &prev_out, out_inputs),
                directed_in_side(store, ext, false, stepping, &prev_in, in_inputs),
            )
        };
        let out_side = out_side?;
        let in_side = in_side?;
        let candidates = out_side.candidates + in_side.candidates;
        let pruned = out_side.pruned + in_side.pruned;
        let inserted = out_side.surv.len() + in_side.surv.len();
        prev_out = out_side.prev;
        prev_in = in_side.prev;

        // ---- merge survivors into the label files ----
        // The four merges consume disjoint run pairs; how many run at
        // once is capped by the configured thread budget.
        let (out_surv, out_surv_inv) = (out_side.surv, out_side.surv_inv);
        let (in_surv, in_surv_inv) = (in_side.surv, in_side.surv_inv);
        let (new_out, new_out_inv, new_inn, new_in_inv) = if threads >= 4 {
            std::thread::scope(|sc| {
                let m_out = sc.spawn(|| merge_sorted(store, ext, out, out_surv));
                let m_out_inv = sc.spawn(|| merge_sorted(store, ext, out_inv, out_surv_inv));
                let m_inn = sc.spawn(|| merge_sorted(store, ext, inn, in_surv));
                let m_in_inv = merge_sorted(store, ext, in_inv, in_surv_inv);
                (
                    m_out.join().expect("merge worker panicked"),
                    m_out_inv.join().expect("merge worker panicked"),
                    m_inn.join().expect("merge worker panicked"),
                    m_in_inv,
                )
            })
        } else {
            // ≤ 3 threads: two waves of (at most) two concurrent merges.
            let (a, b) = merge_two(store, ext, threaded, (out, out_surv), (out_inv, out_surv_inv));
            let (c, d) = merge_two(store, ext, threaded, (inn, in_surv), (in_inv, in_surv_inv));
            (a, b, c, d)
        };
        out = new_out?;
        out_inv = new_out_inv?;
        inn = new_inn?;
        in_inv = new_in_inv?;

        stats.iterations.push(IterationStats {
            iteration: iter,
            stepping,
            candidates,
            pruned,
            inserted,
            total_entries: out.len() + inn.len(),
            elapsed: round_start.elapsed(),
            shards: Vec::new(),
        });
        if inserted == 0 {
            break;
        }
    }

    let index = LabelIndex::Directed(DirectedLabels {
        out_labels: load_labels(&out, n, ext)?,
        in_labels: load_labels(&inn, n, ext)?,
    });
    stats.final_entries = index.total_entries() as u64;
    stats.elapsed = started.elapsed();
    let io = store.stats();
    Ok(ExternalBuildResult {
        index,
        stats,
        io: io_report(store, ext),
        sort_runs: io.sort_runs(),
        merge_passes: io.merge_passes(),
    })
}

// -------------------------------------------------------------------
// Undirected driver (§7: one label file plays both join roles)
// -------------------------------------------------------------------

fn run_undirected(
    g: &Graph,
    cfg: &HopDbConfig,
    ext: &ExtMemConfig,
    store: &TempStore,
) -> io::Result<ExternalBuildResult> {
    let started = std::time::Instant::now();
    let n = g.num_vertices();
    let threads = cfg.resolved_parallelism();
    let threaded = threads >= 2;
    let mut stats = BuildStats { threads, ..BuildStats::default() };

    let init_start = std::time::Instant::now();
    let mut init = Vec::new();
    for (u, v, w) in g.edge_list() {
        init.push(LabelRecord::new(v, u, w)); // u < v: (u, w) ∈ L(v)
    }
    let init_count = init.len() as u64;
    let mut lab = initial_run(store, ext, n, init.iter().copied())?;
    let mut lab_inv = inverted_sorted(store, ext, &lab, false)?;
    let edges = edge_run(store, ext, g, Direction::Out)?;
    let mut prev = sort_slice(store, ext, &init)?;
    stats.iterations.push(IterationStats {
        iteration: 1,
        stepping: true,
        candidates: init_count,
        pruned: 0,
        inserted: init_count,
        total_entries: init_count + n as u64,
        elapsed: init_start.elapsed(),
        shards: Vec::new(),
    });

    let mut iter = 1u32;
    while !prev.is_empty() && iter < cfg.max_iterations {
        iter += 1;
        let round_start = std::time::Instant::now();
        let stepping = cfg.strategy.steps_at(iter);

        // The single join side still pipelines its sorter spills; the
        // two label-file merges consume disjoint run pairs and overlap.
        let side = undirected_iteration(
            store,
            ext,
            threaded,
            stepping,
            &prev,
            SideInputs { edges: &edges, out: &lab, inn: &lab, own_inv: &lab_inv },
        )?;
        let (candidates, pruned) = (side.candidates, side.pruned);
        let inserted = side.surv.len();
        prev = side.prev;
        let (new_lab, new_lab_inv) =
            merge_two(store, ext, threaded, (lab, side.surv), (lab_inv, side.surv_inv));
        lab = new_lab?;
        lab_inv = new_lab_inv?;

        stats.iterations.push(IterationStats {
            iteration: iter,
            stepping,
            candidates,
            pruned,
            inserted,
            total_entries: lab.len(),
            elapsed: round_start.elapsed(),
            shards: Vec::new(),
        });
        if inserted == 0 {
            break;
        }
    }

    let index = LabelIndex::Undirected(UndirectedLabels { labels: load_labels(&lab, n, ext)? });
    stats.final_entries = index.total_entries() as u64;
    stats.elapsed = started.elapsed();
    let io = store.stats();
    Ok(ExternalBuildResult {
        index,
        stats,
        io: io_report(store, ext),
        sort_runs: io.sort_runs(),
        merge_passes: io.merge_passes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_prelabeled;
    use crate::config::Strategy;
    use hoplabels::verify::assert_exact;
    use sfgraph::{GraphBuilder, VertexId};

    fn tiny_ext() -> ExtMemConfig {
        ExtMemConfig { memory_records: 128, block_bytes: 256 }
    }

    #[test]
    fn directed_example_matches_memory_engine() {
        let g = graphgen::example_graph_fig3();
        for strategy in [Strategy::Doubling, Strategy::Stepping, Strategy::Hybrid { switch_at: 3 }]
        {
            let cfg = HopDbConfig::with_strategy(strategy);
            let (mem, _) = build_prelabeled(&g, &cfg);
            let result = build_external(&g, &cfg, &tiny_ext()).unwrap();
            assert_eq!(result.index, mem, "external != memory for {:?}", cfg.strategy);
            assert_exact(&g, &result.index);
        }
    }

    #[test]
    fn undirected_random_matches_memory_engine() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for case in 0..8 {
            let n = rng.gen_range(4..24);
            let mut b = GraphBuilder::new_undirected(n);
            for _ in 0..rng.gen_range(n..4 * n) {
                b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
            }
            let g = b.build();
            let cfg = HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 2 });
            let (mem, mem_stats) = build_prelabeled(&g, &cfg);
            let result = build_external(&g, &cfg, &tiny_ext()).unwrap();
            assert_eq!(result.index, mem, "case {case}");
            assert_eq!(
                result.stats.num_iterations(),
                mem_stats.num_iterations(),
                "iteration counts must agree (case {case})"
            );
        }
    }

    #[test]
    fn directed_random_weighted_matches_memory_engine() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for case in 0..6 {
            let n = rng.gen_range(4..16);
            let mut b = GraphBuilder::new_directed(n).weighted();
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_weighted_edge(
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(1..6),
                );
            }
            let g = b.build();
            let cfg = HopDbConfig::default();
            let (mem, _) = build_prelabeled(&g, &cfg);
            let result = build_external(&g, &cfg, &tiny_ext()).unwrap();
            assert_eq!(result.index, mem, "case {case}");
            assert_exact(&g, &result.index);
        }
    }

    #[test]
    fn threaded_build_matches_sequential_and_memory() {
        let g = graphgen::example_graph_fig3();
        for strategy in [Strategy::Doubling, Strategy::Stepping, Strategy::Hybrid { switch_at: 3 }]
        {
            let cfg = HopDbConfig::with_strategy(strategy);
            let (mem, _) = build_prelabeled(&g, &cfg);
            let seq = build_external(&g, &cfg, &tiny_ext()).unwrap();
            for threads in [2usize, 4] {
                let cfg = cfg.clone().with_parallelism(threads);
                let par = build_external(&g, &cfg, &tiny_ext()).unwrap();
                assert_eq!(par.index, seq.index, "threads={threads} {:?}", cfg.strategy);
                assert_eq!(par.index, mem, "threads={threads} vs memory engine");
                assert_eq!(
                    (par.io, par.sort_runs, par.merge_passes),
                    (seq.io, seq.sort_runs, seq.merge_passes),
                    "I/O accounting must not depend on the thread count (threads={threads})"
                );
            }
        }
    }

    #[test]
    fn threaded_undirected_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let n = 40;
        let mut b = GraphBuilder::new_undirected(n);
        for _ in 0..4 * n {
            b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
        }
        let g = b.build();
        let cfg = HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 2 });
        let seq = build_external(&g, &cfg, &tiny_ext()).unwrap();
        let par = build_external(&g, &cfg.clone().with_parallelism(4), &tiny_ext()).unwrap();
        assert_eq!(par.index, seq.index);
        assert_eq!(
            (par.io, par.sort_runs, par.merge_passes),
            (seq.io, seq.sort_runs, seq.merge_passes)
        );
        assert_eq!(par.stats.num_iterations(), seq.stats.num_iterations());
    }

    #[test]
    fn post_prune_flag_matches_memory_engine() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 30;
        let mut b = GraphBuilder::new_undirected(n);
        for _ in 0..4 * n {
            b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
        }
        let g = b.build();
        // Doubling leaves §5.2-removable entries behind, so the pass has
        // real work to mirror.
        let cfg =
            HopDbConfig { post_prune: true, ..HopDbConfig::with_strategy(Strategy::Doubling) };
        let (mem, mem_stats) = build_prelabeled(&g, &cfg);
        for threads in [1usize, 4] {
            let cfg = cfg.clone().with_parallelism(threads);
            let result = build_external(&g, &cfg, &tiny_ext()).unwrap();
            assert_eq!(result.index, mem, "post-pruned external != memory at {threads} threads");
            assert_eq!(result.stats.post_pruned, mem_stats.post_pruned);
            assert_eq!(result.stats.final_entries, mem_stats.final_entries);
        }
    }

    #[test]
    fn io_is_counted() {
        let g = graphgen::example_graph_fig3();
        let result = build_external(&g, &HopDbConfig::default(), &tiny_ext()).unwrap();
        let (rb, wb, rblk, wblk) = result.io;
        assert!(rb > 0 && wb > 0 && rblk > 0 && wblk > 0);
    }

    #[test]
    #[should_panic(expected = "pruned algorithm")]
    fn rejects_unpruned_config() {
        let g = graphgen::example_graph_fig3();
        let _ = build_external(&g, &HopDbConfig::unpruned(Strategy::Doubling), &tiny_ext());
    }
}
