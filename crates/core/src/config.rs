//! Build configuration.

use sfgraph::ranking::RankBy;

/// Which label-generation regime each iteration uses.
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Hop-Doubling (§3): compose previous-iteration entries with all
    /// existing entries. Few iterations, large candidate bursts.
    Doubling,
    /// Hop-Stepping (§5): compose previous-iteration entries with single
    /// edges. `D_H` iterations, tightly bounded candidate volume.
    Stepping,
    /// Stepping for iterations `2 ..= switch_at`, Doubling afterwards —
    /// the paper's default with `switch_at = 10` (§8).
    Hybrid {
        /// Last iteration (in the paper's numbering, where initialization
        /// is iteration 1) that still uses stepping.
        switch_at: u32,
    },
}

impl Strategy {
    /// The paper's default: hybrid switching after iteration 10.
    pub fn default_hybrid() -> Strategy {
        Strategy::Hybrid { switch_at: 10 }
    }

    /// Whether iteration `iter` (2-based: the first generation round is
    /// iteration 2) composes with single edges (stepping) or with all
    /// labels (doubling).
    pub fn steps_at(&self, iter: u32) -> bool {
        match *self {
            Strategy::Doubling => false,
            Strategy::Stepping => true,
            Strategy::Hybrid { switch_at } => iter <= switch_at,
        }
    }
}

/// Configuration for [`crate::build`].
#[derive(Clone, Debug)]
pub struct HopDbConfig {
    /// Generation strategy; default [`Strategy::default_hybrid`].
    pub strategy: Strategy,
    /// Apply the §3.3 pruning step each iteration. Disabling it is only
    /// useful for the paper's worked examples and ablation benches —
    /// label sets explode without it.
    pub prune: bool,
    /// Run the exhaustive post-pruning pass (§5.2) after construction,
    /// removing entries that higher-ranked pivots already cover.
    pub post_prune: bool,
    /// Vertex ranking; `None` picks the paper's defaults (degree for
    /// undirected graphs, in×out-degree product for directed, §8).
    pub rank_by: Option<RankBy>,
    /// Safety cap on iterations (the theory bounds iterations by
    /// `min(D_H, 2⌈log D_H⌉)`+1; this cap only guards against bugs).
    pub max_iterations: u32,
    /// Worker threads for per-iteration candidate generation and
    /// pruning: `0` resolves to the machine's available parallelism,
    /// `1` (the default) runs the sequential path. The built index is
    /// bit-identical for every setting — the candidate pool is
    /// partitioned by owner vertex and merged deterministically.
    ///
    /// The external engine ([`crate::external`]) reads the same knob as
    /// a concurrency budget over its fixed pipeline structure (side
    /// threads, spill workers, concurrent merges) rather than an exact
    /// worker count; see that module's docs for the thread and memory
    /// implications.
    pub parallelism: usize,
}

impl Default for HopDbConfig {
    fn default() -> Self {
        HopDbConfig {
            strategy: Strategy::default_hybrid(),
            prune: true,
            post_prune: false,
            rank_by: None,
            max_iterations: 256,
            parallelism: 1,
        }
    }
}

impl HopDbConfig {
    /// Default configuration with a specific strategy.
    pub fn with_strategy(strategy: Strategy) -> HopDbConfig {
        HopDbConfig { strategy, ..Default::default() }
    }

    /// Configuration matching the unpruned worked example of Fig. 5.
    pub fn unpruned(strategy: Strategy) -> HopDbConfig {
        HopDbConfig { strategy, prune: false, ..Default::default() }
    }

    /// Builder-style parallelism override (see [`HopDbConfig::parallelism`]).
    pub fn with_parallelism(mut self, parallelism: usize) -> HopDbConfig {
        self.parallelism = parallelism;
        self
    }

    /// The worker-thread count [`HopDbConfig::parallelism`] resolves to:
    /// itself when non-zero, otherwise the machine's available
    /// parallelism (1 if that cannot be determined).
    pub fn resolved_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            t => t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_switches_after_threshold() {
        let s = Strategy::Hybrid { switch_at: 10 };
        assert!(s.steps_at(2));
        assert!(s.steps_at(10));
        assert!(!s.steps_at(11));
    }

    #[test]
    fn pure_strategies_never_switch() {
        assert!(Strategy::Stepping.steps_at(1000));
        assert!(!Strategy::Doubling.steps_at(2));
    }

    #[test]
    fn default_config() {
        let c = HopDbConfig::default();
        assert!(c.prune);
        assert!(!c.post_prune);
        assert_eq!(c.strategy, Strategy::Hybrid { switch_at: 10 });
        assert_eq!(c.parallelism, 1);
    }

    #[test]
    fn parallelism_resolution() {
        let c = HopDbConfig::default().with_parallelism(6);
        assert_eq!(c.resolved_parallelism(), 6);
        let auto = HopDbConfig::default().with_parallelism(0);
        assert!(auto.resolved_parallelism() >= 1, "0 resolves to the core count");
    }
}
