//! The paper's worked examples, encoded as golden tests.
//!
//! * Figure 3(a)'s 8-vertex directed graph and the complete labeling of
//!   Figure 5 (built *without* pruning — Example 1 runs Algorithm 1
//!   before §3.3 introduces pruning);
//! * Example 2: pruning eliminates exactly `(2 → 1, 2)`;
//! * Tables 3 and 4: the small minimal covers for the road graph `G_R`
//!   and the star graph `G_S` that degree ranking produces.

use graphgen::{example_graph_fig3, road_graph_gr, star_graph_gs};
use hoplabels::index::LabelIndex;
use hoplabels::verify::{assert_exact, is_minimal};
use hoplabels::LabelEntry;

use crate::config::{HopDbConfig, Strategy};
use crate::engine::build_index;

/// Per-vertex `(pivot, dist)` entry lists, indexed by vertex id.
type ExpectedLabels = Vec<Vec<(u32, u32)>>;

/// The labeling of Figure 5 as `(vertex, entries)` lists; superscripts
/// in the figure mark generation iterations and are not part of the
/// label data.
///
/// **Paper erratum.** Figure 5 prints `Lout(7) = {(7,0), (2,1)}`, but
/// the paper's own rules (and objective \[O1\]) also generate
/// `(0, 2)` — Rule 2 composes the initialization entries `(2→0, 1)` and
/// `(7→2, 1)` over the trough shortest path `7→2→0` — and then
/// `(1, 3)` for the trough path `7→2→3→1` (Rule 2 on `(2→1, 2)` and
/// `(7→2, 1)`). Without `(0, 2)` the printed labeling cannot answer
/// `dist(7, 0) = 2` at all (`Lout(7) ⋈ Lin(0)` shares no pivot), so the
/// figure's omission must be a typographical slip, not a semantic
/// choice. We encode the corrected labeling.
fn fig5_expected() -> (ExpectedLabels, ExpectedLabels) {
    let lin = vec![
        vec![(0, 0)],
        vec![(1, 0), (0, 1)],
        vec![(2, 0)],
        vec![(3, 0), (2, 1)],
        vec![(4, 0)],
        vec![(5, 0), (4, 1)],
        vec![(6, 0), (0, 1), (2, 1)],
        vec![(7, 0), (3, 1), (2, 2)],
    ];
    let lout = vec![
        vec![(0, 0)],
        vec![(1, 0), (0, 1)],
        vec![(2, 0), (0, 1), (1, 2)],
        vec![(3, 0), (1, 1), (2, 2), (0, 2)],
        vec![(4, 0), (0, 1), (1, 1), (3, 2), (2, 4)],
        vec![(5, 0), (3, 1), (1, 2), (2, 3), (0, 3)],
        vec![(6, 0)],
        vec![(7, 0), (2, 1), (0, 2), (1, 3)], // (0,2), (1,3): see erratum above
    ];
    (lin, lout)
}

fn to_sorted(entries: &[(u32, u32)]) -> Vec<LabelEntry> {
    let mut v: Vec<LabelEntry> = entries.iter().map(|&(p, d)| LabelEntry::new(p, d)).collect();
    v.sort();
    v
}

fn assert_labels_match(index: &LabelIndex, lin: &[Vec<(u32, u32)>], lout: &[Vec<(u32, u32)>]) {
    let LabelIndex::Directed(d) = index else { panic!("expected directed index") };
    for v in 0..8 {
        assert_eq!(d.in_labels[v].entries(), to_sorted(&lin[v]).as_slice(), "Lin({v}) mismatch");
        assert_eq!(d.out_labels[v].entries(), to_sorted(&lout[v]).as_slice(), "Lout({v}) mismatch");
    }
}

#[test]
fn figure_5_unpruned_doubling_matches_exactly() {
    let g = example_graph_fig3();
    let (index, stats) = build_index(&g, &HopDbConfig::unpruned(Strategy::Doubling));
    let (lin, lout) = fig5_expected();
    assert_labels_match(&index, &lin, &lout);
    // Example 1: generation finishes after the third generation round
    // (our numbering: init = 1, rounds 2–4, round 4 adds nothing).
    assert_eq!(stats.num_iterations(), 4);
    assert_exact(&g, &index);
}

#[test]
fn figure_5_unpruned_stepping_reaches_same_labels() {
    let g = example_graph_fig3();
    let (index, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Stepping));
    let (lin, lout) = fig5_expected();
    assert_labels_match(&index, &lin, &lout);
}

#[test]
fn example_2_pruning_removes_exactly_2_to_1() {
    let g = example_graph_fig3();
    let (index, _) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Doubling));
    let (lin, mut lout) = fig5_expected();
    // Example 2: (2 → 1, 2) is pruned by (2 → 0, 1) and (0 → 1, 1).
    lout[2].retain(|&(p, _)| p != 1);
    // With (2 → 1, 2) pruned, the erratum entry (7 → 1, 3) is never
    // generated (its only derivation composes through (2 → 1, 2)), and
    // pivot 0 covers dist(7, 1) = 3 via (7 → 0, 2) + (0 → 1, 1).
    lout[7].retain(|&(p, _)| p != 1);
    assert_labels_match(&index, &lin, &lout);
    assert_exact(&g, &index);
}

#[test]
fn example_3_stepping_defers_long_entries() {
    // Hop-Stepping covers i-hop paths at iteration i (Lemma 5): the
    // 4-hop entry (4 → 2, 4) appears only at iteration 4 (paper
    // numbering: init = iteration 1), so stepping needs more rounds
    // than doubling on this graph.
    let g = example_graph_fig3();
    let (_, step) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
    let (_, dbl) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Doubling));
    assert!(step.num_iterations() >= dbl.num_iterations());
    // The 4-hop path 4→5→3→7→2 forces at least 4 stepping rounds + the
    // empty detection round.
    assert!(step.num_iterations() >= 5);
}

#[test]
fn table_3_road_graph_small_cover() {
    // G_R with ids = rank order (a=0 … e=4). Expected: Table 3.
    let g = road_graph_gr();
    let (index, _) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
    let LabelIndex::Undirected(u) = &index else { panic!("undirected expected") };
    let expect: Vec<Vec<(u32, u32)>> = vec![
        vec![(0, 0)],
        vec![(1, 0), (0, 1)],
        vec![(2, 0), (0, 2), (1, 1)],
        vec![(3, 0), (0, 1)],
        vec![(4, 0), (0, 1)],
    ];
    for v in 0..5 {
        assert_eq!(u.labels[v].entries(), to_sorted(&expect[v]).as_slice(), "L({v})");
    }
    assert_exact(&g, &index);
    assert!(is_minimal(&g, &index), "Table 3's cover is minimal");
}

#[test]
fn table_4_star_graph_small_cover() {
    // G_S with centre a = 0: every leaf label is {(leaf,0), (0,1)}.
    let g = star_graph_gs();
    let (index, _) = build_index(&g, &HopDbConfig::default());
    let LabelIndex::Undirected(u) = &index else { panic!("undirected expected") };
    assert_eq!(u.labels[0].entries(), &[LabelEntry::new(0, 0)]);
    for leaf in 1..6 {
        assert_eq!(
            u.labels[leaf].entries(),
            &[LabelEntry::new(0, 1), LabelEntry::new(leaf as u32, 0)],
            "L({leaf})"
        );
    }
    assert_exact(&g, &index);
    assert!(is_minimal(&g, &index), "Table 4's cover is minimal");
    // Table 4 has 5 non-trivial entries vs Table 2's 12: the rank-aware
    // cover halves the label count, the motivating observation of §2.1.
    assert_eq!(index.total_entries() - 6, 5);
}

#[test]
fn all_strategies_agree_on_fig3_queries() {
    let g = example_graph_fig3();
    let configs = [
        HopDbConfig::with_strategy(Strategy::Doubling),
        HopDbConfig::with_strategy(Strategy::Stepping),
        HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 2 }),
        HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 10 }),
    ];
    let indexes: Vec<LabelIndex> = configs.iter().map(|c| build_index(&g, c).0).collect();
    for idx in &indexes {
        assert_exact(&g, idx);
    }
}
