//! Reference closure with the *original* six generation rules (Table 5)
//! before the minimization of §3.2.
//!
//! Lemma 3 proves Rules 3 and 6 redundant given Rules 1, 2, 4, 5, and
//! Lemma 4 tightens the rank guards of Rules 1 and 4. Collectively the
//! six rules say: a new entry covering path `u → v` composes with any
//! existing entry sharing an endpoint — *prepending* `x → u` when the
//! new entry is an out-entry (`r(v) > r(u)`; Rules 1, 2, 6 are the three
//! possible rank positions of `x`), and *appending* `v → y` when it is
//! an in-entry (`r(u) > r(v)`; Rules 3, 4, 5). This module implements
//! that closure directly, with no minimization and no pruning, as an
//! executable witness: tests assert its fixpoint equals the minimized
//! engine's unpruned fixpoint (Lemmas 3–4) on the paper's example and on
//! random graphs.
//!
//! Intended for small test graphs only — the closure is quadratic in the
//! number of covered pairs.

use hoplabels::index::{DirectedLabels, LabelIndex, VertexLabels};
use hoplabels::LabelEntry;
use sfgraph::hash::FxHashMap;
use sfgraph::{Direction, Dist, Graph, VertexId};

/// Run the unminimized six-rule closure on a rank-relabeled directed
/// graph; returns the resulting (unpruned) label index.
pub fn six_rule_closure(g: &Graph) -> LabelIndex {
    assert!(g.is_directed(), "the six-rule engine is defined for directed graphs");
    let n = g.num_vertices();
    // Covered trough paths: (from, to) -> best distance.
    let mut all: FxHashMap<(VertexId, VertexId), Dist> = FxHashMap::default();
    let mut prev: Vec<(VertexId, VertexId, Dist)> = Vec::new();
    for u in g.vertices() {
        for (v, w) in g.edges(u, Direction::Out) {
            all.insert((u, v), w);
            prev.push((u, v, w));
        }
    }

    while !prev.is_empty() {
        let mut cands: FxHashMap<(VertexId, VertexId), Dist> = FxHashMap::default();
        for &(u, v, d) in &prev {
            if v < u {
                // Out-entry: prepend any (x → u); Rules 1 / 2 / 6 cover
                // x above v, between, and below u respectively.
                for (&(x, t), &d1) in all.iter() {
                    if t == u && x != v {
                        let nd = d1.saturating_add(d);
                        offer(&mut cands, &all, x, v, nd);
                    }
                }
            } else {
                // In-entry: append any (v → y); Rules 3 / 4 / 5.
                for (&(s, y), &d2) in all.iter() {
                    if s == v && y != u {
                        let nd = d.saturating_add(d2);
                        offer(&mut cands, &all, u, y, nd);
                    }
                }
            }
        }
        prev.clear();
        for ((a, b), d) in cands {
            let slot = all.entry((a, b)).or_insert(Dist::MAX);
            if d < *slot {
                *slot = d;
                prev.push((a, b, d));
            }
        }
    }

    // Materialise: (a → b, d) lands in Lout(a) if r(b) > r(a), i.e.
    // b < a, else in Lin(b).
    let mut out: Vec<VertexLabels> =
        (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
    let mut inn: Vec<VertexLabels> =
        (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect();
    for ((a, b), d) in all {
        if b < a {
            out[a as usize].insert_min(LabelEntry::new(b, d));
        } else {
            inn[b as usize].insert_min(LabelEntry::new(a, d));
        }
    }
    LabelIndex::Directed(DirectedLabels { in_labels: inn, out_labels: out })
}

fn offer(
    cands: &mut FxHashMap<(VertexId, VertexId), Dist>,
    all: &FxHashMap<(VertexId, VertexId), Dist>,
    a: VertexId,
    b: VertexId,
    d: Dist,
) {
    debug_assert_ne!(a, b);
    if all.get(&(a, b)).is_some_and(|&cur| cur <= d) {
        return;
    }
    cands
        .entry((a, b))
        .and_modify(|cur| {
            if d < *cur {
                *cur = d;
            }
        })
        .or_insert(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HopDbConfig, Strategy};
    use crate::engine::build_index;
    use hoplabels::verify::assert_exact;
    use sfgraph::GraphBuilder;

    #[test]
    fn closure_is_exact_on_small_cycle() {
        let mut b = GraphBuilder::new_directed(4);
        for i in 0..4u32 {
            b.add_edge(i, (i + 1) % 4);
        }
        let g = b.build();
        let idx = six_rule_closure(&g);
        assert_exact(&g, &idx);
    }

    #[test]
    fn lemma_3_4_six_rules_equal_four_rules_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for case in 0..25 {
            let n = rng.gen_range(3..12);
            let mut b = GraphBuilder::new_directed(n);
            for _ in 0..rng.gen_range(n..4 * n) {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                b.add_edge(u, v);
            }
            let g = b.build();
            let six = six_rule_closure(&g);
            let (four, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Doubling));
            assert_eq!(six, four, "closures differ on case {case} (n={n})");
        }
    }

    #[test]
    fn lemma_3_4_holds_with_stepping_too() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(3..10);
            let mut b = GraphBuilder::new_directed(n);
            for _ in 0..rng.gen_range(n..3 * n) {
                b.add_edge(rng.gen_range(0..n) as VertexId, rng.gen_range(0..n) as VertexId);
            }
            let g = b.build();
            let six = six_rule_closure(&g);
            let (step, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Stepping));
            assert_eq!(six, step);
        }
    }
}
