//! Inverted pivot lists with constant-time distance upserts.
//!
//! Rules 2 and 5 need the inverted view "which owners' labels contain
//! pivot `p`" (the label-files-sorted-by-pivot of §4.1). The in-memory
//! engines keep one list per pivot and must *update in place* when a
//! weighted-graph iteration improves the distance of an entry that is
//! already present. The previous implementation found the slot with a
//! linear `iter_mut().find` scan, making every improvement O(|inv|) —
//! hub pivots on weighted graphs have inverted lists with thousands of
//! owners, so upserts degenerated quadratically. This list keeps a
//! per-pivot owner → slot map alongside the entries, making both the
//! append and the improve path O(1) amortized (`bench --bench build`
//! has an `invlist` group measuring the difference against the scan).

use sfgraph::hash::FxHashMap;
use sfgraph::{Dist, VertexId};

/// One pivot's inverted list: `(owner, dist)` pairs with owners unique,
/// in insertion order, plus an owner → slot index for O(1) upserts.
#[derive(Clone, Debug, Default)]
pub struct InvList {
    entries: Vec<(VertexId, Dist)>,
    slot_of: FxHashMap<VertexId, u32>,
}

impl InvList {
    /// The `(owner, dist)` pairs, in first-insertion order.
    #[inline]
    pub fn entries(&self) -> &[(VertexId, Dist)] {
        &self.entries
    }

    /// Number of owners in the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no owner labels this pivot yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert `(owner, d)`, or overwrite the owner's distance if it is
    /// already present (distance improvements on weighted graphs).
    #[inline]
    pub fn upsert(&mut self, owner: VertexId, d: Dist) {
        match self.slot_of.entry(owner) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.entries[*slot.get() as usize].1 = d;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.entries.len() as u32);
                self.entries.push((owner, d));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_appends_then_updates_in_place() {
        let mut l = InvList::default();
        assert!(l.is_empty());
        l.upsert(3, 10);
        l.upsert(7, 4);
        l.upsert(3, 2); // improvement: same slot, new distance
        assert_eq!(l.len(), 2);
        assert_eq!(l.entries(), &[(3, 2), (7, 4)]);
    }

    #[test]
    fn many_owners_stay_unique() {
        let mut l = InvList::default();
        for round in 0..3u32 {
            for owner in 0..100u32 {
                l.upsert(owner, 100 - round);
            }
        }
        assert_eq!(l.len(), 100);
        assert!(l.entries().iter().all(|&(_, d)| d == 98));
    }
}
