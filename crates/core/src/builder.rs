//! Top-level build API: rank, relabel, run the engine, wrap the result.

use hoplabels::flat::FlatIndex;
use hoplabels::index::LabelIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy, Ranking};
use sfgraph::{Dist, Graph, VertexId};

use crate::config::HopDbConfig;
use crate::engine;
use crate::iteration::BuildStats;
use crate::postprune;

/// A built HopDb index: labels over the rank-relabeled graph plus the
/// ranking that maps user-facing vertex ids to rank ids.
///
/// Queries are served from a frozen [`FlatIndex`] snapshot of the
/// built labels — the nested [`LabelIndex`] is kept alongside for
/// statistics, serialization, and further processing (post-pruning,
/// bit-parallel augmentation), but the hot read path never touches it.
pub struct HopDb {
    index: LabelIndex,
    flat: FlatIndex,
    ranking: Ranking,
    stats: BuildStats,
}

impl HopDb {
    /// Exact distance between two vertices of the *original* graph.
    #[inline]
    pub fn query(&self, s: VertexId, t: VertexId) -> Dist {
        self.flat.query(self.ranking.rank_of(s), self.ranking.rank_of(t))
    }

    /// Answer a batch of `(s, t)` pairs (original vertex ids) across up
    /// to `threads` scoped workers (`0` = all cores); results come back
    /// in input order, each bit-identical to [`HopDb::query`].
    pub fn query_many(&self, pairs: &[(VertexId, VertexId)], threads: usize) -> Vec<Dist> {
        let rank_pairs: Vec<(VertexId, VertexId)> = pairs
            .iter()
            .map(|&(s, t)| (self.ranking.rank_of(s), self.ranking.rank_of(t)))
            .collect();
        self.flat.query_many(&rank_pairs, threads)
    }

    /// The underlying label index (vertex ids are rank positions).
    pub fn index(&self) -> &LabelIndex {
        &self.index
    }

    /// The frozen flat index queries are served from (rank ids).
    pub fn flat_index(&self) -> &FlatIndex {
        &self.flat
    }

    /// The vertex ranking used for relabeling.
    pub fn ranking(&self) -> &Ranking {
        &self.ranking
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Decompose into the raw parts.
    pub fn into_parts(self) -> (LabelIndex, Ranking, BuildStats) {
        (self.index, self.ranking, self.stats)
    }
}

/// Build a HopDb index for any graph: ranks vertices (paper defaults:
/// degree for undirected, in×out-degree product for directed; §8),
/// relabels so id = rank, and runs the configured engine.
///
/// ```
/// use sfgraph::GraphBuilder;
/// use hopdb::{build, HopDbConfig};
///
/// // The road graph G_R of the paper's Figure 1.
/// let mut b = GraphBuilder::new_undirected(5);
/// for (u, v) in [(0, 1), (1, 2), (0, 3), (0, 4)] {
///     b.add_edge(u, v);
/// }
/// let db = build(&b.build(), &HopDbConfig::default());
/// assert_eq!(db.query(2, 3), 3); // c – b – a – d
/// assert_eq!(db.query(3, 3), 0);
/// ```
pub fn build(g: &Graph, cfg: &HopDbConfig) -> HopDb {
    let rank_by = cfg.rank_by.clone().unwrap_or(if g.is_directed() {
        RankBy::DegreeProduct
    } else {
        RankBy::Degree
    });
    let ranking = rank_vertices(g, &rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    let (index, stats) = build_prelabeled(&relabeled, cfg);
    let flat = FlatIndex::from_index(&index);
    HopDb { index, flat, ranking, stats }
}

/// Build on a graph that is *already* rank-relabeled (id 0 = highest
/// rank). Used by tests that encode the paper's pre-ranked examples and
/// by the external engine driver.
pub fn build_prelabeled(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    let (mut index, mut stats) = engine::build_index(g, cfg);
    if cfg.post_prune {
        stats.post_pruned = postprune::post_prune(&mut index);
        stats.final_entries = index.total_entries() as u64;
    }
    (index, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use sfgraph::traversal::all_pairs;
    use sfgraph::GraphBuilder;

    /// A graph whose natural ids are NOT rank order, to exercise the
    /// relabel-and-translate path.
    fn shuffled_star() -> Graph {
        let mut b = GraphBuilder::new_undirected(7);
        for leaf in [0, 1, 2, 4, 5, 6] {
            b.add_edge(3, leaf); // hub is vertex 3
        }
        b.add_edge(0, 6);
        b.build()
    }

    #[test]
    fn query_translates_original_ids() {
        let g = shuffled_star();
        let db = build(&g, &HopDbConfig::default());
        let ap = all_pairs(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(db.query(s, t), ap[s as usize][t as usize], "{s}->{t}");
            }
        }
        // The hub must be rank 0.
        assert_eq!(db.ranking().vertex_at(0), 3);
    }

    #[test]
    fn post_prune_config_is_applied() {
        // A cycle keeps redundant entries under the unpruned engine
        // (e.g. both neighbours of a low-ranked vertex label it even
        // though the higher-ranked one suffices for coverage).
        let mut b = GraphBuilder::new_undirected(8);
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 8);
        }
        let g = b.build();
        let plain = build(&g, &HopDbConfig::unpruned(Strategy::Doubling));
        let pruned = build(
            &g,
            &HopDbConfig { post_prune: true, ..HopDbConfig::unpruned(Strategy::Doubling) },
        );
        assert!(pruned.stats().post_pruned > 0);
        assert!(pruned.index().total_entries() < plain.index().total_entries());
        let ap = all_pairs(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(pruned.query(s, t), ap[s as usize][t as usize]);
            }
        }
    }

    #[test]
    fn query_many_agrees_with_query_on_original_ids() {
        let g = shuffled_star();
        let db = build(&g, &HopDbConfig::default());
        let pairs: Vec<(VertexId, VertexId)> =
            g.vertices().flat_map(|s| g.vertices().map(move |t| (s, t))).collect();
        let expect: Vec<u32> = pairs.iter().map(|&(s, t)| db.query(s, t)).collect();
        for threads in [0usize, 1, 2, 8] {
            assert_eq!(db.query_many(&pairs, threads), expect, "threads {threads}");
        }
        // The flat snapshot matches the nested index entry-for-entry.
        assert_eq!(db.flat_index().total_entries(), db.index().total_entries());
    }

    #[test]
    fn custom_ranking_is_respected() {
        let g = shuffled_star();
        let db =
            build(&g, &HopDbConfig { rank_by: Some(RankBy::Random(5)), ..HopDbConfig::default() });
        let ap = all_pairs(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(db.query(s, t), ap[s as usize][t as usize]);
            }
        }
    }

    #[test]
    fn directed_default_uses_degree_product() {
        let mut b = GraphBuilder::new_directed(4);
        // Vertex 2: in 2 × out 1 = 2; others smaller products.
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let g = b.build();
        let db = build(&g, &HopDbConfig::default());
        assert_eq!(db.ranking().vertex_at(0), 2);
        let ap = all_pairs(&g);
        for s in g.vertices() {
            for t in g.vertices() {
                assert_eq!(db.query(s, t), ap[s as usize][t as usize]);
            }
        }
    }
}
