//! The in-memory iterative labeling engines (Algorithm 1 with the
//! minimized rules of §3.2, the pruning of §3.3, and the stepping
//! refinement of §5.1).
//!
//! ## Rank convention
//!
//! Inputs must be *rank-relabeled* graphs (id 0 = highest rank), so
//! `r(u) > r(v)` ⇔ `u < v`. Under this convention the four minimized
//! rules become, for out-entries (Rules 1 + 2) and in-entries
//! (Rules 4 + 5):
//!
//! ```text
//! R1: prev (v,d) ∈ Lout(u), (u1,d1) ∈ Lin(u),  v < u1 < u ⇒ cand (v, d+d1) ∈ Lout(u1)
//! R2: prev (v,d) ∈ Lout(u), (u,d2) ∈ Lout(u2)            ⇒ cand (v, d+d2) ∈ Lout(u2)
//! R4: prev (u,d) ∈ Lin(v),  (u4,d4) ∈ Lout(v), u < u4 < v ⇒ cand (u, d+d4) ∈ Lin(u4)
//! R5: prev (u,d) ∈ Lin(v),  (v,d5) ∈ Lin(u5)             ⇒ cand (u, d+d5) ∈ Lin(u5)
//! ```
//!
//! Rules 2 and 5 need the *inverted* view "which labels contain pivot
//! `p`" — the label-files-sorted-by-pivot of §4.1; the in-memory engine
//! maintains them as adjacency-style [`InvList`]s. In stepping
//! iterations the composed side is restricted to graph edges, which
//! collapses R1+R2 into "extend each new out-entry over in-edges
//! `(x, u)` with `x > pivot`", and dually for R4+R5.
//!
//! Pruning (§3.3, restricted as in §4.2 to witnesses of higher rank than
//! both endpoints) is exactly the 2-hop query on the index built so far:
//! candidate `(u → v, d)` dies iff `dist_L(u, v) ≤ d`, which the
//! self-entries extend to same-pair dominance.
//!
//! ## Parallel construction
//!
//! Both generation and pruning only *read* the label index as frozen at
//! the end of the previous iteration (Theorem 3's proof relies on
//! witnesses "from previous iterations" only), so each iteration is
//! embarrassingly parallel per `(owner, pivot)` key. With
//! `HopDbConfig::parallelism > 1` the round runs in three phases:
//!
//! 1. **scatter** — the previous iteration's entries are split into
//!    per-worker chunks; each worker generates candidates into per-shard
//!    pools routed by `owner % shards` ([`crate::shard`]);
//! 2. **merge + prune** — one worker per shard min-merges the pools for
//!    its owners, runs the 2-hop pruning test against the frozen index,
//!    and sorts the survivors by `(owner, pivot)`;
//! 3. **apply** — the main thread walks the shards in order and merges
//!    each owner's sorted survivor batch into its label
//!    ([`VertexLabels::merge_min_sorted`]).
//!
//! Because the shards partition the key space and every per-key
//! reduction is a minimum, the result is *bit-identical* to the
//! sequential build for every thread count — the single-threaded path
//! is literally the same pipeline with one chunk and one shard.

use std::time::{Duration, Instant};

use hoplabels::index::{join_min, DirectedLabels, LabelIndex, UndirectedLabels, VertexLabels};
use hoplabels::LabelEntry;
use sfgraph::hash::FxHashMap;
use sfgraph::{Direction, Dist, Graph, VertexId};

use crate::config::HopDbConfig;
use crate::invlist::InvList;
use crate::iteration::{BuildStats, IterationStats, ShardStats};
use crate::shard;

/// Build a label index for a rank-relabeled graph, directed or
/// undirected, honouring `cfg`'s strategy, pruning, and parallelism
/// switches.
pub fn build_index(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    if g.is_directed() {
        build_directed(g, cfg)
    } else {
        build_undirected(g, cfg)
    }
}

/// Candidate pool keyed by `(owner, pivot)` keeping the minimum distance.
type CandMap = FxHashMap<(VertexId, VertexId), Dist>;

fn offer(cands: &mut CandMap, owner: VertexId, pivot: VertexId, d: Dist) {
    cands
        .entry((owner, pivot))
        .and_modify(|cur| {
            if d < *cur {
                *cur = d;
            }
        })
        .or_insert(d);
}

/// Min-merge per-worker pools of one shard into a single deduplicated
/// pool, folding into the largest pool to minimise rehashing.
fn merge_cands(mut maps: Vec<CandMap>) -> CandMap {
    let Some(big) = maps.iter().enumerate().max_by_key(|(_, m)| m.len()).map(|(i, _)| i) else {
        return CandMap::default();
    };
    let mut base = maps.swap_remove(big);
    for m in maps {
        for ((owner, pivot), d) in m {
            offer(&mut base, owner, pivot, d);
        }
    }
    base
}

/// Survivors and counters of one shard's merge + prune phase.
struct ShardOutcome {
    shard: usize,
    /// Out-side survivors `(owner, pivot, dist)`, sorted. The whole pool
    /// for the undirected engine.
    out: Vec<(VertexId, VertexId, Dist)>,
    /// In-side survivors `(owner, pivot, dist)`, sorted; directed only.
    inn: Vec<(VertexId, VertexId, Dist)>,
    candidates: u64,
    pruned: u64,
    elapsed: Duration,
}

impl ShardOutcome {
    fn stats(&self) -> ShardStats {
        ShardStats {
            shard: self.shard,
            candidates: self.candidates,
            pruned: self.pruned,
            elapsed: self.elapsed,
        }
    }
}

fn shard_stats(threads: usize, outcomes: &[ShardOutcome]) -> Vec<ShardStats> {
    if threads > 1 {
        outcomes.iter().map(ShardOutcome::stats).collect()
    } else {
        Vec::new()
    }
}

/// Insert survivors — sorted by `(owner, pivot)` — as per-owner batches,
/// keeping the inverted lists and the entry count in sync. Returns the
/// number of added-or-improved entries.
fn insert_batches(
    survivors: &[(VertexId, VertexId, Dist)],
    labels: &mut [VertexLabels],
    inv: &mut [InvList],
    total: &mut u64,
) -> u64 {
    let mut inserted = 0u64;
    let mut batch = Vec::new();
    let mut i = 0usize;
    while i < survivors.len() {
        let owner = survivors[i].0;
        batch.clear();
        while i < survivors.len() && survivors[i].0 == owner {
            batch.push(LabelEntry::new(survivors[i].1, survivors[i].2));
            i += 1;
        }
        inserted += labels[owner as usize].merge_min_sorted(&batch, |e, had| {
            inv[e.pivot as usize].upsert(owner, e.dist);
            if !had {
                *total += 1;
            }
        }) as u64;
    }
    inserted
}

// ---------------------------------------------------------------------
// Directed engine
// ---------------------------------------------------------------------

struct DirectedEngine<'g> {
    g: &'g Graph,
    out: Vec<VertexLabels>,
    inn: Vec<VertexLabels>,
    /// `out_inv[p]` = owners `u` (and distances) with `(p, ·) ∈ Lout(u)`.
    out_inv: Vec<InvList>,
    /// `in_inv[p]` = owners `v` (and distances) with `(p, ·) ∈ Lin(v)`.
    in_inv: Vec<InvList>,
    /// New out-entries of the previous iteration: `(owner, pivot, dist)`.
    prev_out: Vec<(VertexId, VertexId, Dist)>,
    /// New in-entries of the previous iteration: `(owner, pivot, dist)`.
    prev_in: Vec<(VertexId, VertexId, Dist)>,
    total_entries: u64,
}

fn build_directed(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    let started = Instant::now();
    let threads = cfg.resolved_parallelism();
    let n = g.num_vertices();
    let mut e = DirectedEngine {
        g,
        out: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        inn: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        out_inv: vec![InvList::default(); n],
        in_inv: vec![InvList::default(); n],
        prev_out: Vec::new(),
        prev_in: Vec::new(),
        total_entries: 2 * n as u64,
    };
    let mut stats = BuildStats { threads, ..BuildStats::default() };

    // Iteration 1: initialization — one entry per edge (§3.1).
    let init_start = Instant::now();
    for v in g.vertices() {
        for (t, w) in g.edges(v, Direction::Out) {
            if t < v {
                // r(t) > r(v): out-entry (t, w) ∈ Lout(v).
                if e.out[v as usize].insert_min(LabelEntry::new(t, w)) {
                    e.out_inv[t as usize].upsert(v, w);
                }
                e.prev_out.push((v, t, w));
            } else {
                // r(v) > r(t): in-entry (v, w) ∈ Lin(t).
                if e.inn[t as usize].insert_min(LabelEntry::new(v, w)) {
                    e.in_inv[v as usize].upsert(t, w);
                }
                e.prev_in.push((t, v, w));
            }
        }
    }
    let init_inserted = (e.prev_out.len() + e.prev_in.len()) as u64;
    e.total_entries += init_inserted;
    stats.iterations.push(IterationStats {
        iteration: 1,
        stepping: true,
        candidates: init_inserted,
        pruned: 0,
        inserted: init_inserted,
        total_entries: e.total_entries,
        elapsed: init_start.elapsed(),
        shards: Vec::new(),
    });

    let mut iter = 1u32;
    while !(e.prev_out.is_empty() && e.prev_in.is_empty()) && iter < cfg.max_iterations {
        iter += 1;
        let round_start = Instant::now();
        let stepping = cfg.strategy.steps_at(iter);
        let round_threads = shard::effective_threads(threads, e.prev_out.len() + e.prev_in.len());
        let outcomes = e.run_round(stepping, cfg.prune, round_threads);
        let candidates = outcomes.iter().map(|o| o.candidates).sum();
        let pruned = outcomes.iter().map(|o| o.pruned).sum();
        let shards = shard_stats(round_threads, &outcomes);
        let inserted = e.apply(&outcomes);
        stats.iterations.push(IterationStats {
            iteration: iter,
            stepping,
            candidates,
            pruned,
            inserted,
            total_entries: e.total_entries,
            elapsed: round_start.elapsed(),
            shards,
        });
        if inserted == 0 {
            break;
        }
    }

    let index = LabelIndex::Directed(DirectedLabels { in_labels: e.inn, out_labels: e.out });
    stats.final_entries = index.total_entries() as u64;
    stats.elapsed = started.elapsed();
    (index, stats)
}

impl DirectedEngine<'_> {
    /// One generate + prune round over `threads` workers; survivors come
    /// back per shard, sorted, ready for [`DirectedEngine::apply`].
    fn run_round(&self, stepping: bool, prune: bool, threads: usize) -> Vec<ShardOutcome> {
        if threads == 1 {
            let (out_maps, in_maps) = self.scatter(stepping, &self.prev_out, &self.prev_in, 1);
            return vec![self.prune_shard(prune, 0, out_maps, in_maps)];
        }
        let out_chunks = shard::chunks(&self.prev_out, threads);
        let in_chunks = shard::chunks(&self.prev_in, threads);
        // Phase 1: scatter — every worker generates candidates from its
        // chunk into per-shard pools.
        let mut scattered: Vec<(Vec<CandMap>, Vec<CandMap>)> = std::thread::scope(|sc| {
            let handles: Vec<_> = out_chunks
                .into_iter()
                .zip(in_chunks)
                .map(|(oc, ic)| sc.spawn(move || self.scatter(stepping, oc, ic, threads)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("scatter worker panicked")).collect()
        });
        // Phase 2: merge + prune — one worker per shard.
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..threads)
                .map(|s| {
                    let out_maps: Vec<CandMap> =
                        scattered.iter_mut().map(|(o, _)| std::mem::take(&mut o[s])).collect();
                    let in_maps: Vec<CandMap> =
                        scattered.iter_mut().map(|(_, i)| std::mem::take(&mut i[s])).collect();
                    sc.spawn(move || self.prune_shard(prune, s, out_maps, in_maps))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("prune worker panicked")).collect()
        })
    }

    /// Generate candidates from chunks of the previous iteration's
    /// entries into `shards` owner-routed pools per side.
    fn scatter(
        &self,
        stepping: bool,
        prev_out: &[(VertexId, VertexId, Dist)],
        prev_in: &[(VertexId, VertexId, Dist)],
        shards: usize,
    ) -> (Vec<CandMap>, Vec<CandMap>) {
        let mut out_cands = vec![CandMap::default(); shards];
        let mut in_cands = vec![CandMap::default(); shards];
        if stepping {
            // R1+R2 over edges: extend new out-entries to in-neighbours.
            for &(u, v, d) in prev_out {
                for (x, w) in self.g.edges(u, Direction::In) {
                    if x > v {
                        self.offer_out(&mut out_cands, x, v, d.saturating_add(w));
                    }
                }
            }
            // R4+R5 over edges: extend new in-entries to out-neighbours.
            for &(v, u, d) in prev_in {
                for (y, w) in self.g.edges(v, Direction::Out) {
                    if y > u {
                        self.offer_in(&mut in_cands, y, u, d.saturating_add(w));
                    }
                }
            }
        } else {
            for &(u, v, d) in prev_out {
                // R1: (u1, d1) ∈ Lin(u) with v < u1 < u.
                for e in self.inn[u as usize].entries() {
                    if e.pivot > v && e.pivot < u {
                        self.offer_out(&mut out_cands, e.pivot, v, d.saturating_add(e.dist));
                    }
                }
                // R2: owners u2 with (u, d2) ∈ Lout(u2); u2 > u > v holds.
                for &(u2, d2) in self.out_inv[u as usize].entries() {
                    self.offer_out(&mut out_cands, u2, v, d.saturating_add(d2));
                }
            }
            for &(v, u, d) in prev_in {
                // R4: (u4, d4) ∈ Lout(v) with u < u4 < v.
                for e in self.out[v as usize].entries() {
                    if e.pivot > u && e.pivot < v {
                        self.offer_in(&mut in_cands, e.pivot, u, d.saturating_add(e.dist));
                    }
                }
                // R5: owners u5 with (v, d5) ∈ Lin(u5); u5 > v > u holds.
                for &(u5, d5) in self.in_inv[v as usize].entries() {
                    self.offer_in(&mut in_cands, u5, u, d.saturating_add(d5));
                }
            }
        }
        (out_cands, in_cands)
    }

    #[inline]
    fn offer_out(&self, cands: &mut [CandMap], owner: VertexId, pivot: VertexId, d: Dist) {
        // Cheap dominance check against the existing entry before the
        // candidate pool (full pruning happens in `prune_shard`).
        if self.out[owner as usize].get(pivot).is_some_and(|cur| cur <= d) {
            return;
        }
        offer(&mut cands[shard::shard_of(owner, cands.len())], owner, pivot, d);
    }

    #[inline]
    fn offer_in(&self, cands: &mut [CandMap], owner: VertexId, pivot: VertexId, d: Dist) {
        if self.inn[owner as usize].get(pivot).is_some_and(|cur| cur <= d) {
            return;
        }
        offer(&mut cands[shard::shard_of(owner, cands.len())], owner, pivot, d);
    }

    /// Merge one shard's per-worker pools and prune the candidates
    /// against the index as of the end of the previous iteration
    /// (Theorem 3's proof relies on witnesses "from previous iterations"
    /// only) — survivors never prune each other, which also keeps the
    /// in-memory engine bit-identical to the external one, whose pruning
    /// joins read frozen label files.
    fn prune_shard(
        &self,
        prune: bool,
        shard: usize,
        out_maps: Vec<CandMap>,
        in_maps: Vec<CandMap>,
    ) -> ShardOutcome {
        let start = Instant::now();
        let out_merged = merge_cands(out_maps);
        let in_merged = merge_cands(in_maps);
        let candidates = (out_merged.len() + in_merged.len()) as u64;
        let mut pruned = 0u64;
        let mut out = Vec::with_capacity(out_merged.len());
        for ((u, v), d) in out_merged {
            // Out-entry (v, d) ∈ Lout(u) covers a path u ⇝ v: prune iff
            // dist_L(u, v) ≤ d already (§3.3).
            if prune
                && join_min(self.out[u as usize].entries(), self.inn[v as usize].entries()) <= d
            {
                pruned += 1;
            } else {
                out.push((u, v, d));
            }
        }
        let mut inn = Vec::with_capacity(in_merged.len());
        for ((v, u), d) in in_merged {
            // In-entry (u, d) ∈ Lin(v) covers a path u ⇝ v.
            if prune
                && join_min(self.out[u as usize].entries(), self.inn[v as usize].entries()) <= d
            {
                pruned += 1;
            } else {
                inn.push((v, u, d));
            }
        }
        out.sort_unstable();
        inn.sort_unstable();
        ShardOutcome { shard, out, inn, candidates, pruned, elapsed: start.elapsed() }
    }

    /// Insert every shard's survivors, in shard order, and make them the
    /// next iteration's `prev` entries.
    fn apply(&mut self, outcomes: &[ShardOutcome]) -> u64 {
        self.prev_out.clear();
        self.prev_in.clear();
        let mut inserted = 0u64;
        for o in outcomes {
            inserted +=
                insert_batches(&o.out, &mut self.out, &mut self.out_inv, &mut self.total_entries);
            inserted +=
                insert_batches(&o.inn, &mut self.inn, &mut self.in_inv, &mut self.total_entries);
            self.prev_out.extend_from_slice(&o.out);
            self.prev_in.extend_from_slice(&o.inn);
        }
        inserted
    }
}

// ---------------------------------------------------------------------
// Undirected engine (§7: single label, converted Rules 1–2)
// ---------------------------------------------------------------------

struct UndirectedEngine<'g> {
    g: &'g Graph,
    lb: Vec<VertexLabels>,
    /// `inv[p]` = owners `u` (and distances) with `(p, ·) ∈ L(u)`.
    inv: Vec<InvList>,
    prev: Vec<(VertexId, VertexId, Dist)>,
    total_entries: u64,
}

fn build_undirected(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    let started = Instant::now();
    let threads = cfg.resolved_parallelism();
    let n = g.num_vertices();
    let mut e = UndirectedEngine {
        g,
        lb: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        inv: vec![InvList::default(); n],
        prev: Vec::new(),
        total_entries: n as u64,
    };
    let mut stats = BuildStats { threads, ..BuildStats::default() };

    let init_start = Instant::now();
    for (u, v, w) in g.edge_list() {
        // Normalised u < v: r(u) > r(v), so (u, w) ∈ L(v).
        if e.lb[v as usize].insert_min(LabelEntry::new(u, w)) {
            e.inv[u as usize].upsert(v, w);
        }
        e.prev.push((v, u, w));
    }
    let init_inserted = e.prev.len() as u64;
    e.total_entries += init_inserted;
    stats.iterations.push(IterationStats {
        iteration: 1,
        stepping: true,
        candidates: init_inserted,
        pruned: 0,
        inserted: init_inserted,
        total_entries: e.total_entries,
        elapsed: init_start.elapsed(),
        shards: Vec::new(),
    });

    let mut iter = 1u32;
    while !e.prev.is_empty() && iter < cfg.max_iterations {
        iter += 1;
        let round_start = Instant::now();
        let stepping = cfg.strategy.steps_at(iter);
        let round_threads = shard::effective_threads(threads, e.prev.len());
        let outcomes = e.run_round(stepping, cfg.prune, round_threads);
        let candidates = outcomes.iter().map(|o| o.candidates).sum();
        let pruned = outcomes.iter().map(|o| o.pruned).sum();
        let shards = shard_stats(round_threads, &outcomes);
        let inserted = e.apply(&outcomes);
        stats.iterations.push(IterationStats {
            iteration: iter,
            stepping,
            candidates,
            pruned,
            inserted,
            total_entries: e.total_entries,
            elapsed: round_start.elapsed(),
            shards,
        });
        if inserted == 0 {
            break;
        }
    }

    let index = LabelIndex::Undirected(UndirectedLabels { labels: e.lb });
    stats.final_entries = index.total_entries() as u64;
    stats.elapsed = started.elapsed();
    (index, stats)
}

impl UndirectedEngine<'_> {
    /// One generate + prune round over `threads` workers (see the
    /// directed engine — the undirected engine has a single pool).
    fn run_round(&self, stepping: bool, prune: bool, threads: usize) -> Vec<ShardOutcome> {
        if threads == 1 {
            let maps = self.scatter(stepping, &self.prev, 1);
            return vec![self.prune_shard(prune, 0, maps)];
        }
        let chunks = shard::chunks(&self.prev, threads);
        let mut scattered: Vec<Vec<CandMap>> = std::thread::scope(|sc| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| sc.spawn(move || self.scatter(stepping, c, threads)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("scatter worker panicked")).collect()
        });
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..threads)
                .map(|s| {
                    let maps: Vec<CandMap> =
                        scattered.iter_mut().map(|w| std::mem::take(&mut w[s])).collect();
                    sc.spawn(move || self.prune_shard(prune, s, maps))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("prune worker panicked")).collect()
        })
    }

    fn scatter(
        &self,
        stepping: bool,
        prev: &[(VertexId, VertexId, Dist)],
        shards: usize,
    ) -> Vec<CandMap> {
        let mut cands = vec![CandMap::default(); shards];
        if stepping {
            for &(u, v, d) in prev {
                for (x, w) in self.g.edges(u, Direction::Out) {
                    if x > v {
                        self.offer(&mut cands, x, v, d.saturating_add(w));
                    }
                }
            }
        } else {
            for &(u, v, d) in prev {
                // Converted R1: (u1, d1) ∈ L(u) with v < u1 < u gets (v, d+d1).
                for e in self.lb[u as usize].entries() {
                    if e.pivot > v && e.pivot < u {
                        self.offer(&mut cands, e.pivot, v, d.saturating_add(e.dist));
                    }
                }
                // Converted R2: owners u2 with (u, d2) ∈ L(u2); u2 > u > v.
                for &(u2, d2) in self.inv[u as usize].entries() {
                    self.offer(&mut cands, u2, v, d.saturating_add(d2));
                }
            }
        }
        cands
    }

    #[inline]
    fn offer(&self, cands: &mut [CandMap], owner: VertexId, pivot: VertexId, d: Dist) {
        if self.lb[owner as usize].get(pivot).is_some_and(|cur| cur <= d) {
            return;
        }
        offer(&mut cands[shard::shard_of(owner, cands.len())], owner, pivot, d);
    }

    /// Merge + prune one shard; see the directed engine's `prune_shard`.
    fn prune_shard(&self, prune: bool, shard: usize, maps: Vec<CandMap>) -> ShardOutcome {
        let start = Instant::now();
        let merged = merge_cands(maps);
        let candidates = merged.len() as u64;
        let mut pruned = 0u64;
        let mut out = Vec::with_capacity(merged.len());
        for ((u, v), d) in merged {
            if prune && join_min(self.lb[u as usize].entries(), self.lb[v as usize].entries()) <= d
            {
                pruned += 1;
            } else {
                out.push((u, v, d));
            }
        }
        out.sort_unstable();
        ShardOutcome { shard, out, inn: Vec::new(), candidates, pruned, elapsed: start.elapsed() }
    }

    fn apply(&mut self, outcomes: &[ShardOutcome]) -> u64 {
        self.prev.clear();
        let mut inserted = 0u64;
        for o in outcomes {
            inserted +=
                insert_batches(&o.out, &mut self.lb, &mut self.inv, &mut self.total_entries);
            self.prev.extend_from_slice(&o.out);
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use hoplabels::verify::assert_exact;
    use sfgraph::GraphBuilder;

    fn configs() -> Vec<HopDbConfig> {
        vec![
            HopDbConfig::with_strategy(Strategy::Stepping),
            HopDbConfig::with_strategy(Strategy::Doubling),
            HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 3 }),
            HopDbConfig::unpruned(Strategy::Stepping),
            HopDbConfig::unpruned(Strategy::Doubling),
        ]
    }

    #[test]
    fn undirected_path_all_strategies_exact() {
        let mut b = GraphBuilder::new_undirected(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        for cfg in configs() {
            let (index, _) = build_index(&g, &cfg);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn directed_cycle_all_strategies_exact() {
        let mut b = GraphBuilder::new_directed(5);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5);
        }
        let g = b.build();
        for cfg in configs() {
            let (index, _) = build_index(&g, &cfg);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn weighted_directed_exact() {
        let mut b = GraphBuilder::new_directed(5).weighted();
        b.add_weighted_edge(0, 1, 3);
        b.add_weighted_edge(1, 2, 4);
        b.add_weighted_edge(0, 2, 9);
        b.add_weighted_edge(2, 3, 1);
        b.add_weighted_edge(3, 0, 2);
        b.add_weighted_edge(4, 0, 5);
        let g = b.build();
        for cfg in configs() {
            let (index, _) = build_index(&g, &cfg);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn stepping_iterations_bounded_by_hop_diameter() {
        // Theorem 6: at most D_H iterations (plus init and the final
        // empty round that detects the fixpoint).
        let mut b = GraphBuilder::new_undirected(9);
        for i in 0..8u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build(); // path: D_H = 8
        let (index, stats) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
        assert_exact(&g, &index);
        assert!(
            stats.num_iterations() <= 8 + 1,
            "stepping took {} iterations on a diameter-8 path",
            stats.num_iterations()
        );
    }

    #[test]
    fn doubling_iterations_logarithmic() {
        // Theorem 4: at most 2⌈log D_H⌉ iterations (+1 to detect the
        // fixpoint). Path of 33 vertices: D_H = 32, bound = 10.
        let mut b = GraphBuilder::new_undirected(33);
        for i in 0..32u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let (index, stats) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Doubling));
        assert_exact(&g, &index);
        let bound = 2 * 32u32.ilog2() + 1;
        assert!(
            stats.num_iterations() <= bound,
            "doubling took {} iterations, bound {bound}",
            stats.num_iterations()
        );
        // And it must beat stepping's 32 rounds by a wide margin.
        assert!(stats.num_iterations() <= 12);
    }

    #[test]
    fn pruning_shrinks_labels() {
        // Cycle: candidates like (3, 1, 2) on a 4-cycle are covered via
        // the higher-ranked pivot 0, so pruning must drop them while the
        // unpruned engine keeps them.
        let mut b = GraphBuilder::new_undirected(8);
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 8);
        }
        let g = b.build();
        let (with, _) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
        let (without, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Stepping));
        assert_exact(&g, &with);
        assert_exact(&g, &without);
        assert!(
            with.total_entries() < without.total_entries(),
            "pruned {} !< unpruned {}",
            with.total_entries(),
            without.total_entries()
        );
    }

    #[test]
    fn disconnected_components_stay_unreachable() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(4, 5);
        let g = b.build();
        let (index, _) = build_index(&g, &HopDbConfig::default());
        assert_exact(&g, &index);
        assert_eq!(index.query(0, 3), sfgraph::INF_DIST);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g0 = GraphBuilder::new_undirected(0).build();
        let (i0, s0) = build_index(&g0, &HopDbConfig::default());
        assert_eq!(i0.total_entries(), 0);
        assert_eq!(s0.num_iterations(), 1);

        let g1 = GraphBuilder::new_directed(1).build();
        let (i1, _) = build_index(&g1, &HopDbConfig::default());
        assert_eq!(i1.query(0, 0), 0);
    }

    /// Random graphs: every thread count must reproduce the sequential
    /// index exactly, entry for entry, with matching iteration counters.
    #[test]
    fn parallel_builds_match_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for case in 0..6 {
            let n = rng.gen_range(8..40);
            let directed = case % 2 == 0;
            let mut b = if directed {
                GraphBuilder::new_directed(n).weighted()
            } else {
                GraphBuilder::new_undirected(n).weighted()
            };
            for _ in 0..rng.gen_range(2 * n..6 * n) {
                b.add_weighted_edge(
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(0..n) as VertexId,
                    rng.gen_range(1..8),
                );
            }
            let g = b.build();
            for cfg in configs() {
                let (seq_index, seq_stats) = build_index(&g, &cfg);
                for threads in [2usize, 3, 8] {
                    let par_cfg = cfg.clone().with_parallelism(threads);
                    let (par_index, par_stats) = build_index(&g, &par_cfg);
                    assert_eq!(
                        par_index, seq_index,
                        "case {case}, {threads} threads, {:?}",
                        cfg.strategy
                    );
                    assert_eq!(par_stats.num_iterations(), seq_stats.num_iterations());
                    for (a, b) in par_stats.iterations.iter().zip(&seq_stats.iterations) {
                        assert_eq!(
                            (a.candidates, a.pruned, a.inserted, a.total_entries),
                            (b.candidates, b.pruned, b.inserted, b.total_entries),
                            "case {case}, iteration {} counters diverged",
                            a.iteration
                        );
                    }
                }
            }
        }
    }

    /// Force the sharded path (small graphs normally fall back to one
    /// thread) and check the per-shard counters add up.
    #[test]
    fn forced_sharding_reports_shard_stats() {
        let mut b = GraphBuilder::new_undirected(64);
        for i in 0..64u32 {
            b.add_edge(i, (i + 1) % 64);
            b.add_edge(i, (i + 7) % 64);
        }
        let g = b.build();
        let e = UndirectedEngine {
            g: &g,
            lb: (0..64).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
            inv: vec![InvList::default(); 64],
            prev: g.edge_list().into_iter().map(|(u, v, w)| (v, u, w)).collect(),
            total_entries: 64,
        };
        let seq = e.run_round(true, true, 1);
        let par = e.run_round(true, true, 4);
        assert_eq!(par.len(), 4);
        let seq_cands: u64 = seq.iter().map(|o| o.candidates).sum();
        let par_cands: u64 = par.iter().map(|o| o.candidates).sum();
        assert_eq!(seq_cands, par_cands, "sharding must not change the deduplicated pool");
        let mut seq_surv: Vec<_> = seq.into_iter().flat_map(|o| o.out).collect();
        let mut par_surv: Vec<_> = par.into_iter().flat_map(|o| o.out).collect();
        seq_surv.sort_unstable();
        par_surv.sort_unstable();
        assert_eq!(seq_surv, par_surv);
    }

    #[test]
    fn vertex_labels_need_init() {
        // `prev` above is built from edge_list; make sure the labels the
        // engine prunes against contain those initial entries when the
        // full builder runs (regression guard for the refactor: the
        // init loop now feeds the inverted lists through `upsert`).
        let mut b = GraphBuilder::new_undirected(5).weighted();
        b.add_weighted_edge(0, 1, 2);
        b.add_weighted_edge(0, 1, 5); // parallel edge, worse weight
        b.add_weighted_edge(1, 2, 1);
        let g = b.build();
        let (index, _) = build_index(&g, &HopDbConfig::default());
        assert_exact(&g, &index);
    }
}
