//! The in-memory iterative labeling engines (Algorithm 1 with the
//! minimized rules of §3.2, the pruning of §3.3, and the stepping
//! refinement of §5.1).
//!
//! ## Rank convention
//!
//! Inputs must be *rank-relabeled* graphs (id 0 = highest rank), so
//! `r(u) > r(v)` ⇔ `u < v`. Under this convention the four minimized
//! rules become, for out-entries (Rules 1 + 2) and in-entries
//! (Rules 4 + 5):
//!
//! ```text
//! R1: prev (v,d) ∈ Lout(u), (u1,d1) ∈ Lin(u),  v < u1 < u ⇒ cand (v, d+d1) ∈ Lout(u1)
//! R2: prev (v,d) ∈ Lout(u), (u,d2) ∈ Lout(u2)            ⇒ cand (v, d+d2) ∈ Lout(u2)
//! R4: prev (u,d) ∈ Lin(v),  (u4,d4) ∈ Lout(v), u < u4 < v ⇒ cand (u, d+d4) ∈ Lin(u4)
//! R5: prev (u,d) ∈ Lin(v),  (v,d5) ∈ Lin(u5)             ⇒ cand (u, d+d5) ∈ Lin(u5)
//! ```
//!
//! Rules 2 and 5 need the *inverted* view "which labels contain pivot
//! `p`" — the label-files-sorted-by-pivot of §4.1; the in-memory engine
//! maintains them as adjacency-style lists. In stepping iterations the
//! composed side is restricted to graph edges, which collapses R1+R2
//! into "extend each new out-entry over in-edges `(x, u)` with
//! `x > pivot`", and dually for R4+R5.
//!
//! Pruning (§3.3, restricted as in §4.2 to witnesses of higher rank than
//! both endpoints) is exactly the 2-hop query on the index built so far:
//! candidate `(u → v, d)` dies iff `dist_L(u, v) ≤ d`, which the
//! self-entries extend to same-pair dominance.

use std::time::Instant;

use hoplabels::index::{join_min, DirectedLabels, LabelIndex, UndirectedLabels, VertexLabels};
use hoplabels::LabelEntry;
use sfgraph::hash::FxHashMap;
use sfgraph::{Direction, Dist, Graph, VertexId};

use crate::config::HopDbConfig;
use crate::iteration::{BuildStats, IterationStats};

/// Build a label index for a rank-relabeled graph, directed or
/// undirected, honouring `cfg`'s strategy and pruning switches.
pub fn build_index(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    if g.is_directed() {
        build_directed(g, cfg)
    } else {
        build_undirected(g, cfg)
    }
}

/// Candidate pool keyed by `(owner, pivot)` keeping the minimum distance.
type CandMap = FxHashMap<(VertexId, VertexId), Dist>;

fn offer(cands: &mut CandMap, owner: VertexId, pivot: VertexId, d: Dist) {
    cands
        .entry((owner, pivot))
        .and_modify(|cur| {
            if d < *cur {
                *cur = d;
            }
        })
        .or_insert(d);
}

/// Insert `(owner, d)` into an inverted pivot list, updating in place if
/// the owner is already present (distance improvements on weighted
/// graphs).
fn upsert_inv(inv: &mut Vec<(VertexId, Dist)>, owner: VertexId, d: Dist, had_entry: bool) {
    if had_entry {
        if let Some(slot) = inv.iter_mut().find(|(o, _)| *o == owner) {
            slot.1 = d;
            return;
        }
    }
    inv.push((owner, d));
}

// ---------------------------------------------------------------------
// Directed engine
// ---------------------------------------------------------------------

struct DirectedEngine<'g> {
    g: &'g Graph,
    out: Vec<VertexLabels>,
    inn: Vec<VertexLabels>,
    /// `out_inv[p]` = owners `u` (and distances) with `(p, ·) ∈ Lout(u)`.
    out_inv: Vec<Vec<(VertexId, Dist)>>,
    /// `in_inv[p]` = owners `v` (and distances) with `(p, ·) ∈ Lin(v)`.
    in_inv: Vec<Vec<(VertexId, Dist)>>,
    /// New out-entries of the previous iteration: `(owner, pivot, dist)`.
    prev_out: Vec<(VertexId, VertexId, Dist)>,
    /// New in-entries of the previous iteration: `(owner, pivot, dist)`.
    prev_in: Vec<(VertexId, VertexId, Dist)>,
    total_entries: u64,
}

fn build_directed(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    let started = Instant::now();
    let n = g.num_vertices();
    let mut e = DirectedEngine {
        g,
        out: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        inn: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        out_inv: vec![Vec::new(); n],
        in_inv: vec![Vec::new(); n],
        prev_out: Vec::new(),
        prev_in: Vec::new(),
        total_entries: 2 * n as u64,
    };
    let mut stats = BuildStats::default();

    // Iteration 1: initialization — one entry per edge (§3.1).
    let init_start = Instant::now();
    for v in g.vertices() {
        for (t, w) in g.edges(v, Direction::Out) {
            if t < v {
                // r(t) > r(v): out-entry (t, w) ∈ Lout(v).
                e.out[v as usize].insert_min(LabelEntry::new(t, w));
                e.out_inv[t as usize].push((v, w));
                e.prev_out.push((v, t, w));
            } else {
                // r(v) > r(t): in-entry (v, w) ∈ Lin(t).
                e.inn[t as usize].insert_min(LabelEntry::new(v, w));
                e.in_inv[v as usize].push((t, w));
                e.prev_in.push((t, v, w));
            }
        }
    }
    let init_inserted = (e.prev_out.len() + e.prev_in.len()) as u64;
    e.total_entries += init_inserted;
    stats.iterations.push(IterationStats {
        iteration: 1,
        stepping: true,
        candidates: init_inserted,
        pruned: 0,
        inserted: init_inserted,
        total_entries: e.total_entries,
        elapsed: init_start.elapsed(),
    });

    let mut iter = 1u32;
    while !(e.prev_out.is_empty() && e.prev_in.is_empty()) && iter < cfg.max_iterations {
        iter += 1;
        let round_start = Instant::now();
        let stepping = cfg.strategy.steps_at(iter);
        let (mut out_cands, mut in_cands) = (CandMap::default(), CandMap::default());
        e.generate(stepping, &mut out_cands, &mut in_cands);
        let candidates = (out_cands.len() + in_cands.len()) as u64;
        let (pruned, inserted) = e.absorb(cfg.prune, out_cands, in_cands);
        stats.iterations.push(IterationStats {
            iteration: iter,
            stepping,
            candidates,
            pruned,
            inserted,
            total_entries: e.total_entries,
            elapsed: round_start.elapsed(),
        });
        if inserted == 0 {
            break;
        }
    }

    let index = LabelIndex::Directed(DirectedLabels { in_labels: e.inn, out_labels: e.out });
    stats.final_entries = index.total_entries() as u64;
    stats.elapsed = started.elapsed();
    (index, stats)
}

impl DirectedEngine<'_> {
    fn generate(&self, stepping: bool, out_cands: &mut CandMap, in_cands: &mut CandMap) {
        if stepping {
            // R1+R2 over edges: extend new out-entries to in-neighbours.
            for &(u, v, d) in &self.prev_out {
                for (x, w) in self.g.edges(u, Direction::In) {
                    if x > v {
                        self.offer_out(out_cands, x, v, d.saturating_add(w));
                    }
                }
            }
            // R4+R5 over edges: extend new in-entries to out-neighbours.
            for &(v, u, d) in &self.prev_in {
                for (y, w) in self.g.edges(v, Direction::Out) {
                    if y > u {
                        self.offer_in(in_cands, y, u, d.saturating_add(w));
                    }
                }
            }
        } else {
            for &(u, v, d) in &self.prev_out {
                // R1: (u1, d1) ∈ Lin(u) with v < u1 < u.
                for e in self.inn[u as usize].entries() {
                    if e.pivot > v && e.pivot < u {
                        self.offer_out(out_cands, e.pivot, v, d.saturating_add(e.dist));
                    }
                }
                // R2: owners u2 with (u, d2) ∈ Lout(u2); u2 > u > v holds.
                for &(u2, d2) in &self.out_inv[u as usize] {
                    self.offer_out(out_cands, u2, v, d.saturating_add(d2));
                }
            }
            for &(v, u, d) in &self.prev_in {
                // R4: (u4, d4) ∈ Lout(v) with u < u4 < v.
                for e in self.out[v as usize].entries() {
                    if e.pivot > u && e.pivot < v {
                        self.offer_in(in_cands, e.pivot, u, d.saturating_add(e.dist));
                    }
                }
                // R5: owners u5 with (v, d5) ∈ Lin(u5); u5 > v > u holds.
                for &(u5, d5) in &self.in_inv[v as usize] {
                    self.offer_in(in_cands, u5, u, d.saturating_add(d5));
                }
            }
        }
    }

    #[inline]
    fn offer_out(&self, cands: &mut CandMap, owner: VertexId, pivot: VertexId, d: Dist) {
        // Cheap dominance check against the existing entry before the
        // candidate pool (full pruning happens in `absorb`).
        if self.out[owner as usize].get(pivot).is_some_and(|cur| cur <= d) {
            return;
        }
        offer(cands, owner, pivot, d);
    }

    #[inline]
    fn offer_in(&self, cands: &mut CandMap, owner: VertexId, pivot: VertexId, d: Dist) {
        if self.inn[owner as usize].get(pivot).is_some_and(|cur| cur <= d) {
            return;
        }
        offer(cands, owner, pivot, d);
    }

    /// Prune candidates against the index as of the end of the previous
    /// iteration (Theorem 3's proof relies on witnesses "from previous
    /// iterations" only), then insert all survivors. Two phases, so
    /// same-iteration survivors never prune each other — this also keeps
    /// the in-memory engine bit-identical to the external one, whose
    /// pruning joins read frozen label files.
    fn absorb(&mut self, prune: bool, out_cands: CandMap, in_cands: CandMap) -> (u64, u64) {
        self.prev_out.clear();
        self.prev_in.clear();
        let mut pruned = 0u64;
        // Phase 1: decide survival against the frozen index.
        for ((u, v), d) in out_cands {
            // Out-entry (v, d) ∈ Lout(u) covers a path u ⇝ v: prune iff
            // dist_L(u, v) ≤ d already (§3.3).
            if prune
                && join_min(self.out[u as usize].entries(), self.inn[v as usize].entries()) <= d
            {
                pruned += 1;
                continue;
            }
            self.prev_out.push((u, v, d));
        }
        for ((v, u), d) in in_cands {
            // In-entry (u, d) ∈ Lin(v) covers a path u ⇝ v.
            if prune
                && join_min(self.out[u as usize].entries(), self.inn[v as usize].entries()) <= d
            {
                pruned += 1;
                continue;
            }
            self.prev_in.push((v, u, d));
        }
        // Phase 2: insert survivors.
        let mut inserted = 0u64;
        for &(u, v, d) in &self.prev_out {
            let had = self.out[u as usize].get(v).is_some();
            if self.out[u as usize].insert_min(LabelEntry::new(v, d)) {
                upsert_inv(&mut self.out_inv[v as usize], u, d, had);
                if !had {
                    self.total_entries += 1;
                }
                inserted += 1;
            }
        }
        for &(v, u, d) in &self.prev_in {
            let had = self.inn[v as usize].get(u).is_some();
            if self.inn[v as usize].insert_min(LabelEntry::new(u, d)) {
                upsert_inv(&mut self.in_inv[u as usize], v, d, had);
                if !had {
                    self.total_entries += 1;
                }
                inserted += 1;
            }
        }
        (pruned, inserted)
    }
}

// ---------------------------------------------------------------------
// Undirected engine (§7: single label, converted Rules 1–2)
// ---------------------------------------------------------------------

struct UndirectedEngine<'g> {
    g: &'g Graph,
    lb: Vec<VertexLabels>,
    /// `inv[p]` = owners `u` (and distances) with `(p, ·) ∈ L(u)`.
    inv: Vec<Vec<(VertexId, Dist)>>,
    prev: Vec<(VertexId, VertexId, Dist)>,
    total_entries: u64,
}

fn build_undirected(g: &Graph, cfg: &HopDbConfig) -> (LabelIndex, BuildStats) {
    let started = Instant::now();
    let n = g.num_vertices();
    let mut e = UndirectedEngine {
        g,
        lb: (0..n).map(|v| VertexLabels::with_trivial(v as VertexId)).collect(),
        inv: vec![Vec::new(); n],
        prev: Vec::new(),
        total_entries: n as u64,
    };
    let mut stats = BuildStats::default();

    let init_start = Instant::now();
    for (u, v, w) in g.edge_list() {
        // Normalised u < v: r(u) > r(v), so (u, w) ∈ L(v).
        e.lb[v as usize].insert_min(LabelEntry::new(u, w));
        e.inv[u as usize].push((v, w));
        e.prev.push((v, u, w));
    }
    let init_inserted = e.prev.len() as u64;
    e.total_entries += init_inserted;
    stats.iterations.push(IterationStats {
        iteration: 1,
        stepping: true,
        candidates: init_inserted,
        pruned: 0,
        inserted: init_inserted,
        total_entries: e.total_entries,
        elapsed: init_start.elapsed(),
    });

    let mut iter = 1u32;
    while !e.prev.is_empty() && iter < cfg.max_iterations {
        iter += 1;
        let round_start = Instant::now();
        let stepping = cfg.strategy.steps_at(iter);
        let mut cands = CandMap::default();
        e.generate(stepping, &mut cands);
        let candidates = cands.len() as u64;
        let (pruned, inserted) = e.absorb(cfg.prune, cands);
        stats.iterations.push(IterationStats {
            iteration: iter,
            stepping,
            candidates,
            pruned,
            inserted,
            total_entries: e.total_entries,
            elapsed: round_start.elapsed(),
        });
        if inserted == 0 {
            break;
        }
    }

    let index = LabelIndex::Undirected(UndirectedLabels { labels: e.lb });
    stats.final_entries = index.total_entries() as u64;
    stats.elapsed = started.elapsed();
    (index, stats)
}

impl UndirectedEngine<'_> {
    fn generate(&self, stepping: bool, cands: &mut CandMap) {
        if stepping {
            for &(u, v, d) in &self.prev {
                for (x, w) in self.g.edges(u, Direction::Out) {
                    if x > v {
                        self.offer(cands, x, v, d.saturating_add(w));
                    }
                }
            }
        } else {
            for &(u, v, d) in &self.prev {
                // Converted R1: (u1, d1) ∈ L(u) with v < u1 < u gets (v, d+d1).
                for e in self.lb[u as usize].entries() {
                    if e.pivot > v && e.pivot < u {
                        self.offer(cands, e.pivot, v, d.saturating_add(e.dist));
                    }
                }
                // Converted R2: owners u2 with (u, d2) ∈ L(u2); u2 > u > v.
                for &(u2, d2) in &self.inv[u as usize] {
                    self.offer(cands, u2, v, d.saturating_add(d2));
                }
            }
        }
    }

    #[inline]
    fn offer(&self, cands: &mut CandMap, owner: VertexId, pivot: VertexId, d: Dist) {
        if self.lb[owner as usize].get(pivot).is_some_and(|cur| cur <= d) {
            return;
        }
        offer(cands, owner, pivot, d);
    }

    /// Two-phase prune-then-insert; see the directed engine's `absorb`.
    fn absorb(&mut self, prune: bool, cands: CandMap) -> (u64, u64) {
        self.prev.clear();
        let mut pruned = 0u64;
        for ((u, v), d) in cands {
            if prune && join_min(self.lb[u as usize].entries(), self.lb[v as usize].entries()) <= d
            {
                pruned += 1;
                continue;
            }
            self.prev.push((u, v, d));
        }
        let mut inserted = 0u64;
        for &(u, v, d) in &self.prev {
            let had = self.lb[u as usize].get(v).is_some();
            if self.lb[u as usize].insert_min(LabelEntry::new(v, d)) {
                upsert_inv(&mut self.inv[v as usize], u, d, had);
                if !had {
                    self.total_entries += 1;
                }
                inserted += 1;
            }
        }
        (pruned, inserted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use hoplabels::verify::assert_exact;
    use sfgraph::GraphBuilder;

    fn configs() -> Vec<HopDbConfig> {
        vec![
            HopDbConfig::with_strategy(Strategy::Stepping),
            HopDbConfig::with_strategy(Strategy::Doubling),
            HopDbConfig::with_strategy(Strategy::Hybrid { switch_at: 3 }),
            HopDbConfig::unpruned(Strategy::Stepping),
            HopDbConfig::unpruned(Strategy::Doubling),
        ]
    }

    #[test]
    fn undirected_path_all_strategies_exact() {
        let mut b = GraphBuilder::new_undirected(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        for cfg in configs() {
            let (index, _) = build_index(&g, &cfg);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn directed_cycle_all_strategies_exact() {
        let mut b = GraphBuilder::new_directed(5);
        for i in 0..5u32 {
            b.add_edge(i, (i + 1) % 5);
        }
        let g = b.build();
        for cfg in configs() {
            let (index, _) = build_index(&g, &cfg);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn weighted_directed_exact() {
        let mut b = GraphBuilder::new_directed(5).weighted();
        b.add_weighted_edge(0, 1, 3);
        b.add_weighted_edge(1, 2, 4);
        b.add_weighted_edge(0, 2, 9);
        b.add_weighted_edge(2, 3, 1);
        b.add_weighted_edge(3, 0, 2);
        b.add_weighted_edge(4, 0, 5);
        let g = b.build();
        for cfg in configs() {
            let (index, _) = build_index(&g, &cfg);
            assert_exact(&g, &index);
        }
    }

    #[test]
    fn stepping_iterations_bounded_by_hop_diameter() {
        // Theorem 6: at most D_H iterations (plus init and the final
        // empty round that detects the fixpoint).
        let mut b = GraphBuilder::new_undirected(9);
        for i in 0..8u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build(); // path: D_H = 8
        let (index, stats) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
        assert_exact(&g, &index);
        assert!(
            stats.num_iterations() <= 8 + 1,
            "stepping took {} iterations on a diameter-8 path",
            stats.num_iterations()
        );
    }

    #[test]
    fn doubling_iterations_logarithmic() {
        // Theorem 4: at most 2⌈log D_H⌉ iterations (+1 to detect the
        // fixpoint). Path of 33 vertices: D_H = 32, bound = 10.
        let mut b = GraphBuilder::new_undirected(33);
        for i in 0..32u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let (index, stats) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Doubling));
        assert_exact(&g, &index);
        let bound = 2 * 32u32.ilog2() + 1;
        assert!(
            stats.num_iterations() <= bound,
            "doubling took {} iterations, bound {bound}",
            stats.num_iterations()
        );
        // And it must beat stepping's 32 rounds by a wide margin.
        assert!(stats.num_iterations() <= 12);
    }

    #[test]
    fn pruning_shrinks_labels() {
        // Cycle: candidates like (3, 1, 2) on a 4-cycle are covered via
        // the higher-ranked pivot 0, so pruning must drop them while the
        // unpruned engine keeps them.
        let mut b = GraphBuilder::new_undirected(8);
        for i in 0..8u32 {
            b.add_edge(i, (i + 1) % 8);
        }
        let g = b.build();
        let (with, _) = build_index(&g, &HopDbConfig::with_strategy(Strategy::Stepping));
        let (without, _) = build_index(&g, &HopDbConfig::unpruned(Strategy::Stepping));
        assert_exact(&g, &with);
        assert_exact(&g, &without);
        assert!(
            with.total_entries() < without.total_entries(),
            "pruned {} !< unpruned {}",
            with.total_entries(),
            without.total_entries()
        );
    }

    #[test]
    fn disconnected_components_stay_unreachable() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        b.add_edge(4, 5);
        let g = b.build();
        let (index, _) = build_index(&g, &HopDbConfig::default());
        assert_exact(&g, &index);
        assert_eq!(index.query(0, 3), sfgraph::INF_DIST);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g0 = GraphBuilder::new_undirected(0).build();
        let (i0, s0) = build_index(&g0, &HopDbConfig::default());
        assert_eq!(i0.total_entries(), 0);
        assert_eq!(s0.num_iterations(), 1);

        let g1 = GraphBuilder::new_directed(1).build();
        let (i1, _) = build_index(&g1, &HopDbConfig::default());
        assert_eq!(i1.query(0, 0), 0);
    }
}
