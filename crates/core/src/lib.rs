#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # hopdb — Hop-Doubling label indexing (the paper's contribution)
//!
//! Implementation of *Hop Doubling Label Indexing for Point-to-Point
//! Distance Querying on Scale-Free Networks* (Jiang, Fu, Wong, Xu;
//! VLDB 2014). The index is a 2-hop label cover built by an iterative
//! generate-and-prune process:
//!
//! * **Hop-Doubling** (§3): each iteration composes the previous
//!   iteration's entries with *all* existing entries through four
//!   minimized rules (Lemmas 3–4), doubling the covered trough-path hop
//!   length every two iterations (Theorem 2); at most `2⌈log D_H⌉`
//!   iterations (Theorem 4).
//! * **Hop-Stepping** (§5): the composition is restricted to single
//!   edges, growing covered hop length by one per iteration (Lemma 5),
//!   bounding per-iteration candidates by `O(h·|V|·log|V|)`.
//! * **Hybrid** (§5.4): stepping for the first `k` iterations (default
//!   10, as in §8), doubling afterwards — the paper's default `HopDb`.
//! * **Pruning** (§3.3): a candidate `(u → v, d)` is discarded when the
//!   2-hop query over the current index already answers `dist(u, v) ≤ d`
//!   (Theorem 3 shows this keeps queries exact).
//!
//! Entry points:
//! * [`build`] / [`HopDb`] — rank, relabel, build, query (original ids);
//! * [`engine`] — the iterative engines on rank-relabeled graphs, with
//!   per-iteration statistics (growing/pruning factors of Fig. 10);
//! * [`postprune`] — the exhaustive pruning pass (§5.2) that shrinks a
//!   Hop-Doubling index to Hop-Stepping size;
//! * [`external`] — the I/O-efficient construction of §4 on the
//!   `extmem` substrate;
//! * [`sixrules`] — the unminimized 6-rule generator, kept as an
//!   executable witness for Lemmas 3–4.
//!
//! Construction parallelises within each iteration: set
//! [`HopDbConfig::parallelism`] (or `hopdb-cli build --threads`) to
//! shard candidate generation and pruning across scoped worker threads
//! ([`shard`]); the result is bit-identical to the sequential build for
//! every thread count.

pub mod builder;
pub mod config;
pub mod engine;
pub mod external;
pub mod invlist;
pub mod iteration;
pub mod postprune;
pub mod shard;
pub mod sixrules;

#[cfg(test)]
mod examples;

pub use builder::{build, build_prelabeled, HopDb};
pub use config::{HopDbConfig, Strategy};
pub use iteration::{BuildStats, IterationStats, ShardStats};
