//! Per-iteration construction statistics (the data behind Fig. 10 and
//! the iteration counts of Tables 7–8).

use std::time::Duration;

/// What one worker shard contributed to an iteration of the parallel
/// engine: the candidate pool is partitioned by owner vertex, and each
/// shard merges, deduplicates, and prunes its partition independently.
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Shard number (`owner % shards`).
    pub shard: usize,
    /// Deduplicated candidates owned by this shard.
    pub candidates: u64,
    /// Candidates this shard rejected with the pruning test.
    pub pruned: u64,
    /// Wall-clock time of the shard's merge + prune phase.
    pub elapsed: Duration,
}

/// What one iteration of the generate-and-prune loop did.
#[derive(Clone, Debug)]
pub struct IterationStats {
    /// Iteration number in the paper's convention: initialization is
    /// iteration 1, the first generation round is iteration 2.
    pub iteration: u32,
    /// Whether this iteration used stepping (true) or doubling (false).
    pub stepping: bool,
    /// Candidates generated after same-pair deduplication.
    pub candidates: u64,
    /// Candidates rejected by the pruning test.
    pub pruned: u64,
    /// Surviving entries inserted into the index.
    pub inserted: u64,
    /// Total entries in the index after this iteration.
    pub total_entries: u64,
    /// Wall-clock time of the iteration.
    pub elapsed: Duration,
    /// Per-shard breakdown when the iteration ran sharded (empty for
    /// single-threaded rounds and the external engine).
    pub shards: Vec<ShardStats>,
}

impl IterationStats {
    /// Fig. 10's *pruning factor*: pruned candidates / all candidates.
    pub fn pruning_factor(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }

    /// Load imbalance of the sharded round: the largest shard's
    /// candidate count divided by the mean (1.0 = perfectly balanced;
    /// 0.0 when the round was not sharded or saw no candidates).
    pub fn shard_imbalance(&self) -> f64 {
        let total: u64 = self.shards.iter().map(|s| s.candidates).sum();
        if self.shards.is_empty() || total == 0 {
            return 0.0;
        }
        let max = self.shards.iter().map(|s| s.candidates).max().unwrap_or(0);
        max as f64 * self.shards.len() as f64 / total as f64
    }
}

/// Whole-build statistics.
#[derive(Clone, Debug, Default)]
pub struct BuildStats {
    /// Worker threads the build was configured to use (1 = sequential).
    pub threads: usize,
    /// One record per iteration, starting with initialization.
    pub iterations: Vec<IterationStats>,
    /// Entries in the final index (including trivial self-entries).
    pub final_entries: u64,
    /// Entries removed by the optional post-pruning pass.
    pub post_pruned: u64,
    /// Total build time.
    pub elapsed: Duration,
}

impl BuildStats {
    /// Number of iterations in the paper's counting (initialization
    /// included) — comparable to Table 7/8's "number of iterations".
    pub fn num_iterations(&self) -> u32 {
        self.iterations.last().map_or(0, |it| it.iteration)
    }

    /// Fig. 10's *growing factor* per iteration: candidates generated at
    /// iteration `i` divided by entries inserted at iteration `i − 1`.
    /// Returns `(iteration, factor)` pairs for generation rounds.
    pub fn growing_factors(&self) -> Vec<(u32, f64)> {
        self.iterations
            .windows(2)
            .filter(|w| w[0].inserted > 0)
            .map(|w| (w[1].iteration, w[1].candidates as f64 / w[0].inserted as f64))
            .collect()
    }

    /// Peak candidate count over all iterations (the working-set measure
    /// that motivates stepping in §5).
    pub fn peak_candidates(&self) -> u64 {
        self.iterations.iter().map(|it| it.candidates).max().unwrap_or(0)
    }

    /// Sum of all candidates generated — proportional to generation work.
    pub fn total_candidates(&self) -> u64 {
        self.iterations.iter().map(|it| it.candidates).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(iteration: u32, candidates: u64, pruned: u64, inserted: u64) -> IterationStats {
        IterationStats {
            iteration,
            stepping: true,
            candidates,
            pruned,
            inserted,
            total_entries: 0,
            elapsed: Duration::ZERO,
            shards: Vec::new(),
        }
    }

    #[test]
    fn pruning_factor() {
        assert_eq!(iter(2, 100, 25, 75).pruning_factor(), 0.25);
        assert_eq!(iter(2, 0, 0, 0).pruning_factor(), 0.0);
    }

    #[test]
    fn shard_imbalance() {
        let mut it = iter(2, 100, 0, 100);
        assert_eq!(it.shard_imbalance(), 0.0, "unsharded rounds report 0");
        it.shards = vec![
            ShardStats { shard: 0, candidates: 75, ..Default::default() },
            ShardStats { shard: 1, candidates: 25, ..Default::default() },
        ];
        assert_eq!(it.shard_imbalance(), 1.5);
    }

    #[test]
    fn growing_factors_skip_empty_previous() {
        let stats = BuildStats {
            iterations: vec![iter(1, 0, 0, 10), iter(2, 30, 10, 20), iter(3, 40, 40, 0)],
            ..Default::default()
        };
        let gf = stats.growing_factors();
        assert_eq!(gf.len(), 2);
        assert_eq!(gf[0], (2, 3.0));
        assert_eq!(gf[1], (3, 2.0));
        assert_eq!(stats.peak_candidates(), 40);
        assert_eq!(stats.total_candidates(), 70);
        assert_eq!(stats.num_iterations(), 3);
    }
}
