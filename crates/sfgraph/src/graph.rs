//! The [`Graph`] type: CSR adjacency with direction and weight handling.

use crate::csr::Csr;
use crate::{Dist, VertexId};

/// Traversal direction relative to edge orientation.
///
/// For undirected graphs both directions see the same adjacency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow edges `v -> u` (out-neighbours).
    Out,
    /// Follow edges `u -> v` backwards (in-neighbours).
    In,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// A static graph, directed or undirected, optionally weighted.
///
/// Directed graphs keep both the forward and the transposed CSR so that
/// in-neighbourhood scans (needed by the labeling rules and reverse
/// searches) are as cheap as forward scans. Undirected graphs store each
/// edge in both adjacency rows of a single CSR.
#[derive(Clone, Debug)]
pub struct Graph {
    directed: bool,
    out: Csr,
    /// Transposed adjacency; `None` for undirected graphs (use `out`).
    inn: Option<Csr>,
    /// Count of logical edges: directed arcs, or undirected edges (each
    /// stored twice in `out`).
    num_edges: usize,
}

impl Graph {
    pub(crate) fn new(directed: bool, out: Csr, inn: Option<Csr>, num_edges: usize) -> Graph {
        debug_assert_eq!(directed, inn.is_some());
        Graph { directed, out, inn, num_edges }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of logical edges `|E|` (undirected edges counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether edges are directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether edges carry explicit weights (otherwise weight 1).
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.out.is_weighted()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// The adjacency CSR for the given direction.
    #[inline]
    pub fn csr(&self, dir: Direction) -> &Csr {
        match (dir, &self.inn) {
            (Direction::Out, _) | (Direction::In, None) => &self.out,
            (Direction::In, Some(inn)) => inn,
        }
    }

    /// Neighbour ids of `v` in direction `dir`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId, dir: Direction) -> &[VertexId] {
        self.csr(dir).neighbors(v)
    }

    /// `(neighbor, weight)` pairs of `v` in direction `dir`.
    #[inline]
    pub fn edges(
        &self,
        v: VertexId,
        dir: Direction,
    ) -> impl Iterator<Item = (VertexId, Dist)> + '_ {
        self.csr(dir).edges(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v` (equals out-degree for undirected graphs).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.csr(Direction::In).degree(v)
    }

    /// Total degree: `in + out` for directed, plain degree for undirected.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        if self.directed {
            self.out_degree(v) + self.in_degree(v)
        } else {
            self.out_degree(v)
        }
    }

    /// Maximum total degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether the directed edge (or undirected edge) `v -> u` exists.
    pub fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.out.has_edge(v, u)
    }

    /// Weight of edge `v -> u`, if present.
    pub fn edge_weight(&self, v: VertexId, u: VertexId) -> Option<Dist> {
        self.out.edge_weight(v, u)
    }

    /// All logical edges as `(source, target, weight)` triples.
    ///
    /// For undirected graphs each edge is reported once with
    /// `source < target` (self-loops are never stored).
    pub fn edge_list(&self) -> Vec<(VertexId, VertexId, Dist)> {
        let mut edges = Vec::with_capacity(self.num_edges);
        for v in self.vertices() {
            for (t, w) in self.out.edges(v) {
                if self.directed || v < t {
                    edges.push((v, t, w));
                }
            }
        }
        edges
    }

    /// In-memory size of the adjacency structures in bytes, used for the
    /// `|G| (MB)` column of Table 6.
    pub fn size_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inn.as_ref().map_or(0, Csr::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn directed_triangle() -> Graph {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn directed_in_out_neighbors_differ() {
        let g = directed_triangle();
        assert!(g.is_directed());
        assert_eq!(g.neighbors(0, Direction::Out), &[1]);
        assert_eq!(g.neighbors(0, Direction::In), &[2]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn undirected_sees_same_adjacency_both_ways() {
        let mut b = GraphBuilder::new_undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.neighbors(1, Direction::Out), &[0, 2]);
        assert_eq!(g.neighbors(1, Direction::In), &[0, 2]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edge_list_roundtrip_undirected() {
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(2, 0);
        b.add_edge(3, 1);
        let g = b.build();
        let mut el = g.edge_list();
        el.sort_unstable();
        assert_eq!(el, vec![(0, 2, 1), (1, 3, 1)]);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Out.reverse(), Direction::In);
        assert_eq!(Direction::In.reverse(), Direction::Out);
    }
}
