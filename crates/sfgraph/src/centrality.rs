//! Sampled betweenness centrality — the "heuristical method to
//! approximate this ranking" that §7 of the paper suggests for general
//! graphs, where degree ranking fails (road networks have no hubs).
//!
//! Brandes' dependency accumulation from a sample of source vertices,
//! over unit edge lengths (hop counts rank vertices well even on
//! weighted graphs). The scores feed `RankBy::Score`.

use crate::graph::{Direction, Graph};
use crate::{VertexId, INF_DIST};

/// Approximate betweenness scores from `samples` BFS sources
/// (deterministic given `seed`). Returned values are scaled to `u64`
/// for use with [`crate::ranking::RankBy::Score`].
pub fn sampled_betweenness_scores(g: &Graph, samples: usize, seed: u64) -> Vec<u64> {
    let n = g.num_vertices();
    let mut score = vec![0f64; n];
    if n == 0 {
        return Vec::new();
    }
    let samples = samples.clamp(1, n);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut dist = vec![INF_DIST; n];
    let mut sigma = vec![0f64; n];
    let mut delta = vec![0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);

    for _ in 0..samples {
        let s = (next() % n as u64) as VertexId;
        // BFS with path counting.
        dist.iter_mut().for_each(|d| *d = INF_DIST);
        sigma.iter_mut().for_each(|x| *x = 0.0);
        delta.iter_mut().for_each(|x| *x = 0.0);
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut head = 0usize;
        order.push(s);
        while head < order.len() {
            let v = order[head];
            head += 1;
            let dv = dist[v as usize];
            for &u in g.neighbors(v, Direction::Out) {
                if dist[u as usize] == INF_DIST {
                    dist[u as usize] = dv + 1;
                    order.push(u);
                }
                if dist[u as usize] == dv + 1 {
                    sigma[u as usize] += sigma[v as usize];
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        for &v in order.iter().rev() {
            let dv = dist[v as usize];
            for &u in g.neighbors(v, Direction::Out) {
                if dist[u as usize] == dv + 1 && sigma[u as usize] > 0.0 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[u as usize] * (1.0 + delta[u as usize]);
                }
            }
            if v != s {
                score[v as usize] += delta[v as usize];
            }
        }
    }
    // Scale to integers; relative order is all the ranking needs.
    score.into_iter().map(|x| (x * 1e6) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn path_graph_centre_dominates() {
        let mut b = GraphBuilder::new_undirected(7);
        for i in 0..6u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let scores = sampled_betweenness_scores(&g, 7, 3);
        let centre = scores[3];
        assert!(centre > scores[0], "centre must beat the endpoint");
        assert!(centre >= scores[1] && centre >= scores[5]);
    }

    #[test]
    fn star_hub_has_all_betweenness() {
        let mut b = GraphBuilder::new_undirected(9);
        for leaf in 1..9 {
            b.add_edge(0, leaf);
        }
        let g = b.build();
        let scores = sampled_betweenness_scores(&g, 9, 5);
        for leaf in 1..9 {
            assert!(scores[0] > scores[leaf], "hub must dominate leaf {leaf}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut b = GraphBuilder::new_undirected(20);
        for i in 0..19u32 {
            b.add_edge(i, i + 1);
        }
        b.add_edge(0, 10);
        let g = b.build();
        assert_eq!(sampled_betweenness_scores(&g, 5, 9), sampled_betweenness_scores(&g, 5, 9));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new_undirected(0).build();
        assert!(sampled_betweenness_scores(&g, 4, 1).is_empty());
    }
}
