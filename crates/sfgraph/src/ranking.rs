//! Vertex rankings and rank relabeling (Section 2.1 / 3.1 of the paper).
//!
//! The labeling algorithms require a *total* ranking of vertices where
//! higher-ranked vertices are expected to hit more shortest paths. The
//! paper ranks by non-increasing degree for undirected graphs and by the
//! product of in- and out-degree for directed graphs ("due to its better
//! performance", §8). Ties are broken by total degree and then vertex id,
//! making every ranking deterministic.
//!
//! After ranking we *relabel* the graph so that vertex id equals rank
//! position (id 0 = highest rank). Every downstream algorithm then
//! compares ranks with a single integer comparison: `r(u) > r(v)` ⇔
//! `u < v`.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::VertexId;

/// Ranking strategy.
#[derive(Clone, Debug)]
pub enum RankBy {
    /// Non-increasing total degree (paper default for undirected graphs).
    Degree,
    /// Non-increasing `in_degree × out_degree` (paper default for directed
    /// graphs, §8); falls back to [`RankBy::Degree`] semantics on
    /// undirected graphs where in = out.
    DegreeProduct,
    /// A caller-supplied score per vertex, ranked non-increasing.
    Score(Vec<u64>),
    /// Uniformly random permutation from the given seed (ablation baseline
    /// for §7's discussion of general rankings).
    Random(u64),
}

/// A total order on vertices.
///
/// `rank_of[v]` is the rank position of original vertex `v` (0 = highest);
/// `vertex_at[r]` is the original vertex occupying rank `r`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ranking {
    rank_of: Vec<VertexId>,
    vertex_at: Vec<VertexId>,
}

impl Ranking {
    /// Build from an explicit `vertex_at` permutation.
    pub fn from_order(vertex_at: Vec<VertexId>) -> Ranking {
        let mut rank_of = vec![0 as VertexId; vertex_at.len()];
        for (r, &v) in vertex_at.iter().enumerate() {
            rank_of[v as usize] = r as VertexId;
        }
        Ranking { rank_of, vertex_at }
    }

    /// The identity ranking on `n` vertices.
    pub fn identity(n: usize) -> Ranking {
        Ranking::from_order((0..n as VertexId).collect())
    }

    /// Rank position of original vertex `v` (0 = highest rank).
    #[inline]
    pub fn rank_of(&self, v: VertexId) -> VertexId {
        self.rank_of[v as usize]
    }

    /// Original vertex occupying rank position `r`.
    #[inline]
    pub fn vertex_at(&self, r: VertexId) -> VertexId {
        self.vertex_at[r as usize]
    }

    /// Number of ranked vertices.
    pub fn len(&self) -> usize {
        self.vertex_at.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.vertex_at.is_empty()
    }

    /// `true` iff `u` outranks `v` (is more likely to hit shortest paths).
    #[inline]
    pub fn outranks(&self, u: VertexId, v: VertexId) -> bool {
        self.rank_of[u as usize] < self.rank_of[v as usize]
    }

    /// Serialize as a `HOPRANK1` sidecar image: the magic followed by
    /// the `vertex_at` permutation as little-endian `u32`s. This is the
    /// `.rank` file `hopdb-cli build` writes next to every index.
    pub fn to_sidecar_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(8 + 4 * self.vertex_at.len());
        bytes.extend_from_slice(RANK_SIDECAR_MAGIC);
        for &v in &self.vertex_at {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes
    }

    /// Parse a `HOPRANK1` sidecar image, validating magic, that the
    /// order is a true permutation, and (when `expect_n` is given) that
    /// it covers exactly that many vertices — a sidecar that silently
    /// mistranslates ids would corrupt every answer served through it.
    pub fn from_sidecar_bytes(bytes: &[u8], expect_n: Option<usize>) -> Result<Ranking, String> {
        if bytes.len() < 8
            || &bytes[..8] != RANK_SIDECAR_MAGIC
            || !(bytes.len() - 8).is_multiple_of(4)
        {
            return Err("not a HOPRANK1 ranking sidecar".to_string());
        }
        let order: Vec<VertexId> =
            bytes[8..].chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        if let Some(n) = expect_n {
            if order.len() != n {
                return Err(format!(
                    "ranking sidecar covers {} vertices, expected {n}",
                    order.len()
                ));
            }
        }
        let mut seen = vec![false; order.len()];
        for &v in &order {
            if (v as usize) >= order.len() || std::mem::replace(&mut seen[v as usize], true) {
                return Err(format!("ranking sidecar is not a permutation (vertex {v})"));
            }
        }
        Ok(Ranking::from_order(order))
    }
}

/// Magic prefix of the serialized `.rank` sidecar format.
pub const RANK_SIDECAR_MAGIC: &[u8; 8] = b"HOPRANK1";

/// Compute a ranking of `g`'s vertices.
pub fn rank_vertices(g: &Graph, by: &RankBy) -> Ranking {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    match by {
        RankBy::Degree => {
            order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        }
        RankBy::DegreeProduct => {
            order.sort_by_key(|&v| {
                let prod = g.in_degree(v) as u64 * g.out_degree(v) as u64;
                (std::cmp::Reverse(prod), std::cmp::Reverse(g.degree(v)), v)
            });
        }
        RankBy::Score(scores) => {
            assert_eq!(scores.len(), n, "score vector must cover every vertex");
            order.sort_by_key(|&v| (std::cmp::Reverse(scores[v as usize]), v));
        }
        RankBy::Random(seed) => {
            // Fisher–Yates with a splitmix64 stream; no external dependency.
            let mut state = *seed;
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            for i in (1..n).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
    }
    Ranking::from_order(order)
}

/// Relabel `g` so that the new id of each vertex is its rank position.
///
/// Returns the relabeled graph. In the result, `r(u) > r(v)` ⇔ `u < v`,
/// which is the invariant all engines in `hopdb` rely on. Use the
/// [`Ranking`] to translate ids back to the original graph.
pub fn relabel_by_rank(g: &Graph, ranking: &Ranking) -> Graph {
    assert_eq!(ranking.len(), g.num_vertices());
    let n = g.num_vertices();
    let mut b = if g.is_directed() {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    if g.is_weighted() {
        b = b.weighted();
    }
    for (u, v, w) in g.edge_list() {
        b.add_weighted_edge(ranking.rank_of(u), ranking.rank_of(v), w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    /// Star graph: centre 4 with leaves 0..4 (centre deliberately not id 0).
    fn star() -> Graph {
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 0..4 {
            b.add_edge(4, leaf);
        }
        b.build()
    }

    #[test]
    fn degree_ranking_puts_hub_first() {
        let g = star();
        let r = rank_vertices(&g, &RankBy::Degree);
        assert_eq!(r.vertex_at(0), 4, "the hub has the highest rank");
        assert_eq!(r.rank_of(4), 0);
        // Leaves keep id order among themselves (deterministic ties).
        assert_eq!(r.vertex_at(1), 0);
        assert_eq!(r.vertex_at(4), 3);
    }

    #[test]
    fn relabel_moves_hub_to_id_zero() {
        let g = star();
        let r = rank_vertices(&g, &RankBy::Degree);
        let h = relabel_by_rank(&g, &r);
        assert_eq!(h.degree(0), 4);
        assert_eq!(h.neighbors(0, Direction::Out), &[1, 2, 3, 4]);
        for leaf in 1..5 {
            assert_eq!(h.neighbors(leaf, Direction::Out), &[0]);
        }
    }

    #[test]
    fn degree_product_ranking_directed() {
        // 0 has out-degree 2, in-degree 0 (product 0);
        // 1 has in 1 / out 1 (product 1) => vertex 1 outranks vertex 0.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let r = rank_vertices(&g, &RankBy::DegreeProduct);
        assert_eq!(r.vertex_at(0), 1);
        assert!(r.outranks(1, 0));
    }

    #[test]
    fn score_ranking_follows_scores() {
        let g = star();
        let r = rank_vertices(&g, &RankBy::Score(vec![10, 50, 20, 40, 30]));
        assert_eq!(r.vertex_at(0), 1);
        assert_eq!(r.vertex_at(4), 0);
    }

    #[test]
    fn random_ranking_is_a_permutation_and_seed_stable() {
        let g = star();
        let a = rank_vertices(&g, &RankBy::Random(7));
        let b = rank_vertices(&g, &RankBy::Random(7));
        let c = rank_vertices(&g, &RankBy::Random(8));
        assert_eq!(a, b);
        let mut seen: Vec<_> = (0..5).map(|r| a.vertex_at(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Different seeds should (for this size) differ.
        assert!((0..5).any(|r| a.vertex_at(r) != c.vertex_at(r)));
    }

    #[test]
    fn relabel_preserves_distances() {
        use crate::traversal::bfs;
        let g = star();
        let r = rank_vertices(&g, &RankBy::Degree);
        let h = relabel_by_rank(&g, &r);
        let dg = bfs(&g, 0, Direction::Out);
        let dh = bfs(&h, r.rank_of(0), Direction::Out);
        for v in 0..5u32 {
            assert_eq!(dg[v as usize], dh[r.rank_of(v) as usize]);
        }
    }
}
