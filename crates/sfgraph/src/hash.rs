//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The default SipHash in `std` is designed for HashDoS resistance, which
//! none of the in-process index structures here need. This is the FxHash
//! algorithm used by rustc: a single multiply-xor round per word. Keeping a
//! local copy avoids an external dependency (see DESIGN.md §4).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; state is a single `u64`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = HashSet::new();
        for k in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(k);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "no collisions on small dense keys");
    }

    #[test]
    fn byte_stream_matches_word_stream_padding() {
        // write() must consume trailing partial words deterministically.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        for i in 0..1000 {
            assert_eq!(m[&i], i * 2);
        }
    }
}
