//! Scale-free diagnostics used throughout Section 2 of the paper.
//!
//! * degree distribution and the Faloutsos *rank exponent* `γ` (Lemma 1:
//!   `deg_v = r(v)^γ / |V|^γ`, with `γ ∈ [-0.8, -0.7]` for typical real
//!   graphs);
//! * the Newman expansion factor `R = z2/z1` (Equation 2 predicts
//!   `R ≈ log |V|` for scale-free graphs);
//! * hop-diameter estimation `D_H` (Theorem 4 bounds Hop-Doubling
//!   iterations by `2⌈log D_H⌉`);
//! * weak connectivity, to sanity-check generated workloads.

use crate::graph::{Direction, Graph};
use crate::traversal::bfs;
use crate::{VertexId, INF_DIST};

/// Histogram of total degrees: `counts[d]` = number of vertices with
/// degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut counts = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        counts[g.degree(v)] += 1;
    }
    counts
}

/// Least-squares slope of `log(degree)` against `log(rank)` over vertices
/// sorted by non-increasing degree — the Faloutsos rank exponent `γ`.
///
/// Returns `None` for graphs with fewer than two vertices of non-zero
/// degree. Scale-free graphs yield `γ` around `-0.7 … -0.9`.
pub fn rank_exponent(g: &Graph) -> Option<f64> {
    let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
    if degs.len() < 2 {
        return None;
    }
    degs.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> =
        degs.iter().enumerate().map(|(i, &d)| (((i + 1) as f64).ln(), (d as f64).ln())).collect();
    Some(least_squares_slope(&pts))
}

/// Least-squares slope of `log(count)` against `log(degree)` over the
/// degree histogram — the power-law exponent `-α` of
/// `Prob(degree = k) ∝ k^-α`. Scale-free graphs have `α ∈ [2, 3]`.
pub fn power_law_exponent(g: &Graph) -> Option<f64> {
    let hist = degree_histogram(g);
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    Some(-least_squares_slope(&pts))
}

fn least_squares_slope(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Newman expansion factor `R = z2/z1`: the mean number of vertices two
/// hops away divided by the mean one hop away, estimated from
/// `samples` random-ish sources (deterministic stride sampling).
pub fn expansion_factor(g: &Graph, samples: usize) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let samples = samples.clamp(1, n);
    let stride = (n / samples).max(1);
    let (mut z1, mut z2, mut used) = (0usize, 0usize, 0usize);
    for i in 0..samples {
        let src = ((i * stride) % n) as VertexId;
        let dist = bfs(g, src, Direction::Out);
        z1 += dist.iter().filter(|&&d| d == 1).count();
        z2 += dist.iter().filter(|&&d| d == 2).count();
        used += 1;
    }
    if z1 == 0 || used == 0 {
        return 0.0;
    }
    z2 as f64 / z1 as f64
}

/// Estimated hop diameter `D_H`: the maximum number of edges on any
/// shortest path, over `samples` BFS sources plus a double-sweep from the
/// eccentric vertex found (a standard lower-bound heuristic that is exact
/// on trees and very tight on small-world graphs). For graphs with at
/// most `exact_below` vertices, runs BFS from every vertex (exact).
pub fn hop_diameter(g: &Graph, samples: usize, exact_below: usize) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let finite_max =
        |dist: &[u32]| dist.iter().copied().filter(|&d| d != INF_DIST).max().unwrap_or(0);
    if n <= exact_below {
        let mut best = 0;
        for v in g.vertices() {
            best = best.max(finite_max(&bfs(g, v, Direction::Out)));
        }
        return best;
    }
    let samples = samples.clamp(1, n);
    let stride = (n / samples).max(1);
    let mut best = 0;
    let mut eccentric = 0 as VertexId;
    for i in 0..samples {
        let src = ((i * stride) % n) as VertexId;
        let dist = bfs(g, src, Direction::Out);
        let (far, far_d) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != INF_DIST)
            .max_by_key(|&(_, &d)| d)
            .map(|(v, &d)| (v as VertexId, d))
            .unwrap_or((src, 0));
        if far_d > best {
            best = far_d;
            eccentric = far;
        }
    }
    // Double sweep: BFS back from the farthest vertex seen.
    best = best.max(finite_max(&bfs(g, eccentric, Direction::Out)));
    if g.is_directed() {
        best = best.max(finite_max(&bfs(g, eccentric, Direction::In)));
    }
    best
}

/// Number of weakly connected components and the size of the largest.
pub fn weak_components(g: &Graph) -> (usize, usize) {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut largest = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut size = 0;
        comp[start] = count;
        stack.push(start as VertexId);
        while let Some(v) = stack.pop() {
            size += 1;
            for dir in [Direction::Out, Direction::In] {
                for &u in g.neighbors(v, dir) {
                    if comp[u as usize] == usize::MAX {
                        comp[u as usize] = count;
                        stack.push(u);
                    }
                }
                if !g.is_directed() {
                    break;
                }
            }
        }
        largest = largest.max(size);
        count += 1;
    }
    (count, largest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn star(n: usize) -> Graph {
        let mut b = GraphBuilder::new_undirected(n);
        for leaf in 1..n {
            b.add_edge(0, leaf as VertexId);
        }
        b.build()
    }

    #[test]
    fn histogram_star() {
        let h = degree_histogram(&star(5));
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn rank_exponent_is_negative_for_skewed_graphs() {
        // A two-level star-of-stars has a steep rank-degree curve.
        let mut b = GraphBuilder::new_undirected(32);
        for hub in 1..4u32 {
            b.add_edge(0, hub);
            for leaf in 0..9u32 {
                b.add_edge(hub, 4 + (hub - 1) * 9 + leaf);
            }
        }
        let g = b.build();
        let gamma = rank_exponent(&g).unwrap();
        assert!(gamma < -0.1, "expected negative rank exponent, got {gamma}");
    }

    #[test]
    fn expansion_factor_star_reaches_everything_in_two_hops() {
        let g = star(11);
        // From the hub: z1 = 10, z2 = 0. From a leaf: z1 = 1, z2 = 9.
        let r = expansion_factor(&g, 11);
        assert!(r > 0.0 && r < 10.0);
    }

    #[test]
    fn hop_diameter_path_exact_mode() {
        let mut b = GraphBuilder::new_undirected(10);
        for i in 0..9u32 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        assert_eq!(hop_diameter(&g, 4, 100), 9);
    }

    #[test]
    fn hop_diameter_sampled_mode_on_path_is_tight() {
        let n = 300;
        let mut b = GraphBuilder::new_undirected(n);
        for i in 0..n - 1 {
            b.add_edge(i as VertexId, i as VertexId + 1);
        }
        let g = b.build();
        // Double sweep finds the true diameter on paths.
        assert_eq!(hop_diameter(&g, 5, 0), (n - 1) as u32);
    }

    #[test]
    fn components() {
        let mut b = GraphBuilder::new_undirected(6);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let (count, largest) = weak_components(&g);
        assert_eq!(count, 4); // {0,1}, {2,3}, {4}, {5}
        assert_eq!(largest, 2);
    }

    #[test]
    fn directed_weak_components_ignore_orientation() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        let g = b.build();
        let (count, largest) = weak_components(&g);
        assert_eq!(count, 2);
        assert_eq!(largest, 3);
    }
}
