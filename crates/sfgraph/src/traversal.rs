//! Shortest-path primitives: BFS, Dijkstra, and bidirectional variants.
//!
//! These serve three roles: ground truth for tests, the `BIDIJ` baseline of
//! Table 6, and building blocks inside the PLL / IS-Label / highway-cover
//! baselines.

use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::graph::{Direction, Graph};
use crate::{Dist, VertexId, INF_DIST};

/// Single-source BFS distances over unit edge lengths.
///
/// Edge weights are ignored; every edge counts as one hop. Unreached
/// vertices get [`INF_DIST`].
pub fn bfs(g: &Graph, src: VertexId, dir: Direction) -> Vec<Dist> {
    let mut dist = vec![INF_DIST; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v, dir) {
            if dist[u as usize] == INF_DIST {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Single-source Dijkstra distances honouring edge weights.
pub fn dijkstra(g: &Graph, src: VertexId, dir: Direction) -> Vec<Dist> {
    let mut dist = vec![INF_DIST; g.num_vertices()];
    let mut heap: BinaryHeap<std::cmp::Reverse<(Dist, VertexId)>> = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(std::cmp::Reverse((0, src)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in g.edges(v, dir) {
            let nd = d.saturating_add(w);
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(std::cmp::Reverse((nd, u)));
            }
        }
    }
    dist
}

/// Single-source shortest-path distances: BFS when unweighted, Dijkstra
/// when weighted.
pub fn sssp(g: &Graph, src: VertexId, dir: Direction) -> Vec<Dist> {
    if g.is_weighted() {
        dijkstra(g, src, dir)
    } else {
        bfs(g, src, dir)
    }
}

/// Exact point-to-point distance via a single-direction search (reference
/// implementation used by tests; the `BIDIJ` baseline uses the
/// bidirectional versions below).
pub fn st_distance(g: &Graph, s: VertexId, t: VertexId) -> Dist {
    sssp(g, s, Direction::Out)[t as usize]
}

/// Bidirectional BFS for unweighted graphs.
///
/// Alternates expanding whole frontiers from `s` (forward) and `t`
/// (backward), always growing the smaller frontier, and stops once the
/// sum of the two search radii can no longer improve the best meeting
/// distance found so far.
pub fn bidirectional_bfs(g: &Graph, s: VertexId, t: VertexId) -> Dist {
    if s == t {
        return 0;
    }
    let n = g.num_vertices();
    let mut dist_f = vec![INF_DIST; n];
    let mut dist_b = vec![INF_DIST; n];
    dist_f[s as usize] = 0;
    dist_b[t as usize] = 0;
    let mut frontier_f = vec![s];
    let mut frontier_b = vec![t];
    let mut radius_f = 0;
    let mut radius_b = 0;
    let mut best = INF_DIST;

    while !frontier_f.is_empty() && !frontier_b.is_empty() {
        if best <= radius_f + radius_b {
            break;
        }
        // Expand the smaller frontier for fewer edge scans.
        let forward = frontier_f.len() <= frontier_b.len();
        let (frontier, dist_mine, dist_other, dir, radius) = if forward {
            (&mut frontier_f, &mut dist_f, &dist_b, Direction::Out, &mut radius_f)
        } else {
            (&mut frontier_b, &mut dist_b, &dist_f, Direction::In, &mut radius_b)
        };
        let mut next = Vec::new();
        for &v in frontier.iter() {
            let d = dist_mine[v as usize];
            for &u in g.neighbors(v, dir) {
                if dist_mine[u as usize] == INF_DIST {
                    dist_mine[u as usize] = d + 1;
                    if dist_other[u as usize] != INF_DIST {
                        best = best.min(d + 1 + dist_other[u as usize]);
                    }
                    next.push(u);
                }
            }
        }
        *frontier = next;
        *radius += 1;
    }
    best
}

/// Bidirectional Dijkstra for weighted graphs.
///
/// Expands the side with the smaller tentative minimum; terminates when
/// `top_f + top_b ≥ best`, the classic stopping criterion.
pub fn bidirectional_dijkstra(g: &Graph, s: VertexId, t: VertexId) -> Dist {
    if s == t {
        return 0;
    }
    let n = g.num_vertices();
    let mut dist = [vec![INF_DIST; n], vec![INF_DIST; n]];
    let mut heaps: [BinaryHeap<std::cmp::Reverse<(Dist, VertexId)>>; 2] =
        [BinaryHeap::new(), BinaryHeap::new()];
    dist[0][s as usize] = 0;
    dist[1][t as usize] = 0;
    heaps[0].push(std::cmp::Reverse((0, s)));
    heaps[1].push(std::cmp::Reverse((0, t)));
    let dirs = [Direction::Out, Direction::In];
    let mut best = INF_DIST;

    loop {
        let top_f = heaps[0].peek().map(|r| r.0 .0);
        let top_b = heaps[1].peek().map(|r| r.0 .0);
        let (side, top) = match (top_f, top_b) {
            (None, None) => break,
            (Some(f), None) => (0, f),
            (None, Some(b)) => (1, b),
            (Some(f), Some(b)) => {
                if f <= b {
                    (0, f)
                } else {
                    (1, b)
                }
            }
        };
        let other_top = heaps[1 - side].peek().map_or(INF_DIST, |r| r.0 .0);
        if best != INF_DIST && top.saturating_add(other_top) >= best {
            break;
        }
        let std::cmp::Reverse((d, v)) = heaps[side].pop().unwrap();
        if d > dist[side][v as usize] {
            continue;
        }
        if dist[1 - side][v as usize] != INF_DIST {
            best = best.min(d.saturating_add(dist[1 - side][v as usize]));
        }
        for (u, w) in g.edges(v, dirs[side]) {
            let nd = d.saturating_add(w);
            if nd < dist[side][u as usize] {
                dist[side][u as usize] = nd;
                heaps[side].push(std::cmp::Reverse((nd, u)));
            }
        }
    }
    best
}

/// Point-to-point distance by bidirectional search: BFS on unweighted
/// graphs, Dijkstra otherwise. This is the paper's `BIDIJ` baseline.
pub fn bidirectional_distance(g: &Graph, s: VertexId, t: VertexId) -> Dist {
    if g.is_weighted() {
        bidirectional_dijkstra(g, s, t)
    } else {
        bidirectional_bfs(g, s, t)
    }
}

/// Full pairwise distance matrix via repeated SSSP; `n × n` memory —
/// ground truth for small test graphs only.
pub fn all_pairs(g: &Graph) -> Vec<Vec<Dist>> {
    g.vertices().map(|v| sssp(g, v, Direction::Out)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new_undirected(n);
        for i in 0..n - 1 {
            b.add_edge(i as VertexId, i as VertexId + 1);
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs(&g, 0, Direction::Out);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_directed() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        let g = b.build();
        let d = bfs(&g, 0, Direction::Out);
        assert_eq!(d, vec![0, 1, INF_DIST]);
        let dr = bfs(&g, 1, Direction::In);
        assert_eq!(dr, vec![1, 0, INF_DIST]);
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        // 0 -2-> 1 -2-> 2 is cheaper than the direct 0 -9-> 2.
        let mut b = GraphBuilder::new_directed(3).weighted();
        b.add_weighted_edge(0, 1, 2);
        b.add_weighted_edge(1, 2, 2);
        b.add_weighted_edge(0, 2, 9);
        let g = b.build();
        assert_eq!(dijkstra(&g, 0, Direction::Out), vec![0, 2, 4]);
    }

    #[test]
    fn bidirectional_bfs_matches_bfs_on_path() {
        let g = path_graph(9);
        for s in 0..9u32 {
            for t in 0..9u32 {
                assert_eq!(bidirectional_bfs(&g, s, t), s.abs_diff(t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn bidirectional_respects_direction() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(bidirectional_bfs(&g, 0, 2), 2);
        assert_eq!(bidirectional_bfs(&g, 2, 0), INF_DIST);
    }

    #[test]
    fn bidirectional_dijkstra_matches_dijkstra_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(2..30);
            let mut b = GraphBuilder::new_directed(n).weighted();
            for _ in 0..(n * 3) {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                b.add_weighted_edge(u, v, rng.gen_range(1..10));
            }
            let g = b.build();
            let s = rng.gen_range(0..n) as VertexId;
            let truth = dijkstra(&g, s, Direction::Out);
            for t in 0..n as VertexId {
                assert_eq!(bidirectional_dijkstra(&g, s, t), truth[t as usize], "{s}->{t}");
            }
        }
    }

    #[test]
    fn bidirectional_bfs_matches_bfs_random_undirected() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = rng.gen_range(2..40);
            let mut b = GraphBuilder::new_undirected(n);
            for _ in 0..(n * 2) {
                let u = rng.gen_range(0..n) as VertexId;
                let v = rng.gen_range(0..n) as VertexId;
                b.add_edge(u, v);
            }
            let g = b.build();
            let s = rng.gen_range(0..n) as VertexId;
            let truth = bfs(&g, s, Direction::Out);
            for t in 0..n as VertexId {
                assert_eq!(bidirectional_bfs(&g, s, t), truth[t as usize], "{s}->{t}");
            }
        }
    }

    #[test]
    fn all_pairs_small() {
        let g = path_graph(4);
        let ap = all_pairs(&g);
        assert_eq!(ap[0][3], 3);
        assert_eq!(ap[3][0], 3);
        assert_eq!(ap[2][2], 0);
    }
}
