//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, parsing, and serialization.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id ≥ the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        msg: String,
    },
    /// A binary graph file had an invalid header or truncated body.
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex id {vertex} out of range for graph with {n} vertices")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::Format(msg) => write!(f, "invalid graph file: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
