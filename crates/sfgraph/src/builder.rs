//! Incremental graph construction from edge lists.

use crate::csr::Csr;
use crate::graph::Graph;
use crate::{Dist, VertexId};

/// Collects edges and produces a cleaned [`Graph`].
///
/// Cleaning rules, applied at [`build`](GraphBuilder::build) time:
/// * self-loops are dropped (they never lie on a shortest path between
///   distinct vertices);
/// * parallel edges are merged keeping the minimum weight;
/// * undirected edges are normalised to `(min, max)` before deduplication.
pub struct GraphBuilder {
    directed: bool,
    weighted: bool,
    n: usize,
    edges: Vec<(VertexId, VertexId, Dist)>,
}

impl GraphBuilder {
    /// New builder for a directed graph on vertices `0..n`.
    pub fn new_directed(n: usize) -> GraphBuilder {
        GraphBuilder { directed: true, weighted: false, n, edges: Vec::new() }
    }

    /// New builder for an undirected graph on vertices `0..n`.
    pub fn new_undirected(n: usize) -> GraphBuilder {
        GraphBuilder { directed: false, weighted: false, n, edges: Vec::new() }
    }

    /// Declare that edges carry weights; unweighted adds default to 1.
    pub fn weighted(mut self) -> GraphBuilder {
        self.weighted = true;
        self
    }

    /// Number of vertices the graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Grow the vertex set so it covers id `v`.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        self.n = self.n.max(v as usize + 1);
    }

    /// Add an edge of weight 1.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.add_weighted_edge(u, v, 1);
    }

    /// Add an edge with an explicit weight (weights must be ≥ 1; a zero
    /// weight is clamped to 1 so that distances stay strictly positive as
    /// the paper assumes).
    pub fn add_weighted_edge(&mut self, u: VertexId, v: VertexId, w: Dist) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n, "vertex out of range");
        self.edges.push((u, v, w.max(1)));
    }

    /// Number of raw (pre-deduplication) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the (normalised) edge has already been added. O(m) scan —
    /// intended for generators that check membership rarely; generators
    /// needing fast membership keep their own hash set.
    pub fn contains_edge(&self, u: VertexId, v: VertexId) -> bool {
        let key = if self.directed || u <= v { (u, v) } else { (v, u) };
        self.edges.iter().any(|&(a, b, _)| (a, b) == key)
    }

    /// Build without consuming the builder (clones the edge list) —
    /// convenient when deriving several graphs from one edge set.
    pub fn build_clone(&self) -> Graph {
        GraphBuilder {
            directed: self.directed,
            weighted: self.weighted,
            n: self.n,
            edges: self.edges.clone(),
        }
        .build()
    }

    /// Finalise into a [`Graph`].
    pub fn build(mut self) -> Graph {
        // Normalise undirected edges and drop self-loops.
        if self.directed {
            self.edges.retain(|&(u, v, _)| u != v);
        } else {
            for e in &mut self.edges {
                if e.0 > e.1 {
                    std::mem::swap(&mut e.0, &mut e.1);
                }
            }
            self.edges.retain(|&(u, v, _)| u != v);
        }
        // Dedup keeping minimum weight per (u, v).
        self.edges.sort_unstable();
        self.edges.dedup_by(|later, first| {
            // `dedup_by` keeps `first`; the list is sorted so the first
            // duplicate already carries the minimal weight.
            later.0 == first.0 && later.1 == first.1
        });
        let logical = self.edges.len();

        let out_edges: Vec<(VertexId, VertexId, Dist)> = if self.directed {
            self.edges.clone()
        } else {
            // Materialise both directions.
            let mut both = Vec::with_capacity(self.edges.len() * 2);
            for &(u, v, w) in &self.edges {
                both.push((u, v, w));
                both.push((v, u, w));
            }
            both
        };
        let out = Csr::from_edges(self.n, &out_edges, self.weighted);
        let inn = if self.directed { Some(out.transpose()) } else { None };
        Graph::new(self.directed, out, inn, logical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;

    #[test]
    fn removes_self_loops_and_parallel_edges() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0, Direction::Out), &[1]);
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let mut b = GraphBuilder::new_directed(2).weighted();
        b.add_weighted_edge(0, 1, 9);
        b.add_weighted_edge(0, 1, 4);
        b.add_weighted_edge(0, 1, 6);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(4));
    }

    #[test]
    fn undirected_normalisation_dedups_mirrored_edges() {
        let mut b = GraphBuilder::new_undirected(2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0, Direction::Out), &[1]);
        assert_eq!(g.neighbors(1, Direction::Out), &[0]);
    }

    #[test]
    fn zero_weight_clamped_to_one() {
        let mut b = GraphBuilder::new_undirected(2).weighted();
        b.add_weighted_edge(0, 1, 0);
        let g = b.build();
        assert_eq!(g.edge_weight(0, 1), Some(1));
    }

    #[test]
    fn ensure_vertex_grows_graph() {
        let mut b = GraphBuilder::new_undirected(0);
        b.ensure_vertex(5);
        b.add_edge(5, 0);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn contains_edge_respects_orientation() {
        let mut d = GraphBuilder::new_directed(3);
        d.add_edge(0, 1);
        assert!(d.contains_edge(0, 1));
        assert!(!d.contains_edge(1, 0));

        let mut u = GraphBuilder::new_undirected(3);
        u.add_edge(0, 1);
        assert!(u.contains_edge(1, 0));
    }
}
