#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sfgraph — graph substrate for scale-free network indexing
//!
//! This crate provides the graph representation and primitive algorithms
//! that the Hop-Doubling label index (crate `hopdb`) and all baseline
//! oracles are built on:
//!
//! * [`Graph`] — a compressed-sparse-row (CSR) graph, directed or
//!   undirected, optionally weighted, with forward and reverse adjacency.
//! * [`GraphBuilder`] — edge-list ingestion with de-duplication,
//!   self-loop removal, and parallel-edge minimisation.
//! * [`ranking`] — the vertex orderings the paper relies on (degree,
//!   in×out-degree product, random, custom), plus *rank relabeling*:
//!   renaming vertices so that id 0 is the highest-ranked vertex, which
//!   lets every downstream algorithm compare ranks by comparing ids.
//! * [`traversal`] — BFS, Dijkstra, and bidirectional variants used by
//!   ground-truth checks and the `BIDIJ` baseline.
//! * [`analysis`] — scale-free diagnostics: degree distributions, the
//!   Faloutsos rank exponent `γ`, the Newman expansion factor `R = z2/z1`,
//!   and hop-diameter estimation (Section 2 of the paper).
//! * [`io`] — text edge-list and binary graph serialization.
//!
//! Vertices are dense `u32` ids (`VertexId`); distances are `u32` with
//! [`INF_DIST`] marking unreachable pairs.

pub mod analysis;
pub mod builder;
pub mod centrality;
pub mod csr;
pub mod error;
pub mod graph;
pub mod hash;
pub mod io;
pub mod ranking;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::GraphError;
pub use graph::{Direction, Graph};
pub use ranking::{RankBy, Ranking};

/// Dense vertex identifier. Graphs with `n` vertices use ids `0..n`.
pub type VertexId = u32;

/// Edge weight / path distance. Unweighted edges have weight 1.
pub type Dist = u32;

/// Distance value representing "unreachable" (`distG(u,v) = ∞`).
pub const INF_DIST: Dist = u32::MAX;
