//! Graph serialization: SNAP-style text edge lists and a compact binary
//! format.
//!
//! The text format is one `u v [w]` triple per line, `#`-prefixed comment
//! lines ignored — the format of the SNAP / KONECT collections the paper
//! evaluates on. The binary format stores the cleaned CSR directly so big
//! generated workloads can be cached between bench runs.

use std::io::{BufRead, Read, Write};

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::{Dist, VertexId};

/// Parse a text edge list.
///
/// Vertex ids may be sparse; the graph gets `max_id + 1` vertices. If
/// `weighted` is set, a third column is required on every edge line and
/// its value must lie in `1 ..= Dist::MAX` — zero weights would break
/// the strictly-positive-distance assumption the traversal and pruning
/// code relies on, and larger values cannot be represented.
///
/// Edges stream into the builder one line at a time; the parser holds
/// no copy of the edge list of its own.
pub fn read_edge_list<R: BufRead>(
    reader: R,
    directed: bool,
    weighted: bool,
) -> Result<Graph, GraphError> {
    let mut builder =
        if directed { GraphBuilder::new_directed(0) } else { GraphBuilder::new_undirected(0) };
    if weighted {
        builder = builder.weighted();
    }
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                msg: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: lineno + 1, msg: format!("bad {what}: {e}") })
        };
        let u = parse(parts.next(), "source")?;
        let v = parse(parts.next(), "target")?;
        let w = if weighted { parse(parts.next(), "weight")? } else { 1 };
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::VertexOutOfRange { vertex: u.max(v), n: u32::MAX as usize });
        }
        if w == 0 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                msg: "edge weight 0 (weights must be ≥ 1: shortest-path \
                      distances are strictly positive)"
                    .into(),
            });
        }
        if w > Dist::MAX as u64 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                msg: format!("edge weight {w} exceeds the maximum representable {}", Dist::MAX),
            });
        }
        builder.ensure_vertex(u as VertexId);
        builder.ensure_vertex(v as VertexId);
        builder.add_weighted_edge(u as VertexId, v as VertexId, w as Dist);
    }
    Ok(builder.build())
}

/// Write the graph as a text edge list (undirected edges once each).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    for (u, v, w) in g.edge_list() {
        if g.is_weighted() {
            writeln!(writer, "{u} {v} {w}")?;
        } else {
            writeln!(writer, "{u} {v}")?;
        }
    }
    Ok(())
}

const MAGIC: &[u8; 8] = b"SFGRAPH1";

/// Serialize the graph in the binary CSR format.
pub fn write_binary<W: Write>(g: &Graph, mut w: W) -> Result<(), GraphError> {
    w.write_all(MAGIC)?;
    let flags: u8 = (g.is_directed() as u8) | ((g.is_weighted() as u8) << 1);
    w.write_all(&[flags, 0, 0, 0])?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    let csr = g.csr(crate::graph::Direction::Out);
    write_u64s(&mut w, csr.offsets())?;
    write_u32s(&mut w, csr.targets())?;
    if g.is_weighted() {
        write_u32s(&mut w, csr.weights())?;
    }
    Ok(())
}

/// Deserialize a graph written by [`write_binary`].
///
/// Every header field is attacker-controlled (the file may be corrupt
/// or crafted), so all of them are validated before use: counts go
/// through checked arithmetic, the offset directory must be monotone,
/// and every edge target must name a real vertex. A malformed file is
/// a [`GraphError::Format`], never a panic or an absurd allocation.
pub fn read_binary<R: Read>(mut r: R) -> Result<Graph, GraphError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic".into()));
    }
    let mut flags = [0u8; 4];
    r.read_exact(&mut flags)?;
    let [flag_bits, z1, z2, z3] = flags;
    if flag_bits > 3 || [z1, z2, z3] != [0, 0, 0] {
        return Err(GraphError::Format("invalid flags word".into()));
    }
    let directed = flag_bits & 1 != 0;
    let weighted = flag_bits & 2 != 0;
    let n = usize::try_from(read_u64(&mut r)?)
        .map_err(|_| GraphError::Format("vertex count does not fit this platform".into()))?;
    let m = read_u64(&mut r)? as usize;
    let slots = n
        .checked_add(1)
        .ok_or_else(|| GraphError::Format("vertex count overflows the offset table".into()))?;
    let offsets = read_u64s(&mut r, slots)?;
    if offsets.first() != Some(&0) || !offsets.is_sorted() {
        return Err(GraphError::Format("offset table is not monotone from zero".into()));
    }
    let stored_edges = usize::try_from(*offsets.last().unwrap_or(&0))
        .map_err(|_| GraphError::Format("edge count does not fit this platform".into()))?;
    let targets = read_u32s(&mut r, stored_edges)?;
    if targets.iter().any(|&t| t as usize >= n) {
        return Err(GraphError::Format("edge target out of range".into()));
    }
    let weights = if weighted { read_u32s(&mut r, stored_edges)? } else { Vec::new() };
    let out = Csr::from_parts(offsets, targets, weights);
    let inn = if directed { Some(out.transpose()) } else { None };
    Ok(Graph::new(directed, out, inn, m))
}

fn write_u64s<W: Write>(w: &mut W, xs: &[u64]) -> std::io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn write_u32s<W: Write>(w: &mut W, xs: &[u32]) -> std::io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

// Initial capacity for count-prefixed reads. A crafted header can
// declare a count no real file backs, so never allocate the declared
// count up front: cap the initial reservation and let the vector grow
// as bytes actually arrive — a lying header then dies on EOF after at
// most one buffer's worth of work, instead of a capacity-overflow
// panic or a multi-terabyte allocation.
const READ_CHUNK: usize = 1 << 16;

fn read_u64s<R: Read>(r: &mut R, count: usize) -> Result<Vec<u64>, GraphError> {
    let mut out = Vec::with_capacity(count.min(READ_CHUNK));
    for _ in 0..count {
        out.push(read_u64(r)?);
    }
    Ok(out)
}

fn read_u32s<R: Read>(r: &mut R, count: usize) -> Result<Vec<u32>, GraphError> {
    let mut buf = [0u8; 4];
    let mut out = Vec::with_capacity(count.min(READ_CHUNK));
    for _ in 0..count {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Direction;
    use std::io::Cursor;

    #[test]
    fn parse_edge_list_with_comments() {
        let text = "# a comment\n0 1\n1 2\n\n% another\n2 0\n";
        let g = read_edge_list(Cursor::new(text), true, false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn parse_weighted() {
        let text = "0 1 5\n1 2 7\n";
        let g = read_edge_list(Cursor::new(text), false, true).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(1, 0), Some(5));
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(Cursor::new(text), false, false).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_weight_column_is_an_error() {
        let text = "0 1\n";
        assert!(read_edge_list(Cursor::new(text), false, true).is_err());
    }

    #[test]
    fn overflowing_weight_is_an_error_not_a_clamp() {
        // 2^32 + 5 used to load as u32::MAX silently.
        let text = "0 1 2\n1 2 4294967301\n";
        let err = read_edge_list(Cursor::new(text), false, true).unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("4294967301"), "{msg}");
            }
            other => panic!("unexpected error {other}"),
        }
        // The maximum representable weight itself still parses.
        let max = format!("0 1 {}\n", Dist::MAX);
        let g = read_edge_list(Cursor::new(max), false, true).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(Dist::MAX));
    }

    #[test]
    fn zero_weight_is_an_error_in_weighted_mode() {
        let text = "# header\n0 1 3\n2 3 0\n";
        let err = read_edge_list(Cursor::new(text), true, true).unwrap_err();
        match err {
            GraphError::Parse { line, msg } => {
                assert_eq!(line, 3, "error must name the offending line");
                assert!(msg.contains("weight 0"), "{msg}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn large_input_streams_in_one_pass() {
        // A smoke test for the streaming parse: enough edges that a
        // buffered second copy would be noticeable, with sparse ids so
        // ensure_vertex actually drives the vertex count.
        let m = 100_000u32;
        let mut text = String::with_capacity(m as usize * 12);
        for i in 0..m {
            use std::fmt::Write as _;
            let _ = writeln!(text, "{} {}", i % 10_000, (i * 7 + 1) % 10_000);
        }
        let g = read_edge_list(Cursor::new(text), true, false).unwrap();
        assert_eq!(g.num_vertices(), 10_000);
        assert!(g.num_edges() > 9_000, "dedup keeps distinct pairs: {}", g.num_edges());
    }

    #[test]
    fn text_roundtrip() {
        let text = "0 1\n1 2\n0 3\n";
        let g = read_edge_list(Cursor::new(text), false, false).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf), false, false).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
    }

    #[test]
    fn binary_roundtrip_directed_weighted() {
        let text = "0 5 3\n5 2 9\n2 0 1\n";
        let g = read_edge_list(Cursor::new(text), true, true).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(g2.num_vertices(), 6);
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.is_directed() && g2.is_weighted());
        assert_eq!(g2.edge_weight(5, 2), Some(9));
        assert_eq!(g2.neighbors(5, Direction::In), &[0]);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_binary(Cursor::new(b"NOTMAGIC....".to_vec())).is_err());
    }

    /// A crafted 28-byte header: the real magic, the given flags, and
    /// the given vertex/edge counts — no offsets or edges behind them.
    fn crafted_header(flags: u8, n: u64, m: u64) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&[flags, 0, 0, 0]);
        bytes.extend_from_slice(&n.to_le_bytes());
        bytes.extend_from_slice(&m.to_le_bytes());
        bytes
    }

    // Regression: these crafted headers used to panic (`n + 1` add
    // overflow, `Vec::with_capacity` capacity overflow) or attempt a
    // multi-terabyte allocation before reading a single offset byte.
    #[test]
    fn binary_rejects_absurd_vertex_counts_without_panicking() {
        for n in [u64::MAX, u64::MAX - 7, 1 << 61, 1 << 40] {
            let err = read_binary(Cursor::new(crafted_header(3, n, 0)));
            assert!(err.is_err(), "n = {n:#x} must be a clean error");
        }
    }

    #[test]
    fn binary_rejects_bad_flags() {
        assert!(read_binary(Cursor::new(crafted_header(9, 0, 0))).is_err());
        let mut tail_set = crafted_header(1, 0, 0);
        tail_set[9] = 1;
        assert!(read_binary(Cursor::new(tail_set)).is_err());
    }

    // Regression: a non-monotone offset table used to load "fine" and
    // panic later, inside `neighbors`, on the first query that touched
    // the inverted range.
    #[test]
    fn binary_rejects_non_monotone_offsets() {
        let mut bytes = crafted_header(0, 2, 2);
        for off in [0u64, 5, 2] {
            bytes.extend_from_slice(&off.to_le_bytes());
        }
        for t in [0u32, 1] {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
        assert!(read_binary(Cursor::new(bytes)).is_err());
    }

    // Regression: an out-of-range target used to panic inside
    // `transpose` while building the in-CSR of a directed graph.
    #[test]
    fn binary_rejects_out_of_range_targets() {
        let mut bytes = crafted_header(1, 1, 1);
        for off in [0u64, 1] {
            bytes.extend_from_slice(&off.to_le_bytes());
        }
        bytes.extend_from_slice(&7u32.to_le_bytes());
        assert!(read_binary(Cursor::new(bytes)).is_err());
    }

    // A declared edge count far beyond the actual bytes must die on
    // EOF after a bounded reservation, not pre-allocate the claim.
    #[test]
    fn binary_rejects_lying_edge_counts_without_allocating_them() {
        let mut bytes = crafted_header(0, 1, 0);
        for off in [0u64, u64::MAX >> 3] {
            bytes.extend_from_slice(&off.to_le_bytes());
        }
        assert!(read_binary(Cursor::new(bytes)).is_err());
    }
}
