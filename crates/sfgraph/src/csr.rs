//! Compressed sparse row adjacency storage.
//!
//! A [`Csr`] stores, for each vertex, a sorted slice of neighbour ids and
//! (optionally) a parallel slice of edge weights. Unweighted graphs store
//! no weight array at all; every edge then has implicit weight 1.

use crate::{Dist, VertexId};

/// Compressed sparse row adjacency: `offsets[v]..offsets[v+1]` indexes the
/// neighbour (and weight) arrays for vertex `v`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    /// Empty for unweighted graphs (implicit weight 1 per edge).
    weights: Vec<Dist>,
}

impl Csr {
    /// Build a CSR from per-edge `(source, target, weight)` triples.
    ///
    /// `edges` must already be deduplicated; they do not need to be sorted.
    /// If `weighted` is false the weight component is ignored and not stored.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId, Dist)], weighted: bool) -> Csr {
        let mut offsets = vec![0u64; n + 1];
        for &(s, _, _) in edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut weights = if weighted { vec![0 as Dist; edges.len()] } else { Vec::new() };
        let mut cursor = offsets.clone();
        for &(s, t, w) in edges {
            let pos = cursor[s as usize] as usize;
            targets[pos] = t;
            if weighted {
                weights[pos] = w;
            }
            cursor[s as usize] += 1;
        }
        // Sort each adjacency list by target id for deterministic iteration
        // and binary-searchable neighbourhoods.
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            if weighted {
                let mut pairs: Vec<(VertexId, Dist)> =
                    targets[lo..hi].iter().copied().zip(weights[lo..hi].iter().copied()).collect();
                pairs.sort_unstable();
                for (i, (t, w)) in pairs.into_iter().enumerate() {
                    targets[lo + i] = t;
                    weights[lo + i] = w;
                }
            } else {
                targets[lo..hi].sort_unstable();
            }
        }
        Csr { offsets, targets, weights }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether a weight array is stored.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Out-degree of `v` in this adjacency.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbour ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.targets[lo..hi]
    }

    /// Iterate `(neighbor, weight)` pairs of `v`; weight is 1 when unweighted.
    #[inline]
    pub fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Dist)> + '_ {
        let (lo, hi) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        let targets = &self.targets[lo..hi];
        let weights: &[Dist] = if self.weights.is_empty() { &[] } else { &self.weights[lo..hi] };
        targets
            .iter()
            .enumerate()
            .map(move |(i, &t)| (t, if weights.is_empty() { 1 } else { weights[i] }))
    }

    /// Whether an edge `v -> u` exists (binary search).
    pub fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.neighbors(v).binary_search(&u).is_ok()
    }

    /// Weight of the edge `v -> u`, if present.
    pub fn edge_weight(&self, v: VertexId, u: VertexId) -> Option<Dist> {
        let idx = self.neighbors(v).binary_search(&u).ok()?;
        let lo = self.offsets[v as usize] as usize;
        Some(if self.weights.is_empty() { 1 } else { self.weights[lo + idx] })
    }

    /// Raw offset array (`n + 1` entries), for serialization.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array, for serialization.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw weight array (empty when unweighted), for serialization.
    pub fn weights(&self) -> &[Dist] {
        &self.weights
    }

    /// Reassemble from raw parts (inverse of the accessors above).
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<VertexId>, weights: Vec<Dist>) -> Csr {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, targets.len());
        debug_assert!(weights.is_empty() || weights.len() == targets.len());
        Csr { offsets, targets, weights }
    }

    /// Reverse every edge, producing the transposed adjacency.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut edges = Vec::with_capacity(self.num_edges());
        for v in 0..n as VertexId {
            for (t, w) in self.edges(v) {
                edges.push((t, v, w));
            }
        }
        Csr::from_edges(n, &edges, self.is_weighted())
    }

    /// Heap bytes used by the adjacency arrays (graph-size reporting).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Dist>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0, 3 isolated
        Csr::from_edges(4, &[(0, 2, 5), (0, 1, 3), (1, 2, 1), (2, 0, 7)], true)
    }

    #[test]
    fn degrees_and_neighbors_sorted() {
        let c = sample();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 4);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.degree(3), 0);
        assert!(c.neighbors(3).is_empty());
    }

    #[test]
    fn weights_follow_targets_through_sorting() {
        let c = sample();
        let e: Vec<_> = c.edges(0).collect();
        assert_eq!(e, vec![(1, 3), (2, 5)]);
        assert_eq!(c.edge_weight(0, 2), Some(5));
        assert_eq!(c.edge_weight(0, 3), None);
    }

    #[test]
    fn unweighted_edges_have_weight_one() {
        let c = Csr::from_edges(3, &[(0, 1, 99), (1, 2, 99)], false);
        assert!(!c.is_weighted());
        assert_eq!(c.edges(0).collect::<Vec<_>>(), vec![(1, 1)]);
        assert_eq!(c.edge_weight(1, 2), Some(1));
    }

    #[test]
    fn transpose_reverses_edges() {
        let c = sample();
        let t = c.transpose();
        assert_eq!(t.num_edges(), 4);
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 0));
        assert!(t.has_edge(2, 1));
        assert!(t.has_edge(0, 2));
        assert_eq!(t.edge_weight(2, 0), Some(5));
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), c);
    }

    #[test]
    fn empty_graph() {
        let c = Csr::from_edges(0, &[], false);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
    }
}
