//! Update-path weight validation, end to end on both wire fronts.
//!
//! `sfgraph::io` refuses zero edge weights at parse time; the live
//! update path must enforce the same rule. A batch carrying a zero
//! weight is nacked with a *recoverable* error — no panic, no silent
//! clamp-to-1, no partial application — on the binary `HOPQ` front
//! (both serving backends) and on `POST /update`, and the connection
//! (HOPQ) / the daemon (HTTP) keeps serving afterwards.

use std::io::ErrorKind;
use std::path::PathBuf;

use hopdb::{build_prelabeled, HopDbConfig};
use hopdb_server::{serve, Backend, Client, ServerConfig, ServerHandle};
use hoplabels::disk::DiskIndex;
use sfgraph::builder::GraphBuilder;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::VertexId;

const N: usize = 40;

struct Fixture {
    dir: PathBuf,
    index_path: PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn fixture(tag: &str) -> Fixture {
    let dir = std::env::temp_dir().join(format!("hopdb-valid-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("fixture dir");

    // A weighted ring: every vertex reachable, no shortcuts, so an
    // accepted update visibly changes a distance and a nacked one
    // visibly does not.
    let mut b = GraphBuilder::new_undirected(N).weighted();
    for v in 0..N as VertexId {
        b.add_weighted_edge(v, (v + 1) % N as VertexId, 2);
    }
    let g = b.build();
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = extmem::device::TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, tag).expect("serialize").persist();
    let index_path = dir.join("ring.idx");
    std::fs::copy(&staged, &index_path).expect("stage index");
    std::fs::remove_file(staged).ok();
    Fixture { dir, index_path }
}

fn daemon(fx: &Fixture, backend: Backend) -> ServerHandle {
    let config = ServerConfig { backend, threads: 2, ..ServerConfig::default() };
    serve("127.0.0.1:0", &fx.index_path, config).expect("serve")
}

fn assert_hopq_nacks_zero_weight(backend: Backend, tag: &str) {
    let fx = fixture(tag);
    let handle = daemon(&fx, backend);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let before = client.query_one(0, 3).expect("baseline");

    // Pure zero-weight batch, and a mixed batch hiding the zero in the
    // middle: both must nack without applying anything.
    for batch in [vec![(0, 3, 0)], vec![(5, 6, 1), (0, 3, 0), (7, 8, 1)]] {
        let err = client.update(&batch).expect_err("zero weight must nack");
        assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("weight 0"), "{err}");
        assert!(err.to_string().contains("(0, 3)"), "name the offender: {err}");
    }

    // Recoverable: the same connection still answers queries and the
    // nacked batches left no trace — neither the zero edge nor the
    // valid edges that shared a frame with it.
    assert_eq!(client.query_one(0, 3).expect("alive after nack"), before);
    let info = client.info().expect("info");
    assert_eq!(info.overlay_edges, 0, "a nacked batch must apply nothing");

    // A clean batch on the same connection still works.
    client.update(&[(0, 3, 1)]).expect("valid update after nacks");
    assert_eq!(client.query_one(0, 3).expect("updated"), 1);

    handle.shutdown();
}

#[test]
fn hopq_zero_weight_is_nacked_threads_backend() {
    assert_hopq_nacks_zero_weight(Backend::Threads, "hopq-threads");
}

#[cfg(target_os = "linux")]
#[test]
fn hopq_zero_weight_is_nacked_epoll_backend() {
    assert_hopq_nacks_zero_weight(Backend::Epoll, "hopq-epoll");
}

#[cfg(target_os = "linux")]
#[test]
fn http_zero_weight_is_nacked() {
    use std::io::{Read as _, Write as _};

    let fx = fixture("http");
    let handle = daemon(&fx, Backend::Epoll);
    let addr = handle.local_addr();

    let http = |request: String| -> String {
        let mut sock = std::net::TcpStream::connect(addr).expect("http connect");
        sock.write_all(request.as_bytes()).expect("http write");
        let mut reply = String::new();
        sock.read_to_string(&mut reply).expect("http read");
        reply
    };
    let post_update = |body: &str| -> String {
        http(format!(
            "POST /update HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ))
    };

    let get_dist = || http("GET /query?s=0&t=3 HTTP/1.1\r\nConnection: close\r\n\r\n".to_string());
    let baseline = get_dist();
    assert!(baseline.starts_with("HTTP/1.1 200"), "{baseline}");
    let baseline_dist = baseline.split("\"dist\":").nth(1).expect("dist field").to_string();

    let reply = post_update(r#"{"edges":[[0,3,0]]}"#);
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("weight 0"), "{reply}");
    // Mixed batch: the valid edge must not slip through around the nack.
    let reply = post_update(r#"{"edges":[[5,6,1],[0,3,0]]}"#);
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

    // The daemon keeps serving: untouched distance, empty overlay, and
    // a clean update still lands.
    let reply = get_dist();
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.ends_with(&baseline_dist), "nacked batch changed an answer: {reply}");
    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(client.info().expect("info").overlay_edges, 0);
    let reply = post_update(r#"{"edges":[[0,3,1]]}"#);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let reply = http("GET /query?s=0&t=3 HTTP/1.1\r\nConnection: close\r\n\r\n".to_string());
    assert!(reply.contains("\"dist\":1"), "{reply}");

    handle.shutdown();
}
