//! Property tests for the `HOPQ` wire codec: encode/decode round-trips
//! over arbitrary request/response batches, plus a malformed-frame
//! corpus (truncated header, oversized declared length, bad
//! magic/version, zero-pair batch, mutated bytes) that must always
//! yield clean protocol errors — never a panic and never a frame the
//! decoder silently misreads.

use std::io::Cursor;

use hopdb_server::proto::{
    read_request, read_response, InfoReply, ProtoError, Request, RequestBody, Response,
    ResponseBody, RouteReply, StatsReply, HEADER_LEN, MAX_PAYLOAD, VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: an arbitrary request of any kind (v1 and v2 kinds alike).
fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0u64..u64::MAX,
        0u8..8,
        vec((0u32..u32::MAX, 0u32..u32::MAX), 1..300),
        vec((0u32..u32::MAX, 0u32..u32::MAX, 0u32..u32::MAX), 1..300),
    )
        .prop_map(|(id, kind, pairs, edges)| {
            let body = match kind {
                0 => RequestBody::Query(pairs),
                1 => RequestBody::Swap,
                2 => RequestBody::Stats,
                3 => RequestBody::Shutdown,
                4 => RequestBody::Update(edges),
                5 => RequestBody::Info,
                6 => RequestBody::Compact,
                _ => RequestBody::RouteInfo,
            };
            Request { id, body }
        })
}

/// Strategy: an arbitrary response of any kind (v1 and v2 kinds alike).
fn response_strategy() -> impl Strategy<Value = Response> {
    (0u64..u64::MAX, 0u8..9, vec(0u32..=u32::MAX, 0..300), 0u64..1 << 40, 0u64..1 << 32).prop_map(
        |(id, kind, dists, a, b)| {
            let body = match kind {
                0 => ResponseBody::Distances(dists),
                1 => ResponseBody::Swapped { generation: a, vertices: b },
                2 => ResponseBody::Stats(StatsReply {
                    generation: a,
                    vertices: b,
                    directed: a % 2 == 0,
                    resident: b % 2 == 0,
                    requests: a ^ b,
                    protocol_errors: a.wrapping_mul(b),
                }),
                3 => ResponseBody::Bye,
                4 => ResponseBody::Updated { generation: a, overlay_edges: b },
                5 => ResponseBody::Info(InfoReply {
                    protocol: (a % 250) as u8,
                    generation: a,
                    vertices: b,
                    directed: a % 2 == 1,
                    resident: b % 2 == 0,
                    resident_bytes: a ^ b,
                    overlay_edges: b >> 1,
                    overlay_affected: a >> 3,
                    compactions: a % 17,
                    requests: b % 1009,
                    protocol_errors: a % 13,
                    durability: (b % 4) as u8,
                    wal_epoch: a % 97,
                    wal_records: b % 4093,
                    wal_bytes: a % (1 << 30),
                    recovered_records: b % 211,
                    recovered_dropped_bytes: a % 4096,
                    checkpoints: b % 31,
                    aborted_compactions: a % 7,
                }),
                6 => ResponseBody::Compacted { generation: a, vertices: b },
                7 => ResponseBody::RouteInfo(RouteReply {
                    mode: (a % 3) as u8,
                    vertices: b,
                    directed: a % 2 == 0,
                    generation: a >> 5,
                    shard_lo: (a % (1 << 32)) as u32,
                    shard_hi: (b % (1 << 32)) as u32,
                    shard_index: (a % 7) as u32,
                    shard_count: (b % 11) as u32,
                    rank_pruned: b % 2 == 1,
                }),
                _ => ResponseBody::Error(format!("error {a}")),
            };
            Response { id, body }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let bytes = req.encode();
        let got = read_request(&mut Cursor::new(&bytes), usize::MAX).expect("roundtrip");
        prop_assert_eq!(got, req);
    }

    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let bytes = resp.encode();
        let got = read_response(&mut Cursor::new(&bytes)).expect("roundtrip");
        prop_assert_eq!(got, resp);
    }

    #[test]
    fn truncated_request_frames_never_panic(
        (req, keep_millionths) in (request_strategy(), 0u32..1_000_000)
    ) {
        let bytes = req.encode();
        let keep = (bytes.len() as u64 * keep_millionths as u64 / 1_000_000) as usize;
        match read_request(&mut Cursor::new(&bytes[..keep]), usize::MAX) {
            Ok(_) => prop_assert_eq!(keep, bytes.len(), "decoded from a strict prefix"),
            Err(ProtoError::Closed) => prop_assert_eq!(keep, 0),
            Err(ProtoError::Fatal(_)) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }

    #[test]
    fn single_byte_corruption_never_panics_or_misparses_silently(
        (req, at_millionths, xor) in (request_strategy(), 0u32..1_000_000, 1u8..=255)
    ) {
        let mut bytes = req.encode();
        let at = (bytes.len() as u64 * at_millionths as u64 / 1_000_000) as usize % bytes.len();
        bytes[at] ^= xor;
        // Any outcome is acceptable except a panic — a flipped byte in
        // the id or pair region still decodes, by design — but a
        // corrupted *header* must never decode as a different frame
        // that re-encodes like the original.
        if let Ok(got) = read_request(&mut Cursor::new(&bytes), usize::MAX) {
            prop_assert!(at >= 4, "corrupt magic byte {at} still decoded");
            if at == 4 {
                // The version byte can flip between the two accepted
                // protocol versions; frame identity is unchanged.
                prop_assert_eq!(got, req);
            } else {
                prop_assert_ne!(got.encode(), req.encode());
            }
        }
    }
}

#[test]
fn truncated_header_every_cut_is_fatal() {
    let frame = Request { id: 3, body: RequestBody::Query(vec![(1, 2)]) }.encode();
    for cut in 1..frame.len() {
        match read_request(&mut Cursor::new(&frame[..cut]), 1 << 16) {
            Err(ProtoError::Fatal(_)) => {}
            other => panic!("cut at {cut}: want Fatal, got {other:?}"),
        }
    }
    assert!(matches!(read_request(&mut Cursor::new(&[]), 16), Err(ProtoError::Closed)));
}

#[test]
fn oversized_declared_length_is_fatal_without_allocation() {
    // Header declaring MAX_PAYLOAD + 1 bytes, with no payload behind
    // it: must fail on the declared length, not on the missing bytes
    // (and must not try to allocate the declared amount).
    let mut frame = Vec::new();
    frame.extend_from_slice(b"HOPQ");
    frame.push(VERSION);
    frame.push(1); // query
    frame.extend_from_slice(&7u64.to_le_bytes());
    frame.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    match read_request(&mut Cursor::new(&frame), 1 << 16) {
        Err(ProtoError::Fatal(msg)) => assert!(msg.contains("cap"), "{msg}"),
        other => panic!("want Fatal, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_version_are_fatal() {
    let good = Request { id: 9, body: RequestBody::Stats }.encode();
    for at in 0..4 {
        let mut bad = good.clone();
        bad[at] ^= 0x20;
        assert!(
            matches!(read_request(&mut Cursor::new(&bad), 16), Err(ProtoError::Fatal(_))),
            "magic byte {at}"
        );
    }
    let mut wrong_version = good.clone();
    wrong_version[4] = VERSION + 1;
    match read_request(&mut Cursor::new(&wrong_version), 16) {
        Err(ProtoError::Fatal(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("want Fatal, got {other:?}"),
    }
}

#[test]
fn payload_level_violations_are_recoverable_with_id() {
    // Zero-pair batch.
    let zero = Request { id: 42, body: RequestBody::Query(vec![]) }.encode();
    match read_request(&mut Cursor::new(&zero), 16) {
        Err(ProtoError::Bad { id: 42, msg }) => assert!(msg.contains("zero"), "{msg}"),
        other => panic!("want Bad, got {other:?}"),
    }

    // Batch larger than the server's limit.
    let big = Request { id: 7, body: RequestBody::Query(vec![(0, 0); 17]) }.encode();
    match read_request(&mut Cursor::new(&big), 16) {
        Err(ProtoError::Bad { id: 7, msg }) => assert!(msg.contains("limit"), "{msg}"),
        other => panic!("want Bad, got {other:?}"),
    }

    // Pair count disagreeing with the payload length.
    let mut mismatch = Request { id: 8, body: RequestBody::Query(vec![(1, 2), (3, 4)]) }.encode();
    mismatch[HEADER_LEN] = 3; // claims 3 pairs, carries 2
    match read_request(&mut Cursor::new(&mismatch), 16) {
        Err(ProtoError::Bad { id: 8, msg }) => assert!(msg.contains("pairs need"), "{msg}"),
        other => panic!("want Bad, got {other:?}"),
    }

    // Unknown request kind (with an empty, fully consumed payload).
    let mut unknown = Request { id: 9, body: RequestBody::Stats }.encode();
    unknown[5] = 99;
    match read_request(&mut Cursor::new(&unknown), 16) {
        Err(ProtoError::Bad { id: 9, msg }) => assert!(msg.contains("unknown"), "{msg}"),
        other => panic!("want Bad, got {other:?}"),
    }

    // Non-empty payload on an empty-bodied kind.
    let mut stuffed = Request { id: 10, body: RequestBody::Query(vec![(1, 2)]) }.encode();
    stuffed[5] = 2; // swap, but with the query payload still attached
    match read_request(&mut Cursor::new(&stuffed), 16) {
        Err(ProtoError::Bad { id: 10, msg }) => assert!(msg.contains("no payload"), "{msg}"),
        other => panic!("want Bad, got {other:?}"),
    }
}

#[test]
fn recoverable_errors_leave_the_stream_aligned() {
    // A zero-pair batch followed by a valid request on the same stream:
    // after the Bad error, the next read must decode the valid frame.
    let mut stream = Vec::new();
    stream.extend_from_slice(&Request { id: 1, body: RequestBody::Query(vec![]) }.encode());
    let good = Request { id: 2, body: RequestBody::Query(vec![(5, 6)]) };
    stream.extend_from_slice(&good.encode());
    let mut cursor = Cursor::new(&stream);
    assert!(matches!(read_request(&mut cursor, 16), Err(ProtoError::Bad { id: 1, .. })));
    assert_eq!(read_request(&mut cursor, 16).unwrap(), good);
}
