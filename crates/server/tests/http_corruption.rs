//! Corruption corpus for the HTTP/1.1 front, mirroring the WAL's
//! `wal_corruption.rs`: `decode_http` consumes bytes straight off a
//! socket, so it must *never* panic — not on truncations, not on bit
//! flips, not on arbitrary garbage — and whenever it does accept a
//! request it must account for a sane number of consumed bytes.

use hopdb_server::http::{decode_http, looks_like_http, HttpDecoded, HttpRequest, MAX_HEAD};
use proptest::collection::vec;
use proptest::prelude::*;

/// The reference requests every sweep mutates: each endpoint, both
/// with and without a body, plus header variations the parser handles
/// (connection tokens, case-insensitive names, unknown headers).
fn corpus() -> Vec<Vec<u8>> {
    let pairs_body = r#"{"pairs":[[1,2],[30,40],[5,5]]}"#;
    let edges_body = r#"{"edges":[[1,2,3],[9,8,70]]}"#;
    vec![
        b"GET /query?s=3&t=9 HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
        b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
        format!(
            "POST /query_many HTTP/1.1\r\nContent-Length: {}\r\n\r\n{pairs_body}",
            pairs_body.len()
        )
        .into_bytes(),
        format!(
            "POST /update HTTP/1.1\r\ncontent-length: {}\r\nX-Junk: ignored\r\n\r\n{edges_body}",
            edges_body.len()
        )
        .into_bytes(),
        b"GET /query?s=0&t=0 HTTP/1.0\r\n\r\n".to_vec(),
    ]
}

/// Decode and sanity-check the one invariant every outcome shares:
/// an accepted request consumes a positive number of bytes within the
/// buffer. (Reaching the return at all is the no-panic property.)
fn decode_checked(buf: &[u8]) -> HttpDecoded {
    let decoded = decode_http(buf);
    if let HttpDecoded::Request { used, .. } = decoded {
        assert!(used > 0 && used <= buf.len(), "used={used} of {} bytes", buf.len());
    }
    decoded
}

#[test]
fn corpus_requests_decode_completely() {
    for raw in corpus() {
        match decode_checked(&raw) {
            HttpDecoded::Request { used, .. } => assert_eq!(used, raw.len()),
            other => panic!("corpus request must decode, got {other:?}"),
        }
    }
}

#[test]
fn every_single_byte_truncation_is_handled() {
    for raw in corpus() {
        for cut in 0..raw.len() {
            // A truncated request is incomplete (more bytes may still
            // arrive) or, once the head is whole but the query/body is
            // damaged, an error response — never a panic and never a
            // request that claims bytes beyond the buffer.
            match decode_checked(&raw[..cut]) {
                HttpDecoded::Incomplete | HttpDecoded::Error(_) => {}
                HttpDecoded::Request { used, .. } => {
                    panic!("truncation at {cut} decoded a request using {used} bytes")
                }
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_handled() {
    for raw in corpus() {
        for at in 0..raw.len() {
            for bit in 0..8 {
                let mut mutated = raw.clone();
                mutated[at] ^= 1 << bit;
                // Any outcome is legal — flips in header values or
                // JSON digits can still parse — but it must return.
                let _ = decode_checked(&mutated);
                let _ = looks_like_http(&mutated);
            }
        }
    }
}

#[test]
fn oversized_head_without_terminator_is_rejected_not_buffered_forever() {
    let mut raw = b"GET /query?s=1&t=2 HTTP/1.1\r\n".to_vec();
    raw.extend(std::iter::repeat_n(b'a', MAX_HEAD + 1));
    match decode_checked(&raw) {
        HttpDecoded::Error(resp) => {
            let text = String::from_utf8_lossy(&resp);
            assert!(text.starts_with("HTTP/1.1 431"), "got: {text}");
        }
        other => panic!("unterminated oversized head must be an error, got {other:?}"),
    }
}

#[test]
fn hostile_content_lengths_never_over_read() {
    for hostile in ["18446744073709551616", "999999999999", "1048577", "-3", "0x10", ""] {
        let raw = format!("POST /query_many HTTP/1.1\r\nContent-Length: {hostile}\r\n\r\n");
        match decode_checked(raw.as_bytes()) {
            HttpDecoded::Error(_) => {}
            other => panic!("Content-Length {hostile:?} must be rejected, got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure fuzz: arbitrary bytes through the full decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(0u8..=255, 0..600)) {
        let _ = decode_checked(&bytes);
        let _ = looks_like_http(&bytes);
    }

    /// Structured fuzz: an HTTP-shaped prefix with arbitrary tail, so
    /// the head/body split and JSON scanners actually get exercised
    /// instead of dying at the request line.
    #[test]
    fn http_shaped_garbage_never_panics(
        (prefix, tail) in (0usize..5, vec(0u8..=255, 0..256))
    ) {
        let mut raw = corpus()[prefix].clone();
        let keep = raw.len().saturating_sub(tail.len() % raw.len().max(1));
        raw.truncate(keep);
        raw.extend_from_slice(&tail);
        let _ = decode_checked(&raw);
    }

    /// Splice arbitrary bytes into the middle of valid requests.
    #[test]
    fn spliced_corruption_never_panics(
        (which, at_seed, patch) in (0usize..5, 0u16..=u16::MAX, vec(0u8..=255, 1..16))
    ) {
        let mut raw = corpus()[which].clone();
        let at = at_seed as usize % raw.len();
        let end = (at + patch.len()).min(raw.len());
        raw[at..end].copy_from_slice(&patch[..end - at]);
        let _ = decode_checked(&raw);
    }
}

/// The decoder must keep rejecting what it rejects: a mutated request
/// that still decodes must be a *valid* request, never a mangled one
/// silently reinterpreted past its buffer.
#[test]
fn accepted_mutants_are_internally_consistent() {
    let raw = corpus().remove(2); // POST /query_many
    for at in 0..raw.len() {
        let mut mutated = raw.clone();
        mutated[at] = mutated[at].wrapping_add(1);
        if let HttpDecoded::Request { request, used, .. } = decode_checked(&mutated) {
            assert!(used <= mutated.len());
            match request {
                HttpRequest::QueryMany(pairs) => assert!(!pairs.is_empty()),
                HttpRequest::Update(edges) => assert!(!edges.is_empty()),
                HttpRequest::QueryOne { .. } | HttpRequest::Stats => {}
            }
        }
    }
}
