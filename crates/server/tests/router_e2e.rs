//! End-to-end router tests: a real listener fronting real backend
//! daemons, asserting the scale-out answer paths are *byte-identical*
//! to a single daemon over the unsharded index — replica and shard
//! modes, directed and undirected, under a concurrent rolling swap —
//! and that killing one of two replicas mid-fire loses zero accepted
//! queries.
//!
//! Backends serve images without a `.rank` sidecar, so the wire speaks
//! rank-space ids and the oracle is `FlatIndex::query_many` on the
//! source image directly.

#![cfg(target_os = "linux")]

use std::io::ErrorKind;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hopdb::{build_prelabeled, HopDbConfig};
use hopdb_server::{
    serve, serve_router, Client, RouteMode, RouterConfig, RouterHandle, ServerConfig, ServerHandle,
};
use hoplabels::disk::DiskIndex;
use hoplabels::flat::FlatIndex;
use hoplabels::shard_image;
use sfgraph::builder::GraphBuilder;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::{Dist, VertexId};

const N: usize = 120;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 16
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A connected scale-free-ish graph: a ring for connectivity plus
/// random weighted chords, deterministic in `seed`.
fn test_graph(directed: bool, seed: u64) -> sfgraph::Graph {
    let mut rng = Lcg(seed | 1);
    let mut b =
        if directed { GraphBuilder::new_directed(N) } else { GraphBuilder::new_undirected(N) }
            .weighted();
    for v in 0..N as VertexId {
        b.add_weighted_edge(v, (v + 1) % N as VertexId, 1 + rng.below(3) as Dist);
    }
    for _ in 0..3 * N {
        let (s, t) = (rng.below(N as u64) as VertexId, rng.below(N as u64) as VertexId);
        if s != t {
            b.add_weighted_edge(s, t, 1 + rng.below(4) as Dist);
        }
    }
    b.build()
}

struct Fixture {
    dir: PathBuf,
    image: Vec<u8>,
    flat: FlatIndex,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn fixture(tag: &str, directed: bool) -> Fixture {
    let dir = std::env::temp_dir().join(format!("hopdb-router-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("fixture dir");

    let g = test_graph(directed, 0xD15C0);
    let rank_by = if directed { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(&g, &rank_by);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, _) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let store = extmem::device::TempStore::new().expect("temp store");
    let staged = DiskIndex::create(&index, &store, tag).expect("serialize").persist();
    let image = std::fs::read(&staged).expect("read image");
    std::fs::remove_file(staged).ok();
    let flat = FlatIndex::from_hopidx_bytes(&image).expect("flat");
    Fixture { dir, image, flat }
}

impl Fixture {
    /// Stage the whole image at `name` and boot a backend over it.
    fn backend(&self, name: &str) -> ServerHandle {
        let path = self.dir.join(name);
        std::fs::write(&path, &self.image).expect("stage image");
        serve("127.0.0.1:0", &path, ServerConfig::default()).expect("backend")
    }

    /// Split into `k` shard images (with `.shard` sidecars) and boot a
    /// stock daemon over each.
    fn shard_backends(&self, k: usize) -> Vec<ServerHandle> {
        shard_image(&self.image, k)
            .expect("shard")
            .into_iter()
            .map(|(image, spec)| {
                let path = self.dir.join(format!("shard{}.idx", spec.index));
                std::fs::write(&path, &image).expect("stage shard");
                std::fs::write(format!("{}.shard", path.to_string_lossy()), spec.encode())
                    .expect("stage sidecar");
                serve("127.0.0.1:0", &path, ServerConfig::default()).expect("shard backend")
            })
            .collect()
    }

    /// Deterministic probe pairs: self pairs, neighbours, far pairs.
    fn probes(&self) -> Vec<(VertexId, VertexId)> {
        let mut pairs = Vec::with_capacity(3 * N);
        for i in 0..N as VertexId {
            pairs.push((i, i));
            pairs.push((i, (i * 37 + 11) % N as VertexId));
            pairs.push(((i * 53 + 7) % N as VertexId, i));
        }
        pairs
    }

    fn oracle(&self, pairs: &[(VertexId, VertexId)]) -> Vec<Dist> {
        self.flat.query_many(pairs, 1)
    }
}

fn router(mode: RouteMode, backends: Vec<SocketAddr>) -> RouterHandle {
    let config = RouterConfig {
        mode,
        backends,
        flush_us: 20,
        connect_timeout: Duration::from_secs(10),
        ..RouterConfig::default()
    };
    serve_router("127.0.0.1:0", config).expect("router")
}

/// The shared shape of the identity checks: boot backends, front them
/// with a router, and assert routed answers equal the single-node
/// oracle while each backend is rolling-swapped under fire.
fn assert_routed_identical(mode: RouteMode, directed: bool, tag: &str) {
    let fx = fixture(tag, directed);
    let backends: Vec<ServerHandle> = match mode {
        RouteMode::Replica => vec![fx.backend("a.idx"), fx.backend("b.idx")],
        RouteMode::Shard => fx.shard_backends(2),
    };
    let backend_addrs: Vec<SocketAddr> = backends.iter().map(|b| b.local_addr()).collect();
    let rt = router(mode, backend_addrs.clone());

    let pairs = fx.probes();
    let expect = fx.oracle(&pairs);

    // Plain identity first, whole batch and split batches.
    let mut client = Client::connect(rt.local_addr()).expect("client");
    assert_eq!(client.query(&pairs).expect("routed batch"), expect, "{tag}: routed batch");
    for (i, chunk) in pairs.chunks(7).enumerate() {
        let at = i * 7;
        let got = client.query(chunk).expect("routed chunk");
        assert_eq!(got, expect[at..at + chunk.len()], "{tag}: chunk {i}");
    }

    // The route_info a client sees at the router names the mode.
    let route = client.route_info().expect("route_info");
    let want_mode = match mode {
        RouteMode::Replica => hopdb_server::proto::ROUTE_REPLICA,
        RouteMode::Shard => hopdb_server::proto::ROUTE_SHARD,
    };
    assert_eq!(route.mode, want_mode);
    assert_eq!(route.vertices, N as u64);
    assert_eq!(route.directed, directed);

    // Rolling swap: promote each backend in turn (no swap path = the
    // boot image reloads, bumping the generation without changing
    // answers) while a fleet keeps firing through the router. Every
    // answer across the promotions must stay byte-identical.
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let fleet: Vec<_> = (0..3)
            .map(|c| {
                let (stop, pairs, expect) = (&stop, &pairs, &expect);
                let addr = rt.local_addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("fleet connect");
                    let mut at = (c * 41) % pairs.len();
                    let mut answered = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let end = (at + 16).min(pairs.len());
                        let got = client.query(&pairs[at..end]).expect("query under swap");
                        assert_eq!(got, expect[at..end], "answer changed under rolling swap");
                        answered += end - at;
                        at = if end == pairs.len() { 0 } else { end };
                    }
                    answered
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(30));
        for addr in &backend_addrs {
            let mut admin = Client::connect(addr).expect("admin connect");
            let (generation, _) = admin.swap().expect("rolling swap");
            assert!(generation >= 2, "swap did not bump the generation");
            std::thread::sleep(Duration::from_millis(30));
        }
        std::thread::sleep(Duration::from_millis(30));
        stop.store(true, Ordering::Relaxed);
        let answered: usize = fleet.into_iter().map(|h| h.join().expect("fleet")).sum();
        assert!(answered > 0, "the fleet never got a query through");
    });

    drop(client);
    rt.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn replica_router_is_byte_identical_undirected() {
    assert_routed_identical(RouteMode::Replica, false, "rep-u");
}

#[test]
fn replica_router_is_byte_identical_directed() {
    assert_routed_identical(RouteMode::Replica, true, "rep-d");
}

#[test]
fn shard_router_is_byte_identical_undirected() {
    assert_routed_identical(RouteMode::Shard, false, "shard-u");
}

#[test]
fn shard_router_is_byte_identical_directed() {
    assert_routed_identical(RouteMode::Shard, true, "shard-d");
}

#[test]
fn killing_one_replica_loses_no_accepted_queries() {
    let fx = fixture("kill", false);
    let a = fx.backend("a.idx");
    let b = fx.backend("b.idx");
    let rt = router(RouteMode::Replica, vec![a.local_addr(), b.local_addr()]);

    let pairs = fx.probes();
    let expect = fx.oracle(&pairs);
    let mut client = Client::connect(rt.local_addr()).expect("client");

    // Warm both backend connections, then kill one mid-fire. Every
    // accepted query must still answer, correctly — the router owes the
    // client an answer for everything it has taken, kill or no kill.
    let mut killed = Some(b);
    for round in 0..300 {
        let at = (round * 13) % (pairs.len() - 16);
        let got = client.query(&pairs[at..at + 16]).expect("query across the kill");
        assert_eq!(got, expect[at..at + 16], "round {round}");
        if round == 40 {
            killed.take().expect("one kill").shutdown();
        }
    }
    assert!(rt.failovers() > 0, "the dead replica was never picked — the kill proved nothing");

    // Updates refuse to silently diverge the fleet: with one replica
    // dead the router applies where it can and *reports* the partial
    // failure instead of acking a half-applied batch.
    let err = client.update(&[(0, 64, 1)]).expect_err("update must report the dead replica");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("failed on"), "{err}");
    // Queries keep flowing after the refused update.
    assert_eq!(client.query(&pairs[..16]).expect("query after"), expect[..16]);

    rt.shutdown();
    a.shutdown();
}

#[test]
fn replica_router_fans_updates_and_nacks_bad_weights() {
    let fx = fixture("upd", false);
    let a = fx.backend("a.idx");
    let b = fx.backend("b.idx");
    let rt = router(RouteMode::Replica, vec![a.local_addr(), b.local_addr()]);
    let mut client = Client::connect(rt.local_addr()).expect("client");

    // Pick a pair that is far apart, then insert a direct edge through
    // the router. Every subsequent query must see it no matter which
    // replica answers — fire enough rounds to hit both.
    let (s, t) = (3, 71);
    let before = client.query_one(s, t).expect("before");
    assert!(before > 1, "probe pair is already adjacent; pick another");
    client.update(&[(s, t, 1)]).expect("routed update");
    for round in 0..24 {
        assert_eq!(client.query_one(s, t).expect("after"), 1, "round {round}");
    }

    // A zero-weight edge is nacked as a *recoverable* error: the batch
    // applies nowhere (no replica divergence), the connection lives on.
    let err = client.update(&[(1, 2, 1), (4, 5, 0)]).expect_err("zero weight must nack");
    assert_eq!(err.kind(), ErrorKind::InvalidData, "{err}");
    assert!(err.to_string().contains("weight 0"), "{err}");
    let after = client.query_one(1, 2).expect("connection survives the nack");
    // The batch was atomic: the valid half must not have applied on
    // either replica (the pre-update distance still serves everywhere).
    let unrouted = fx.oracle(&[(1, 2)])[0];
    for _ in 0..24 {
        assert_eq!(client.query_one(1, 2).expect("atomic nack"), unrouted);
    }
    assert_eq!(after, unrouted);

    // Admin verbs that must not silently fan out are refused, politely.
    let swap = client.swap().expect_err("swap is not routed");
    assert_eq!(swap.kind(), ErrorKind::InvalidData);
    assert!(swap.to_string().contains("rolling swap"), "{swap}");

    rt.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn shard_router_refuses_updates_and_swaps() {
    let fx = fixture("shard-adm", false);
    let backends = fx.shard_backends(2);
    let rt = router(RouteMode::Shard, backends.iter().map(|b| b.local_addr()).collect());
    let mut client = Client::connect(rt.local_addr()).expect("client");

    let err = client.update(&[(0, 1, 1)]).expect_err("shard updates are refused");
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("re-shard"), "{err}");
    let err = client.swap().expect_err("swap is not routed");
    assert_eq!(err.kind(), ErrorKind::InvalidData);

    // The refusals are recoverable: queries still flow afterwards.
    let pairs = fx.probes();
    assert_eq!(client.query(&pairs[..32]).expect("query after nacks"), fx.oracle(&pairs[..32]));

    rt.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn router_serves_the_http_front() {
    use std::io::{Read as _, Write as _};

    let fx = fixture("http", false);
    let a = fx.backend("a.idx");
    let b = fx.backend("b.idx");
    let rt = router(RouteMode::Replica, vec![a.local_addr(), b.local_addr()]);

    let http = |request: String| -> String {
        let mut sock = std::net::TcpStream::connect(rt.local_addr()).expect("http connect");
        sock.write_all(request.as_bytes()).expect("http write");
        let mut reply = String::new();
        sock.read_to_string(&mut reply).expect("http read");
        reply
    };

    let expect = fx.oracle(&[(0, 9)])[0];
    let reply = http("GET /query?s=0&t=9 HTTP/1.1\r\nConnection: close\r\n\r\n".to_string());
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains(&format!("\"dist\":{expect}")), "{reply}");

    // The HTTP update path validates weights at the router too.
    let body = r#"{"edges":[[0,9,0]]}"#;
    let reply = http(format!(
        "POST /update HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    ));
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("weight 0"), "{reply}");

    rt.shutdown();
    a.shutdown();
    b.shutdown();
}
