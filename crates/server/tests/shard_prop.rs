//! Property tests for pivot-range sharding (`hoplabels::shard`): over
//! arbitrary generated label indexes and shard counts,
//!
//! * the shard ranges tile `[0, n)` exactly — every pivot (and so
//!   every label entry) is owned by exactly one shard;
//! * every shard is a complete, loadable `HOPIDX01` image over the
//!   full vertex set;
//! * min-merging the per-shard `FlatIndex::query_many` answers equals
//!   `FlatIndex::query_many` on the unsharded image, pair for pair.

use hoplabels::flat::FlatIndex;
use hoplabels::{min_merge, shard_image, LabelEntry, LabelIndex};
use proptest::collection::vec;
use proptest::prelude::*;
use sfgraph::{VertexId, INF_DIST};

/// Serialize an index the same way the CLI stages it on disk.
fn image_of(index: &LabelIndex) -> Vec<u8> {
    let store = extmem::device::TempStore::new().expect("temp store");
    let disk = hoplabels::disk::DiskIndex::create(index, &store, "shard-prop").expect("serialize");
    let path = disk.persist();
    let bytes = std::fs::read(&path).expect("read image");
    std::fs::remove_file(path).ok();
    bytes
}

/// Strategy: an arbitrary small undirected label index. Entries are
/// raw `(vertex, pivot, dist)` triples — including ones that break the
/// rank convention (`pivot > vertex`), which sharding must still
/// handle exactly (it just loses the pruning flag).
fn undirected_index_strategy() -> impl Strategy<Value = LabelIndex> {
    (2usize..24).prop_flat_map(|n| {
        vec((0..n, 0..n, 1u32..50), 0..96).prop_map(move |entries| {
            let mut index = LabelIndex::new_undirected(n);
            if let LabelIndex::Undirected(u) = &mut index {
                for (v, pivot, d) in entries {
                    u.labels[v].insert_min(LabelEntry::new(pivot as VertexId, d));
                }
            }
            index
        })
    })
}

/// Strategy: an arbitrary small directed label index (independent
/// in/out label sets).
fn directed_index_strategy() -> impl Strategy<Value = LabelIndex> {
    (2usize..24).prop_flat_map(|n| {
        (vec((0..n, 0..n, 1u32..50), 0..64), vec((0..n, 0..n, 1u32..50), 0..64)).prop_map(
            move |(outs, ins)| {
                let mut index = LabelIndex::new_directed(n);
                if let LabelIndex::Directed(d) = &mut index {
                    for (v, pivot, dist) in outs {
                        d.out_labels[v].insert_min(LabelEntry::new(pivot as VertexId, dist));
                    }
                    for (v, pivot, dist) in ins {
                        d.in_labels[v].insert_min(LabelEntry::new(pivot as VertexId, dist));
                    }
                }
                index
            },
        )
    })
}

/// The property itself, shared by both directions.
fn check_partition_and_merge(index: &LabelIndex, k: usize) {
    let bytes = image_of(index);
    let whole = FlatIndex::from_hopidx_bytes(&bytes).expect("load unsharded");
    let n = whole.num_vertices();

    let shards = shard_image(&bytes, k).expect("shard");
    assert_eq!(shards.len(), k);

    // Ranges tile [0, n): start at 0, end at n, and each shard begins
    // where the previous one ended — so every pivot has exactly one
    // owner, which is what makes the merge exact.
    assert_eq!(shards[0].1.lo, 0);
    assert_eq!(shards[k - 1].1.hi as usize, n);
    for w in shards.windows(2) {
        assert_eq!(w[0].1.hi, w[1].1.lo, "ranges must tile with no gap or overlap");
    }
    for (i, (_, spec)) in shards.iter().enumerate() {
        assert_eq!(spec.index as usize, i);
        assert_eq!(spec.count as usize, k);
    }

    // Exhaustive pair sweep: min-merged shard answers == unsharded.
    let pairs: Vec<(VertexId, VertexId)> =
        (0..n as VertexId).flat_map(|s| (0..n as VertexId).map(move |t| (s, t))).collect();
    let expect = whole.query_many(&pairs, 1);
    let mut merged = vec![INF_DIST; pairs.len()];
    for (image, _) in &shards {
        let flat = FlatIndex::from_hopidx_bytes(image).expect("load shard");
        assert_eq!(flat.num_vertices(), n, "shards keep the full vertex set");
        assert_eq!(flat.is_directed(), whole.is_directed());
        min_merge(&mut merged, &flat.query_many(&pairs, 1));
    }
    assert_eq!(merged, expect, "min-merged shard answers diverge (k = {k})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn undirected_shards_partition_and_merge_exactly(
        (index, k) in (undirected_index_strategy(), 1usize..6)
    ) {
        check_partition_and_merge(&index, k);
    }

    #[test]
    fn directed_shards_partition_and_merge_exactly(
        (index, k) in (directed_index_strategy(), 1usize..6)
    ) {
        check_partition_and_merge(&index, k);
    }
}
