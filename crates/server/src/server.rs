//! The TCP daemon: accept loop, connection worker pool, dispatch, and
//! hot index swap.
//!
//! Architecture (all `std`, no async runtime):
//!
//! ```text
//! accept thread ──► mpsc queue ──► N connection workers
//!                                    │  read_request → dispatch → write response
//!                                    ▼
//!                        RwLock<Arc<Generation>>  ◄── swap (admin frame
//!                        (clone per request)           or ServerHandle::swap)
//! ```
//!
//! Each query request clones the current [`Generation`] `Arc` once and
//! answers the whole batch from it via `FlatIndex::query_many`, so a
//! concurrent swap never mixes two indexes inside one response and
//! never drops a connection: the new generation is loaded *outside* the
//! write lock and promoted with a single pointer swap.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use crate::backend::Generation;
use crate::proto::{
    read_request, InfoReply, ProtoError, Request, RequestBody, Response, ResponseBody, RouteReply,
    StatsReply, DEFAULT_MAX_BATCH, DURABILITY_DISABLED, ROUTE_SINGLE,
};
use crate::wal::{self, Durability, Manifest, Wal};
use extmem::stats::IoStats;

/// Which serving backend answers connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Blocking thread-per-connection worker pool: one worker owns a
    /// connection for its whole life, requests are answered in order.
    Threads,
    /// Readiness-driven epoll reactor (Linux only): nonblocking
    /// sockets, pipelined out-of-order responses, adaptive
    /// micro-batching across connections, and the HTTP/JSON front.
    Epoll,
}

impl Default for Backend {
    fn default() -> Backend {
        if cfg!(target_os = "linux") {
            Backend::Epoll
        } else {
            Backend::Threads
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        match s {
            "threads" => Ok(Backend::Threads),
            "epoll" => Ok(Backend::Epoll),
            other => Err(format!("unknown backend '{other}' (want threads or epoll)")),
        }
    }
}

/// Tunables for [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Serving backend (defaults to [`Backend::Epoll`] on Linux).
    pub backend: Backend,
    /// Connection worker threads (0 = one per core). Threads backend
    /// only; the epoll backend runs one reactor and one executor.
    pub threads: usize,
    /// Threads `query_many` may fan one batch across (0 = all cores).
    /// Leave at 1 when many concurrent connections already saturate the
    /// cores; raise it for few-connection, huge-batch workloads.
    pub batch_threads: usize,
    /// Pairs accepted per query request; larger batches are rejected
    /// with a protocol error. (Per-frame allocation is bounded by the
    /// protocol's [`crate::proto::MAX_PAYLOAD`] cap, not by this knob —
    /// a declared length over the cap closes the connection before any
    /// allocation.)
    pub max_batch: usize,
    /// Admission budget: index files larger than this are served from
    /// disk through the LRU-cached fallback instead of resident memory.
    /// `None` = always resident.
    pub max_resident_bytes: Option<u64>,
    /// File promoted by a swap request. `None` = re-load the boot path
    /// (in-place rebuild promotion).
    pub swap_path: Option<PathBuf>,
    /// Honour remote shutdown frames. Off by default: a query port
    /// should not double as a kill switch unless explicitly enabled.
    pub allow_shutdown: bool,
    /// Epoll backend: longest a queued query waits (µs) for company
    /// before its micro-batch flushes anyway.
    pub flush_us: u64,
    /// Epoll backend: queued pair count that flushes a micro-batch
    /// immediately, without waiting out `flush_us`.
    pub coalesce_pairs: usize,
    /// Epoll backend: unanswered query frames per connection before the
    /// server stops *reading* that connection (pipelining backpressure).
    pub max_inflight: usize,
    /// Epoll backend: evict connections idle longer than this many
    /// milliseconds (0 = never).
    pub idle_timeout_ms: u64,
    /// Source edge list of the boot index, in original vertex ids.
    /// Required for compaction: the compactor re-reads it, applies the
    /// accumulated update log, and rebuilds a frozen index from
    /// scratch. `None` disables compaction (updates still work, the
    /// overlay just grows until a swap).
    pub source_graph: Option<PathBuf>,
    /// Deduplicated overlay edges that trigger a background compaction
    /// (0 = only explicit `compact` requests). Overlay query cost grows
    /// linearly — and snapshot rebuild cost cubically — with the
    /// affected-vertex count, so the default keeps update batches in
    /// the low-millisecond range.
    pub compact_threshold: usize,
    /// Durability directory: every accepted update batch is logged to a
    /// write-ahead log here before it is acknowledged, checkpoints land
    /// here, and startup replays whatever a previous process left
    /// behind. `None` = updates live only in memory (pre-durability
    /// behavior).
    pub wal_dir: Option<PathBuf>,
    /// When the WAL fsyncs relative to the ack (ignored without
    /// `wal_dir`). The default trades a ~2 ms loss window on *power
    /// failure* (a mere process crash loses nothing) for group-commit
    /// throughput; `always` closes the window per batch.
    pub durability: Durability,
    /// WAL size (bytes) that triggers a background compaction even when
    /// the overlay is under `compact_threshold` — the checkpoint is the
    /// WAL's truncation point, so without this knob a long ingest run
    /// of small, non-improving batches grows the log (and the next
    /// boot's replay) without bound. Requires `source_graph`, like any
    /// compaction. `None` = only the overlay threshold compacts.
    pub wal_max_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            backend: Backend::default(),
            threads: 0,
            batch_threads: 1,
            max_batch: DEFAULT_MAX_BATCH,
            max_resident_bytes: None,
            swap_path: None,
            allow_shutdown: false,
            flush_us: 100,
            coalesce_pairs: 4096,
            max_inflight: 128,
            idle_timeout_ms: 0,
            source_graph: None,
            compact_threshold: 256,
            wal_dir: None,
            durability: Durability::Batch,
            wal_max_bytes: None,
        }
    }
}

/// Mutable durability state: the live WAL handle plus the directory it
/// (and the checkpoint artifacts) live in. Locked *after* `update_log`
/// in the `mutate_serial → update_log → durable → current` order shared
/// by updates, swaps, and checkpoint promotions.
struct DurableState {
    dir: PathBuf,
    wal: Wal,
    stats: Arc<IoStats>,
}

/// State shared by the accept thread, workers, and the handle.
struct Shared {
    current: RwLock<Arc<Generation>>,
    config: ServerConfig,
    index_path: PathBuf,
    local_addr: SocketAddr,
    stop: AtomicBool,
    /// Serializes mutations of the serving pointer — swaps, update
    /// batches, and compaction promotions (queries are never blocked by
    /// this; they only take the brief `current` read lock).
    mutate_serial: Mutex<()>,
    /// Edge insertions (original ids) accepted since the frozen index
    /// was built — replayed into every overlay rebuild, consumed by
    /// compaction, discarded by a swap.
    update_log: Mutex<Vec<(u32, u32, u32)>>,
    /// Bumped by every swap so an in-flight compaction can detect that
    /// its build no longer describes the serving index and abort.
    swap_epoch: AtomicU64,
    /// Channel into the compactor thread (`None` once stopping).
    compact_tx: Mutex<Option<mpsc::Sender<CompactMsg>>>,
    compactions: AtomicU64,
    /// Durability state; `None` when the server runs without a WAL.
    durable: Option<Mutex<DurableState>>,
    /// Mirrors of the WAL's epoch/size so `info`/`/stats` never touch
    /// the durable lock from the read path.
    wal_epoch: AtomicU64,
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    /// Boot-recovery outcome (constant after `serve` returns).
    recovered_records: AtomicU64,
    recovered_dropped_bytes: AtomicU64,
    checkpoints: AtomicU64,
    aborted_compactions: AtomicU64,
    generation_seq: AtomicU64,
    conn_seq: AtomicU64,
    /// Live connections (cloned handles) so shutdown can unblock
    /// workers parked in `read`.
    conns: Mutex<HashMap<u64, TcpStream>>,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    /// Epoll backend wiring, set once by `serve_epoll` so `begin_stop`
    /// (and the in-process swap) can reach the reactor and batcher.
    #[cfg(target_os = "linux")]
    epoll_ctl: std::sync::OnceLock<epoll_backend::EpollCtl>,
}

impl Shared {
    /// Flip the stop flag and wake whichever backend is serving so it
    /// can drain and exit. Idempotent.
    fn begin_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Stop the compactor; dropping the sender ends its recv loop
        // even if the Stop message races a queued threshold poke.
        if let Ok(mut tx) = self.compact_tx.lock() {
            if let Some(tx) = tx.take() {
                let _ = tx.send(CompactMsg::Stop);
            }
        }
        #[cfg(target_os = "linux")]
        if let Some(ctl) = self.epoll_ctl.get() {
            // The reactor observes the flag, stops accepting/reading,
            // flushes what is owed, and exits; the batcher drains.
            ctl.batcher.stop();
            ctl.wake.wake();
            return;
        }
        // Threads backend: close every live connection to unpark
        // workers blocked in `read`...
        if let Ok(conns) = self.conns.lock() {
            for conn in conns.values() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // ...and unblock `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server. Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::shutdown`] (or let a remote shutdown frame stop
/// it) and then [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Generation number of the index currently being served.
    pub fn current_generation(&self) -> u64 {
        self.shared.current.read().map(|g| g.generation()).unwrap_or(0)
    }

    /// Promote the configured swap path (or re-load the boot path) to
    /// the serving index *from this process* — the in-process analogue
    /// of the wire swap frame, for supervisors that rebuild and promote
    /// without a client connection. Returns `(generation, vertices)`.
    pub fn swap(&self) -> std::io::Result<(u64, u64)> {
        let fresh = do_swap(&self.shared)?;
        Ok((fresh.generation(), fresh.vertices() as u64))
    }

    /// Ask the daemon to stop and wait for every thread to exit.
    pub fn shutdown(mut self) {
        self.shared.begin_stop();
        self.join_all();
    }

    /// Block until the daemon stops (remote shutdown frame or
    /// [`ServerHandle::shutdown`] from another thread via a clone of
    /// the shared state — in practice: until a shutdown frame arrives).
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Bind `addr`, load the index at `index_path`, and start serving.
///
/// Returns as soon as the listener is bound and the index is loaded;
/// accepting and answering happens on background threads owned by the
/// returned handle.
pub fn serve(
    addr: impl ToSocketAddrs,
    index_path: &Path,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let recovery = recover_durable(index_path, &config)?;
    let mut boot = Generation::load(&recovery.boot_path, config.max_resident_bytes, 1)?;
    if !recovery.log.is_empty() {
        // Replay the WAL into the overlay: the recovered daemon answers
        // exactly like the crashed one did after its last ack.
        boot = boot.with_updates(&recovery.log).map_err(std::io::Error::other)?;
    }
    let backend = config.backend;
    let (compact_tx, compact_rx) = mpsc::channel::<CompactMsg>();
    let shared = Arc::new(Shared {
        current: RwLock::new(Arc::new(boot)),
        config,
        index_path: index_path.to_path_buf(),
        local_addr,
        stop: AtomicBool::new(false),
        mutate_serial: Mutex::new(()),
        update_log: Mutex::new(recovery.log),
        swap_epoch: AtomicU64::new(0),
        compact_tx: Mutex::new(Some(compact_tx)),
        compactions: AtomicU64::new(0),
        wal_epoch: AtomicU64::new(recovery.epoch),
        wal_records: AtomicU64::new(recovery.wal_records),
        wal_bytes: AtomicU64::new(recovery.wal_bytes),
        recovered_records: AtomicU64::new(recovery.recovered_records),
        recovered_dropped_bytes: AtomicU64::new(recovery.recovered_dropped_bytes),
        checkpoints: AtomicU64::new(0),
        aborted_compactions: AtomicU64::new(0),
        durable: recovery.durable.map(Mutex::new),
        generation_seq: AtomicU64::new(1),
        conn_seq: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
        #[cfg(target_os = "linux")]
        epoll_ctl: std::sync::OnceLock::new(),
    });
    let mut handle = match backend {
        Backend::Threads => serve_threads(listener, shared)?,
        #[cfg(target_os = "linux")]
        Backend::Epoll => epoll_backend::serve_epoll(listener, shared)?,
        #[cfg(not(target_os = "linux"))]
        Backend::Epoll => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "the epoll backend requires Linux; use Backend::Threads",
            ))
        }
    };
    let compactor = {
        let shared = Arc::clone(&handle.shared);
        std::thread::spawn(move || compactor_loop(&shared, &compact_rx))
    };
    handle.workers.push(compactor);
    Ok(handle)
}

/// What boot recovery reconstructed from the WAL directory.
struct Recovery {
    /// Index image to boot from: the manifest's checkpoint when one
    /// exists, otherwise the path handed to [`serve`].
    boot_path: PathBuf,
    /// Replayed acknowledged updates, flattened in append order — the
    /// initial `update_log`.
    log: Vec<(u32, u32, u32)>,
    durable: Option<DurableState>,
    epoch: u64,
    wal_records: u64,
    wal_bytes: u64,
    recovered_records: u64,
    recovered_dropped_bytes: u64,
}

/// Open (or create) the durability directory and bring the WAL lineage
/// to a clean, appendable state: read `CURRENT`, walk the epoch's log
/// tolerating a torn tail, validate the header epoch, truncate the
/// tear, and garbage-collect files from dead epochs (failed checkpoint
/// or swap attempts).
fn recover_durable(index_path: &Path, config: &ServerConfig) -> std::io::Result<Recovery> {
    let no_wal = Recovery {
        boot_path: index_path.to_path_buf(),
        log: Vec::new(),
        durable: None,
        epoch: 0,
        wal_records: 0,
        wal_bytes: 0,
        recovered_records: 0,
        recovered_dropped_bytes: 0,
    };
    let Some(dir) = config.wal_dir.as_deref() else {
        return Ok(no_wal);
    };
    std::fs::create_dir_all(dir)?;
    let stats = IoStats::shared();
    let (epoch, boot_path) = match wal::read_manifest(dir)? {
        Some(m) => {
            if !m.index_path.exists() {
                return Err(std::io::Error::other(format!(
                    "{}/CURRENT points at missing checkpoint image {}",
                    dir.display(),
                    m.index_path.display()
                )));
            }
            (m.epoch, m.index_path)
        }
        None => (0, index_path.to_path_buf()),
    };
    let wal_path = dir.join(wal::wal_file_name(epoch));
    let replay = wal::read_wal(&wal_path, Arc::clone(&stats))?;
    let (live, batches, recovered_records, recovered_dropped_bytes) = match replay.epoch {
        // Missing log (first boot, or a crash immediately after the
        // manifest flip deleted nothing yet) or an unreadable header:
        // start the epoch's log fresh. Header-less garbage counts as
        // dropped bytes so operators can see it happened.
        None => {
            let dropped = replay.dropped_bytes;
            let live = Wal::create(&wal_path, epoch, config.durability, Arc::clone(&stats))?;
            (live, Vec::new(), 0, dropped)
        }
        Some(e) if e != epoch => {
            return Err(std::io::Error::other(format!(
                "{} carries epoch {e} but CURRENT says {epoch} — \
                 the durability directory mixes files from different lineages",
                wal_path.display()
            )));
        }
        Some(_) => {
            let live =
                Wal::open_after_replay(&wal_path, &replay, config.durability, Arc::clone(&stats))?;
            let n = replay.batches.len() as u64;
            (live, replay.batches, n, replay.dropped_bytes)
        }
    };
    wal::gc_dir(dir, epoch);
    // Flatten by draining: `concat` would briefly hold the batch list
    // AND the flat copy, doubling peak replay memory on a big log.
    let mut log = Vec::with_capacity(batches.iter().map(Vec::len).sum());
    for mut batch in batches {
        log.append(&mut batch);
    }
    Ok(Recovery {
        boot_path,
        log,
        epoch,
        wal_records: live.records(),
        wal_bytes: live.bytes(),
        recovered_records,
        recovered_dropped_bytes,
        durable: Some(DurableState { dir: dir.to_path_buf(), wal: live, stats }),
    })
}

/// Work order for the background compactor thread.
enum CompactMsg {
    /// The overlay crossed the configured threshold at the time of an
    /// update; compact if it is *still* over (queued pokes dedupe).
    Threshold,
    /// An explicit admin request: always compacts, answer goes back.
    Admin(CompactRespond),
    /// The server is stopping.
    Stop,
}

/// Where an admin compaction's result is delivered.
enum CompactRespond {
    /// A threads-backend worker parked on the other end of a channel.
    Sync(mpsc::Sender<Result<(u64, u64), String>>),
    /// An epoll connection: the result is pushed straight into the
    /// reactor's completion pile (the executor is never blocked).
    #[cfg(target_os = "linux")]
    Epoll {
        /// Connection token.
        conn: u64,
        /// Client-chosen request id.
        id: u64,
    },
}

/// The compactor thread: runs at most one compaction at a time, fed by
/// update-threshold pokes and explicit admin requests.
fn compactor_loop(shared: &Shared, rx: &mpsc::Receiver<CompactMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            CompactMsg::Stop => return,
            CompactMsg::Threshold => {
                let over_threshold = || {
                    let threshold = shared.config.compact_threshold;
                    let overlay_over = threshold > 0
                        && shared
                            .current
                            .read()
                            .map(|g| g.overlay_edges() >= threshold)
                            .unwrap_or(false);
                    // A checkpoint truncates the WAL, so an oversized
                    // log compacts even with a small overlay.
                    let wal_over = shared
                        .config
                        .wal_max_bytes
                        .is_some_and(|cap| shared.wal_bytes.load(Ordering::Relaxed) >= cap);
                    overlay_over || wal_over
                };
                if over_threshold() {
                    if let Err(e) = do_compact(shared) {
                        eprintln!("hopdb-server: background compaction failed: {e}");
                        // Back off before the retry below so a
                        // persistent build error can't spin the core.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                    // Re-arm: an aborted attempt (superseding swap,
                    // build error) — or updates that landed mid-build —
                    // can leave the overlay still over the threshold
                    // with no future update due to poke us. Poke
                    // ourselves instead of idling until the next write.
                    if over_threshold() && !shared.stop.load(Ordering::SeqCst) {
                        if let Ok(tx) = shared.compact_tx.lock() {
                            if let Some(tx) = tx.as_ref() {
                                let _ = tx.send(CompactMsg::Threshold);
                            }
                        }
                    }
                }
            }
            CompactMsg::Admin(respond) => {
                let result = do_compact(shared);
                match respond {
                    CompactRespond::Sync(tx) => {
                        let _ = tx.send(result);
                    }
                    #[cfg(target_os = "linux")]
                    CompactRespond::Epoll { conn, id } => {
                        let body = match result {
                            Ok((generation, vertices)) => {
                                ResponseBody::Compacted { generation, vertices }
                            }
                            Err(e) => ResponseBody::Error(format!("compact failed: {e}")),
                        };
                        if let Some(ctl) = shared.epoll_ctl.get() {
                            // `push` wakes the reactor's eventfd itself.
                            ctl.completions.push(crate::batch::Completion {
                                conn,
                                bytes: Response { id, body }.encode(),
                                answered: 1,
                                close_after: false,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// The blocking thread-per-connection backend.
fn serve_threads(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<ServerHandle> {
    let threads = if shared.config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        shared.config.threads
    };
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|_| {
            let (shared, rx) = (Arc::clone(&shared), Arc::clone(&rx));
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail after stop; drop the socket.
                    let _ = tx.send(stream);
                }
            }
            // Dropping the sender drains the workers once their current
            // connections finish.
        })
    };

    Ok(ServerHandle { shared, accept: Some(accept), workers })
}

fn worker_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        // Only one worker parks in `recv` at a time (the rest queue on
        // the mutex) — the standard shared-queue pool without external
        // crates.
        let stream = match rx.lock() {
            Ok(guard) => match guard.recv() {
                Ok(stream) => stream,
                Err(_) => return, // accept loop gone, queue drained
            },
            Err(_) => return,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            if let Ok(mut conns) = shared.conns.lock() {
                conns.insert(conn_id, clone);
            }
        }
        let _ = handle_connection(shared, &stream);
        if let Ok(mut conns) = shared.conns.lock() {
            conns.remove(&conn_id);
        }
    }
}

/// Serve one connection until the peer closes, a fatal protocol error
/// desynchronizes the stream, or the daemon stops.
fn handle_connection(shared: &Shared, stream: &TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request(&mut reader, shared.config.max_batch) {
            Ok(request) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let stopping =
                    matches!(request.body, RequestBody::Shutdown) && shared.config.allow_shutdown;
                let response = dispatch(shared, request);
                writer.write_all(&response.encode())?;
                writer.flush()?;
                if stopping {
                    shared.begin_stop();
                    return Ok(());
                }
            }
            Err(ProtoError::Bad { id, msg }) => {
                // Payload-level violation: the frame was consumed, the
                // stream is still aligned — answer and keep serving.
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                writer.write_all(&Response { id, body: ResponseBody::Error(msg) }.encode())?;
                writer.flush()?;
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(ProtoError::Fatal(msg)) => {
                // Unsynchronizable stream: best-effort error frame,
                // then close — never leave the peer hanging.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let bye = Response { id: 0, body: ResponseBody::Error(msg) };
                let _ = writer.write_all(&bye.encode());
                let _ = writer.flush();
                // Half-close and drain (bounded) before the full close:
                // closing with unread bytes in the receive queue makes
                // the kernel send RST, which would destroy the error
                // frame before the peer reads it.
                let _ = stream.shutdown(Shutdown::Write);
                drain_bounded(&mut reader, stream);
                let _ = stream.shutdown(Shutdown::Both);
                return Ok(());
            }
            Err(ProtoError::Io(e)) => return Err(e),
        }
    }
}

/// Swallow whatever the peer already sent, bounded in bytes and time,
/// so the close after a fatal protocol error doesn't RST away the error
/// frame. A peer that keeps streaming past the budget gets the reset.
fn drain_bounded(reader: &mut impl std::io::Read, stream: &TcpStream) {
    const DRAIN_BUDGET: usize = 1 << 20;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < DRAIN_BUDGET {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn dispatch(shared: &Shared, request: Request) -> Response {
    let id = request.id;
    let body = match request.body {
        RequestBody::Query(pairs) => {
            // One Arc clone pins this whole batch to one generation,
            // even while a swap promotes the next one.
            let generation = match shared.current.read() {
                Ok(current) => Arc::clone(&current),
                Err(_) => return error(id, "server state poisoned"),
            };
            match generation.query_many(&pairs, shared.config.batch_threads) {
                Ok(dists) => ResponseBody::Distances(dists),
                Err(msg) => ResponseBody::Error(msg),
            }
        }
        RequestBody::Update(edges) => match do_update(shared, &edges) {
            Ok((generation, overlay_edges)) => ResponseBody::Updated { generation, overlay_edges },
            Err(e) => ResponseBody::Error(format!("update failed: {e}")),
        },
        RequestBody::Swap => match do_swap(shared) {
            Ok(fresh) => ResponseBody::Swapped {
                generation: fresh.generation(),
                vertices: fresh.vertices() as u64,
            },
            Err(e) => ResponseBody::Error(format!("swap failed: {e}")),
        },
        RequestBody::Compact => match request_compact_sync(shared) {
            Ok((generation, vertices)) => ResponseBody::Compacted { generation, vertices },
            Err(e) => ResponseBody::Error(format!("compact failed: {e}")),
        },
        RequestBody::Info => match info_of(shared) {
            Some(info) => ResponseBody::Info(info),
            None => return error(id, "server state poisoned"),
        },
        RequestBody::RouteInfo => match route_info_of(shared) {
            Some(route) => ResponseBody::RouteInfo(route),
            None => return error(id, "server state poisoned"),
        },
        RequestBody::Stats => match shared.current.read() {
            Ok(current) => ResponseBody::Stats(StatsReply {
                generation: current.generation(),
                vertices: current.vertices() as u64,
                directed: current.is_directed(),
                resident: current.is_resident(),
                requests: shared.requests.load(Ordering::Relaxed),
                protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
            }),
            Err(_) => return error(id, "server state poisoned"),
        },
        RequestBody::Shutdown => {
            if shared.config.allow_shutdown {
                ResponseBody::Bye
            } else {
                ResponseBody::Error("remote shutdown is disabled on this server".into())
            }
        }
    };
    Response { id, body }
}

fn error(id: u64, msg: &str) -> Response {
    Response { id, body: ResponseBody::Error(msg.to_string()) }
}

/// Load the swap path (fallback: the boot path) as a fresh generation
/// and promote it. The load happens outside the write lock, so queries
/// keep flowing on the old index for the whole load; the promotion
/// itself is one pointer store.
///
/// A swap replaces the served graph *wholesale*: pending overlay edges
/// describe the previous image and are discarded with it (`compact` is
/// the lossless promotion that folds them in).
fn do_swap(shared: &Shared) -> std::io::Result<Arc<Generation>> {
    let _serial =
        shared.mutate_serial.lock().map_err(|_| std::io::Error::other("swap lock poisoned"))?;
    let path = shared.config.swap_path.as_deref().unwrap_or(&shared.index_path);
    let next = shared.generation_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let fresh = Arc::new(Generation::load(path, shared.config.max_resident_bytes, next)?);
    let mut log =
        shared.update_log.lock().map_err(|_| std::io::Error::other("server state poisoned"))?;
    // A swap discards the update log with the image it described; the
    // durable lineage advances the same way: a fresh (empty) next-epoch
    // log, then the manifest flip committing "boot from the swapped
    // image, nothing to replay". A crash before the flip recovers the
    // pre-swap state (old log intact), after it the post-swap state.
    if let Some(durable) = &shared.durable {
        let mut d = durable.lock().map_err(|_| std::io::Error::other("server state poisoned"))?;
        let epoch = d.wal.epoch() + 1;
        let new_wal = Wal::create(
            &d.dir.join(wal::wal_file_name(epoch)),
            epoch,
            shared.config.durability,
            Arc::clone(&d.stats),
        )?;
        wal::write_manifest(
            &d.dir,
            &Manifest { epoch, index_path: path.to_path_buf() },
            Arc::clone(&d.stats),
        )?;
        let old_path = d.wal.path().to_path_buf();
        d.wal = new_wal;
        let _ = std::fs::remove_file(old_path);
        wal::gc_dir(&d.dir, epoch);
        shared.wal_epoch.store(epoch, Ordering::Relaxed);
        shared.wal_records.store(d.wal.records(), Ordering::Relaxed);
        shared.wal_bytes.store(d.wal.bytes(), Ordering::Relaxed);
    }
    log.clear();
    shared.swap_epoch.fetch_add(1, Ordering::SeqCst);
    let mut current =
        shared.current.write().map_err(|_| std::io::Error::other("server state poisoned"))?;
    *current = Arc::clone(&fresh);
    Ok(fresh)
}

/// Validate an update batch against the weight invariant
/// `sfgraph::io::read_edge_list` enforces on edge-list files: weights
/// are strictly positive (shortest-path distances are ≥ 1). Weights
/// above `Dist::MAX` are unrepresentable in the wire encoding (`u32`),
/// matching the parser's overflow cap, so only zero can slip through —
/// and used to: the overlay silently clamped it to 1 and a later
/// compaction replayed it into `GraphBuilder`, which rejects it.
/// Rejecting here nacks the batch recoverably before any mutation, on
/// both the HOPQ and HTTP fronts and at the replica router.
pub(crate) fn validate_update_edges(edges: &[(u32, u32, u32)]) -> Result<(), String> {
    match edges.iter().find(|&&(_, _, w)| w == 0) {
        Some(&(s, t, _)) => Err(format!(
            "edge ({s}, {t}): edge weight 0 (weights must be ≥ 1: \
             shortest-path distances are strictly positive)"
        )),
        None => Ok(()),
    }
}

/// Apply one accepted update batch: replay the full log plus the new
/// edges into a fresh overlay snapshot and promote a copy-on-write
/// successor generation. Queries pinned to the old `Arc` finish on it;
/// nothing is committed if validation or the rebuild fails.
fn do_update(shared: &Shared, edges: &[(u32, u32, u32)]) -> Result<(u64, u64), String> {
    validate_update_edges(edges)?;
    let _serial = shared.mutate_serial.lock().map_err(|_| "server state poisoned".to_string())?;
    let current = {
        let guard = shared.current.read().map_err(|_| "server state poisoned".to_string())?;
        Arc::clone(&guard)
    };
    let mut log = shared.update_log.lock().map_err(|_| "server state poisoned".to_string())?;
    let mut candidate = log.clone();
    candidate.extend_from_slice(edges);
    let next = current.with_updates(&candidate)?;
    let generation = next.generation();
    let overlay_edges = next.overlay_edges() as u64;
    // Make the batch durable *before* it becomes observable: only
    // validated batches reach the WAL, and nothing is published (or
    // acknowledged) unless the append succeeds. Under `always` the
    // record is on stable storage when `append` returns.
    if let Some(durable) = &shared.durable {
        let mut d = durable.lock().map_err(|_| "server state poisoned".to_string())?;
        d.wal.append(edges).map_err(|e| format!("wal append: {e}"))?;
        shared.wal_records.store(d.wal.records(), Ordering::Relaxed);
        shared.wal_bytes.store(d.wal.bytes(), Ordering::Relaxed);
    }
    *log = candidate;
    {
        let mut cur = shared.current.write().map_err(|_| "server state poisoned".to_string())?;
        *cur = Arc::new(next);
    }
    drop(log);
    drop(_serial);
    // Poke the compactor outside the serial section; a full channel or
    // stopped compactor is not the client's problem.
    let overlay_over = shared.config.compact_threshold > 0
        && overlay_edges as usize >= shared.config.compact_threshold;
    let wal_over = shared
        .config
        .wal_max_bytes
        .is_some_and(|cap| shared.wal_bytes.load(Ordering::Relaxed) >= cap);
    if (overlay_over || wal_over) && shared.config.source_graph.is_some() {
        if let Ok(tx) = shared.compact_tx.lock() {
            if let Some(tx) = tx.as_ref() {
                let _ = tx.send(CompactMsg::Threshold);
            }
        }
    }
    Ok((generation, overlay_edges))
}

/// Ask the compactor thread to compact now and wait for its answer
/// (threads-backend path; the epoll reactor uses a completion instead).
fn request_compact_sync(shared: &Shared) -> Result<(u64, u64), String> {
    let (reply_tx, reply_rx) = mpsc::channel();
    let sent = shared
        .compact_tx
        .lock()
        .ok()
        .and_then(|tx| {
            tx.as_ref().map(|tx| tx.send(CompactMsg::Admin(CompactRespond::Sync(reply_tx))).is_ok())
        })
        .unwrap_or(false);
    if !sent {
        return Err("server is stopping".to_string());
    }
    match reply_rx.recv() {
        Ok(result) => result,
        Err(_) => Err("server is stopping".to_string()),
    }
}

/// Whether the first data line of an edge-list file carries a third
/// (weight) column — how the compactor decides to re-read the source
/// graph weighted or unweighted.
fn sniff_weighted(path: &Path) -> std::io::Result<bool> {
    use std::io::BufRead;
    let reader = BufReader::new(std::fs::File::open(path)?);
    for line in reader.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        return Ok(t.split_whitespace().count() >= 3);
    }
    Ok(false)
}

/// Rebuild the frozen index from the configured source graph plus the
/// pinned prefix of the update log, and promote it as a new generation.
///
/// The expensive build runs without holding any lock, so queries and
/// further updates keep flowing; only the final promotion takes the
/// mutation locks. Updates that arrived *during* the build stay in the
/// log and are folded into the fresh generation's overlay, so no
/// accepted edge is ever lost. If a swap promoted a different image
/// mid-build, the stale result is thrown away.
///
/// Id-space note: the rebuilt index serves the source file's vertex
/// ids. That matches the running server when the boot index was built
/// by `hopdb-cli build` from the same file (the `.rank` sidecar maps
/// original ids), which is the supported deployment for `--graph`.
fn do_compact(shared: &Shared) -> Result<(u64, u64), String> {
    let result = do_compact_inner(shared);
    if result.is_err() {
        shared.aborted_compactions.fetch_add(1, Ordering::Relaxed);
    }
    result
}

fn do_compact_inner(shared: &Shared) -> Result<(u64, u64), String> {
    use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
    let Some(path) = shared.config.source_graph.as_deref() else {
        return Err("compaction requires the server to be started with --graph".to_string());
    };
    // Pin: edges up to `pinned_len` go into the rebuilt image; later
    // arrivals fold into the fresh overlay at promotion time.
    let (pinned, epoch) = {
        let log = shared.update_log.lock().map_err(|_| "server state poisoned".to_string())?;
        (log.clone(), shared.swap_epoch.load(Ordering::SeqCst))
    };
    let pinned_len = pinned.len();
    let (directed, serving_n) = {
        let cur = shared.current.read().map_err(|_| "server state poisoned".to_string())?;
        (cur.is_directed(), cur.vertices())
    };

    // Build, lock-free. Same pipeline as `hopdb-cli build`: clean the
    // merged edge set, rank, relabel, label — bit-identical output at
    // any parallelism, so a compaction never changes an answer.
    let weighted_file =
        sniff_weighted(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let base = sfgraph::io::read_edge_list(BufReader::new(file), directed, weighted_file)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    let weighted = weighted_file || pinned.iter().any(|&(_, _, w)| w != 1);
    let mut builder = if directed {
        sfgraph::GraphBuilder::new_directed(base.num_vertices())
    } else {
        sfgraph::GraphBuilder::new_undirected(base.num_vertices())
    };
    if weighted {
        builder = builder.weighted();
    }
    if serving_n > 0 {
        // Trailing isolated vertices of the serving index must survive
        // the rebuild, or previously valid ids would start erroring.
        builder.ensure_vertex(serving_n as u32 - 1);
    }
    for (u, v, w) in base.edge_list() {
        builder.add_weighted_edge(u, v, w);
    }
    for &(s, t, w) in &pinned {
        builder.ensure_vertex(s);
        builder.ensure_vertex(t);
        builder.add_weighted_edge(s, t, w);
    }
    let merged = builder.build();
    let rank_by = if merged.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
    let ranking = rank_vertices(&merged, &rank_by);
    let relabeled = relabel_by_rank(&merged, &ranking);
    let cfg = hopdb::HopDbConfig { parallelism: 0, ..hopdb::HopDbConfig::default() };
    let (index, _stats) = hopdb::build_prelabeled(&relabeled, &cfg);
    let flat = hoplabels::flat::FlatIndex::from_index(&index);

    // Stage the checkpoint image while holding no lock: serialize the
    // rebuilt index and its `.rank` sidecar to fresh files in the WAL
    // directory and fsync them. Nothing references the staged files
    // until the manifest flips below, so aborting here merely leaves
    // garbage for the next `gc_dir` sweep.
    let staged = if let Some(durable) = &shared.durable {
        let dir = {
            let d = durable.lock().map_err(|_| "server state poisoned".to_string())?;
            d.dir.clone()
        };
        let stage = |e: std::io::Error| format!("checkpoint staging: {e}");
        let store = extmem::TempStore::in_dir(&dir).map_err(stage)?;
        let image = hoplabels::disk::DiskIndex::create(&index, &store, "ckpt-stage")
            .map_err(stage)?
            .persist();
        let sidecar = {
            let mut s = image.as_os_str().to_os_string();
            s.push(".rank");
            PathBuf::from(s)
        };
        std::fs::write(&sidecar, ranking.to_sidecar_bytes()).map_err(stage)?;
        for path in [&image, &sidecar] {
            std::fs::File::open(path).and_then(|f| f.sync_data()).map_err(stage)?;
        }
        Some((dir, image, sidecar))
    } else {
        None
    };

    // Promote. Everything after this point is cheap.
    let _serial = shared.mutate_serial.lock().map_err(|_| "server state poisoned".to_string())?;
    if shared.swap_epoch.load(Ordering::SeqCst) != epoch {
        return Err("aborted: a swap was promoted during compaction".to_string());
    }
    let mut log = shared.update_log.lock().map_err(|_| "server state poisoned".to_string())?;
    let next_gen = shared.generation_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let mut fresh = Generation::from_flat(flat, Some(ranking), next_gen);
    let remaining: Vec<(u32, u32, u32)> = log[pinned_len..].to_vec();
    if !remaining.is_empty() {
        fresh = fresh.with_updates(&remaining)?;
    }
    let generation = fresh.generation();
    let vertices = fresh.vertices() as u64;
    // Commit the checkpoint to the durable lineage *before* publishing
    // the in-memory state: rename the staged image into its epoch name,
    // write the next epoch's WAL seeded with the unpinned tail, then
    // flip the manifest (the single commit point). A crash on either
    // side of the flip recovers a consistent state — before it, the old
    // image plus the full old log; after it, the checkpoint plus the
    // tail. Replay is idempotent, so straddling updates are safe.
    if let Some((dir, image, sidecar)) = staged {
        let durable = shared.durable.as_ref().expect("staged implies durable");
        let mut d = durable.lock().map_err(|_| "server state poisoned".to_string())?;
        let commit = |e: std::io::Error| format!("checkpoint commit: {e}");
        let new_epoch = d.wal.epoch() + 1;
        let ckpt = dir.join(wal::checkpoint_image_name(new_epoch));
        let ckpt_rank = {
            let mut s = ckpt.as_os_str().to_os_string();
            s.push(".rank");
            PathBuf::from(s)
        };
        std::fs::rename(&image, &ckpt).map_err(commit)?;
        std::fs::rename(&sidecar, &ckpt_rank).map_err(commit)?;
        let mut new_wal = Wal::create(
            &dir.join(wal::wal_file_name(new_epoch)),
            new_epoch,
            shared.config.durability,
            Arc::clone(&d.stats),
        )
        .map_err(commit)?;
        if !remaining.is_empty() {
            new_wal.append(&remaining).map_err(commit)?;
            new_wal.sync().map_err(commit)?;
        }
        wal::write_manifest(
            &dir,
            &Manifest { epoch: new_epoch, index_path: ckpt },
            Arc::clone(&d.stats),
        )
        .map_err(commit)?;
        let old_path = d.wal.path().to_path_buf();
        d.wal = new_wal;
        let _ = std::fs::remove_file(old_path);
        wal::gc_dir(&dir, new_epoch);
        shared.wal_epoch.store(new_epoch, Ordering::Relaxed);
        shared.wal_records.store(d.wal.records(), Ordering::Relaxed);
        shared.wal_bytes.store(d.wal.bytes(), Ordering::Relaxed);
        shared.checkpoints.fetch_add(1, Ordering::Relaxed);
    }
    *log = remaining;
    {
        let mut cur = shared.current.write().map_err(|_| "server state poisoned".to_string())?;
        *cur = Arc::new(fresh);
    }
    shared.compactions.fetch_add(1, Ordering::Relaxed);
    Ok((generation, vertices))
}

/// The extended `info` snapshot (protocol v2): everything `stats`
/// reports plus overlay and compaction state.
fn info_of(shared: &Shared) -> Option<InfoReply> {
    let current = shared.current.read().ok()?;
    Some(InfoReply {
        protocol: crate::proto::VERSION,
        generation: current.generation(),
        vertices: current.vertices() as u64,
        directed: current.is_directed(),
        resident: current.is_resident(),
        resident_bytes: current.resident_bytes() as u64,
        overlay_edges: current.overlay_edges() as u64,
        overlay_affected: current.overlay_affected() as u64,
        compactions: shared.compactions.load(Ordering::Relaxed),
        requests: shared.requests.load(Ordering::Relaxed),
        protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
        durability: match &shared.durable {
            None => DURABILITY_DISABLED,
            Some(_) => shared.config.durability.as_u8(),
        },
        wal_epoch: shared.wal_epoch.load(Ordering::Relaxed),
        wal_records: shared.wal_records.load(Ordering::Relaxed),
        wal_bytes: shared.wal_bytes.load(Ordering::Relaxed),
        recovered_records: shared.recovered_records.load(Ordering::Relaxed),
        recovered_dropped_bytes: shared.recovered_dropped_bytes.load(Ordering::Relaxed),
        checkpoints: shared.checkpoints.load(Ordering::Relaxed),
        aborted_compactions: shared.aborted_compactions.load(Ordering::Relaxed),
    })
}

/// The serving-topology snapshot (protocol v4): a plain daemon reports
/// [`ROUTE_SINGLE`] plus its shard slot when it serves a split image
/// (`<index>.shard` sidecar); the router module reports its own mode.
fn route_info_of(shared: &Shared) -> Option<RouteReply> {
    let current = shared.current.read().ok()?;
    let shard = current.shard();
    Some(RouteReply {
        mode: ROUTE_SINGLE,
        vertices: current.vertices() as u64,
        directed: current.is_directed(),
        generation: current.generation(),
        shard_lo: shard.map_or(0, |s| s.lo),
        shard_hi: shard.map_or(0, |s| s.hi),
        shard_index: shard.map_or(0, |s| s.index),
        shard_count: shard.map_or(0, |s| s.count),
        rank_pruned: current.shard_rank_pruned(),
    })
}

/// The readiness-driven backend: one reactor thread multiplexing every
/// connection over epoll, one executor thread running coalesced query
/// micro-batches.
///
/// ```text
/// reactor thread                     executor thread
///   epoll_wait ──► accept / read       Batcher::next_batch
///   cut frames (HOPQ or HTTP)  ──────►   coalesce pairs across conns
///   answer stats/shutdown inline         ONE Generation clone per batch
///   queue + flush responses   ◄──────    query_many → encode responses
///   (Completions + eventfd wake)         (swaps run here too)
/// ```
///
/// The reactor never blocks on a socket and never runs a query; the
/// executor never touches a socket. In-flight caps and the write
/// high-water mark turn misbehaving peers into *paused* peers (their
/// readable interest is dropped) instead of unbounded memory.
#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::*;
    use crate::batch::{Batcher, Completion, Completions, Job, RespondAs, UpdateRespond};
    use crate::conn::{Conn, ConnRequest, ConnState, Mode};
    use crate::http::{self, HttpRequest};
    use crate::proto::Response;
    use crate::reactor::{Event, Poller, WakeFd, EV_READ, EV_WRITE};
    use std::io::Read;
    use std::time::{Duration, Instant};

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKER: u64 = 1;
    const FIRST_CONN_TOKEN: u64 = 2;
    /// Reactor tick: upper bound on how stale idle/drain bookkeeping
    /// can get; all real work is event-driven.
    const POLL_TICK_MS: i32 = 25;
    /// Graceful-drain budget after a stop: owed responses get this long
    /// to flush before connections are cut.
    const DRAIN_DEADLINE: Duration = Duration::from_secs(3);
    /// Post-error discard budget (bytes, and seconds of patience) so a
    /// close doesn't RST away the final error frame.
    const DISCARD_BUDGET: usize = 1 << 20;
    const DISCARD_TIMEOUT: Duration = Duration::from_secs(2);

    /// One executable query job: (connection token, response
    /// encoding, query pairs).
    type QueryJob = (u64, RespondAs, Vec<(u32, u32)>);

    /// Hooks `Shared::begin_stop` and the compactor thread use to reach
    /// a running reactor.
    pub(super) struct EpollCtl {
        pub(super) wake: Arc<WakeFd>,
        pub(super) batcher: Arc<Batcher>,
        pub(super) completions: Arc<Completions>,
    }

    pub(super) fn serve_epoll(
        listener: TcpListener,
        shared: Arc<Shared>,
    ) -> std::io::Result<ServerHandle> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new(256)?;
        let wake = Arc::new(WakeFd::new()?);
        let batcher = Arc::new(Batcher::new());
        let completions = Arc::new(Completions::new(Arc::clone(&wake)));
        poller.register(&listener, EV_READ, TOKEN_LISTENER)?;
        poller.register(&*wake, EV_READ, TOKEN_WAKER)?;
        let _ = shared.epoll_ctl.set(EpollCtl {
            wake: Arc::clone(&wake),
            batcher: Arc::clone(&batcher),
            completions: Arc::clone(&completions),
        });

        let executor = {
            let (shared, batcher, completions) =
                (Arc::clone(&shared), Arc::clone(&batcher), Arc::clone(&completions));
            std::thread::spawn(move || executor_loop(&shared, &batcher, &completions))
        };
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                Reactor {
                    shared,
                    poller,
                    wake,
                    batcher,
                    completions,
                    listener,
                    conns: HashMap::new(),
                    next_token: FIRST_CONN_TOKEN,
                    draining_since: None,
                }
                .run()
            })
        };
        Ok(ServerHandle { shared, accept: None, workers: vec![reactor, executor] })
    }

    struct Reactor {
        shared: Arc<Shared>,
        poller: Poller,
        wake: Arc<WakeFd>,
        batcher: Arc<Batcher>,
        completions: Arc<Completions>,
        listener: TcpListener,
        conns: HashMap<u64, Conn>,
        next_token: u64,
        draining_since: Option<Instant>,
    }

    impl Reactor {
        fn run(mut self) {
            let mut events: Vec<Event> = Vec::new();
            loop {
                if self.shared.stop.load(Ordering::SeqCst) && self.draining_since.is_none() {
                    self.begin_drain();
                }
                if let Some(since) = self.draining_since {
                    let owed =
                        self.conns.values().any(|c| c.inflight > 0 || c.pending_write_bytes() > 0);
                    if !owed || since.elapsed() > DRAIN_DEADLINE {
                        break;
                    }
                }
                events.clear();
                if self.poller.wait(Some(POLL_TICK_MS), |ev| events.push(ev)).is_err() {
                    break;
                }
                for ev in &events {
                    match ev.token {
                        TOKEN_LISTENER => self.accept_ready(),
                        TOKEN_WAKER => self.wake.drain(),
                        token => {
                            if ev.readable() {
                                self.conn_readable(token);
                            }
                            if ev.writable() {
                                self.conn_writable(token);
                            }
                        }
                    }
                }
                self.apply_completions();
                self.advance_all();
            }
            // Dropping the map closes every socket; dropping the
            // listener closes the port.
        }

        fn begin_drain(&mut self) {
            self.draining_since = Some(Instant::now());
            let _ = self.poller.deregister(&self.listener);
            for conn in self.conns.values_mut() {
                if conn.state == ConnState::Open {
                    conn.state = ConnState::CloseAfterFlush;
                }
            }
        }

        fn accept_ready(&mut self) {
            if self.draining_since.is_some() {
                return;
            }
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let token = self.next_token;
                        self.next_token += 1;
                        if self.poller.register(&stream, EV_READ, token).is_ok() {
                            let mut conn = Conn::new(stream, Instant::now());
                            conn.registered = EV_READ;
                            self.conns.insert(token, conn);
                            self.shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        /// Per-connection cap on unanswered requests: HTTP answers must
        /// stay in order, so HTTP connections run one at a time.
        fn inflight_cap(&self, mode: Mode) -> usize {
            if mode == Mode::Http {
                1
            } else {
                self.shared.config.max_inflight.max(1)
            }
        }

        fn conn_readable(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            match conn.state {
                ConnState::Open => {
                    let cap = if conn.mode == Mode::Http {
                        1
                    } else {
                        self.shared.config.max_inflight.max(1)
                    };
                    // Backpressure: a capped or backed-up connection is
                    // simply not read. Level-triggered epoll re-reports
                    // it once interest returns.
                    if conn.inflight >= cap || conn.write_backed_up() {
                        return;
                    }
                    if conn.fill(Instant::now()).is_err() {
                        conn.state = ConnState::Dead;
                        return;
                    }
                    self.parse_conn(token);
                }
                ConnState::Draining { budget } => {
                    let mut left = budget;
                    let mut chunk = [0u8; 4096];
                    loop {
                        if left == 0 {
                            conn.state = ConnState::Dead;
                            break;
                        }
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => {
                                conn.state = ConnState::Dead;
                                break;
                            }
                            Ok(n) => left = left.saturating_sub(n),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                conn.state = ConnState::Draining { budget: left };
                                break;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            Err(_) => {
                                conn.state = ConnState::Dead;
                                break;
                            }
                        }
                    }
                }
                ConnState::CloseAfterFlush | ConnState::Dead => {}
            }
        }

        fn conn_writable(&mut self, token: u64) {
            if let Some(conn) = self.conns.get_mut(&token) {
                if conn.pending_write_bytes() > 0 && conn.flush().is_err() {
                    conn.state = ConnState::Dead;
                }
            }
        }

        /// Cut and dispatch every whole request buffered on `token`,
        /// stopping at the in-flight cap.
        fn parse_conn(&mut self, token: u64) {
            loop {
                let request = {
                    let Some(conn) = self.conns.get_mut(&token) else { return };
                    if conn.state != ConnState::Open {
                        return;
                    }
                    let cap = if conn.mode == Mode::Http {
                        1
                    } else {
                        self.shared.config.max_inflight.max(1)
                    };
                    if conn.inflight >= cap || conn.write_backed_up() {
                        return;
                    }
                    match conn.next_request(self.shared.config.max_batch) {
                        Some(request) => request,
                        None => {
                            // EOF with a partial frame still buffered:
                            // the peer can never complete it.
                            if conn.peer_eof && conn.pending_read_bytes() > 0 {
                                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                let bye = Response {
                                    id: 0,
                                    body: ResponseBody::Error("truncated frame".into()),
                                };
                                conn.queue_write(&bye.encode(), Instant::now());
                                conn.state = ConnState::CloseAfterFlush;
                            }
                            return;
                        }
                    }
                };
                self.dispatch(token, request);
            }
        }

        fn dispatch(&mut self, token: u64, request: ConnRequest) {
            match request {
                ConnRequest::Hopq(req) => {
                    self.shared.requests.fetch_add(1, Ordering::Relaxed);
                    let id = req.id;
                    match req.body {
                        RequestBody::Query(pairs) => {
                            self.submit_query(token, RespondAs::Hopq { id }, pairs);
                        }
                        RequestBody::Update(edges) => {
                            let job = Job::Update {
                                conn: token,
                                respond: UpdateRespond::Hopq { id },
                                edges,
                            };
                            if self.batcher.submit(job) {
                                if let Some(c) = self.conns.get_mut(&token) {
                                    c.inflight += 1;
                                }
                            } else {
                                self.queue_response(token, error(id, "server is stopping"), false);
                            }
                        }
                        RequestBody::Swap => {
                            if self.batcher.submit(Job::Swap { conn: token, id }) {
                                if let Some(c) = self.conns.get_mut(&token) {
                                    c.inflight += 1;
                                }
                            } else {
                                self.queue_response(token, error(id, "server is stopping"), false);
                            }
                        }
                        RequestBody::Compact => {
                            // Hand to the compactor thread; the answer
                            // comes back as a completion, so neither
                            // the reactor nor the executor ever blocks
                            // on a rebuild.
                            if self.request_compact_async(token, id) {
                                if let Some(c) = self.conns.get_mut(&token) {
                                    c.inflight += 1;
                                }
                            } else {
                                self.queue_response(token, error(id, "server is stopping"), false);
                            }
                        }
                        RequestBody::Info => {
                            let resp = match info_of(&self.shared) {
                                Some(info) => Response { id, body: ResponseBody::Info(info) },
                                None => error(id, "server state poisoned"),
                            };
                            self.queue_response(token, resp, false);
                        }
                        RequestBody::RouteInfo => {
                            let resp = match route_info_of(&self.shared) {
                                Some(r) => Response { id, body: ResponseBody::RouteInfo(r) },
                                None => error(id, "server state poisoned"),
                            };
                            self.queue_response(token, resp, false);
                        }
                        RequestBody::Stats => {
                            let reply = self.stats_reply();
                            let resp = Response { id, body: ResponseBody::Stats(reply) };
                            self.queue_response(token, resp, false);
                        }
                        RequestBody::Shutdown => {
                            if self.shared.config.allow_shutdown {
                                let resp = Response { id, body: ResponseBody::Bye };
                                self.queue_response(token, resp, false);
                                self.shared.begin_stop();
                            } else {
                                let resp = error(id, "remote shutdown is disabled on this server");
                                self.queue_response(token, resp, false);
                            }
                        }
                    }
                }
                ConnRequest::HopqBad { id, msg } => {
                    self.shared.requests.fetch_add(1, Ordering::Relaxed);
                    self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    self.queue_response(token, error(id, &msg), false);
                }
                ConnRequest::HopqFatal(msg) => {
                    self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    self.queue_response(token, error(0, &msg), true);
                }
                ConnRequest::Http { request, close } => {
                    self.shared.requests.fetch_add(1, Ordering::Relaxed);
                    match request {
                        HttpRequest::QueryOne { s, t } => {
                            self.submit_query(token, RespondAs::HttpOne { close }, vec![(s, t)]);
                        }
                        HttpRequest::QueryMany(pairs) => {
                            self.submit_query(token, RespondAs::HttpMany { close }, pairs);
                        }
                        HttpRequest::Update(edges) => {
                            let job = Job::Update {
                                conn: token,
                                respond: UpdateRespond::Http { close },
                                edges,
                            };
                            if self.batcher.submit(job) {
                                if let Some(c) = self.conns.get_mut(&token) {
                                    c.inflight += 1;
                                }
                            } else {
                                let bytes = http::render_error(503, "server is stopping");
                                self.queue_bytes(token, &bytes, true);
                            }
                        }
                        HttpRequest::Stats => {
                            let body = self.stats_json();
                            let bytes = http::render_response(200, &body, close);
                            self.queue_bytes(token, &bytes, close);
                        }
                    }
                }
                ConnRequest::HttpError(resp) => {
                    self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    self.queue_bytes(token, &resp, true);
                }
            }
        }

        /// Queue an admin compaction on the compactor thread; the reply
        /// arrives through the completion pile. Returns `false` when
        /// the server is stopping.
        fn request_compact_async(&mut self, token: u64, id: u64) -> bool {
            let Ok(tx) = self.shared.compact_tx.lock() else { return false };
            let Some(tx) = tx.as_ref() else { return false };
            tx.send(CompactMsg::Admin(CompactRespond::Epoll { conn: token, id })).is_ok()
        }

        fn submit_query(&mut self, token: u64, respond: RespondAs, pairs: Vec<(u32, u32)>) {
            if self.batcher.submit(Job::Query { conn: token, respond, pairs }) {
                if let Some(c) = self.conns.get_mut(&token) {
                    c.inflight += 1;
                }
            } else {
                let (bytes, close) = match respond {
                    RespondAs::Hopq { id } => (error(id, "server is stopping").encode(), false),
                    RespondAs::HttpOne { .. } | RespondAs::HttpMany { .. } => {
                        (http::render_error(503, "server is stopping"), true)
                    }
                };
                self.queue_bytes(token, &bytes, close);
            }
        }

        fn queue_response(&mut self, token: u64, resp: Response, close_after: bool) {
            self.queue_bytes(token, &resp.encode(), close_after);
        }

        fn queue_bytes(&mut self, token: u64, bytes: &[u8], close_after: bool) {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.queue_write(bytes, Instant::now());
                if close_after && conn.state == ConnState::Open {
                    conn.state = ConnState::CloseAfterFlush;
                }
            }
        }

        fn apply_completions(&mut self) {
            for done in self.completions.drain() {
                if let Some(conn) = self.conns.get_mut(&done.conn) {
                    conn.inflight = conn.inflight.saturating_sub(done.answered);
                    conn.queue_write(&done.bytes, Instant::now());
                    if done.close_after && conn.state == ConnState::Open {
                        conn.state = ConnState::CloseAfterFlush;
                    }
                }
            }
        }

        /// Advance every connection's state machine: parse leftovers
        /// (capacity may have freed), flush, transition, re-arm.
        fn advance_all(&mut self) {
            let now = Instant::now();
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                self.advance_conn(token, now);
            }
        }

        fn advance_conn(&mut self, token: u64, now: Instant) {
            self.parse_conn(token);
            let idle = match self.shared.config.idle_timeout_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            };
            let cap = {
                let Some(conn) = self.conns.get(&token) else { return };
                self.inflight_cap(conn.mode)
            };
            let drain_mode = self.draining_since.is_some();
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.pending_write_bytes() > 0 && conn.flush().is_err() {
                conn.state = ConnState::Dead;
            }
            match conn.state {
                ConnState::Open => {
                    if conn.peer_eof
                        && conn.inflight == 0
                        && conn.pending_write_bytes() == 0
                        && conn.pending_read_bytes() == 0
                    {
                        conn.state = ConnState::Dead;
                    } else if let Some(idle) = idle {
                        if conn.inflight == 0
                            && conn.pending_write_bytes() == 0
                            && now.duration_since(conn.last_activity) >= idle
                        {
                            conn.state = ConnState::Dead;
                        }
                    }
                }
                ConnState::CloseAfterFlush => {
                    if conn.inflight == 0 && conn.pending_write_bytes() == 0 {
                        // Half-close, then linger (bounded) discarding
                        // what the peer already sent, so the close
                        // can't RST away the frames just flushed.
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.state = if conn.peer_eof {
                            ConnState::Dead
                        } else {
                            ConnState::Draining { budget: DISCARD_BUDGET }
                        };
                        conn.last_activity = now;
                    }
                }
                ConnState::Draining { .. } => {
                    if conn.peer_eof || now.duration_since(conn.last_activity) > DISCARD_TIMEOUT {
                        conn.state = ConnState::Dead;
                    }
                }
                ConnState::Dead => {}
            }
            let mut dead = conn.state == ConnState::Dead;
            if !dead {
                let desired = desired_interest(conn, cap, drain_mode);
                if desired != conn.registered {
                    match self.poller.rearm(&conn.stream, desired, token) {
                        Ok(()) => conn.registered = desired,
                        Err(_) => dead = true,
                    }
                }
            }
            if dead {
                if let Some(conn) = self.conns.remove(&token) {
                    let _ = self.poller.deregister(&conn.stream);
                }
            }
        }

        fn stats_reply(&self) -> StatsReply {
            match self.shared.current.read() {
                Ok(current) => StatsReply {
                    generation: current.generation(),
                    vertices: current.vertices() as u64,
                    directed: current.is_directed(),
                    resident: current.is_resident(),
                    requests: self.shared.requests.load(Ordering::Relaxed),
                    protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
                },
                Err(_) => StatsReply::default(),
            }
        }

        fn stats_json(&self) -> String {
            let s = self.stats_reply();
            let (resident_bytes, overlay_edges, overlay_affected) = self
                .shared
                .current
                .read()
                .map(|g| (g.resident_bytes(), g.overlay_edges(), g.overlay_affected()))
                .unwrap_or((0, 0, 0));
            let compactions = self.shared.compactions.load(Ordering::Relaxed);
            let durability = match &self.shared.durable {
                None => "disabled".to_string(),
                Some(_) => self.shared.config.durability.to_string(),
            };
            let wal_epoch = self.shared.wal_epoch.load(Ordering::Relaxed);
            let wal_records = self.shared.wal_records.load(Ordering::Relaxed);
            let wal_bytes = self.shared.wal_bytes.load(Ordering::Relaxed);
            let recovered_records = self.shared.recovered_records.load(Ordering::Relaxed);
            let recovered_dropped_bytes =
                self.shared.recovered_dropped_bytes.load(Ordering::Relaxed);
            let checkpoints = self.shared.checkpoints.load(Ordering::Relaxed);
            let aborted_compactions = self.shared.aborted_compactions.load(Ordering::Relaxed);
            format!(
                "{{\"generation\":{},\"vertices\":{},\"directed\":{},\"resident\":{},\
                 \"resident_bytes\":{resident_bytes},\"overlay_edges\":{overlay_edges},\
                 \"overlay_affected\":{overlay_affected},\"compactions\":{compactions},\
                 \"requests\":{},\"protocol_errors\":{},\
                 \"durability\":\"{durability}\",\"wal_epoch\":{wal_epoch},\
                 \"wal_records\":{wal_records},\"wal_bytes\":{wal_bytes},\
                 \"recovered_records\":{recovered_records},\
                 \"recovered_dropped_bytes\":{recovered_dropped_bytes},\
                 \"checkpoints\":{checkpoints},\"aborted_compactions\":{aborted_compactions}}}",
                s.generation, s.vertices, s.directed, s.resident, s.requests, s.protocol_errors,
            )
        }
    }

    /// The interest mask a connection's state calls for.
    fn desired_interest(conn: &Conn, cap: usize, drain_mode: bool) -> u32 {
        let mut mask = 0;
        match conn.state {
            ConnState::Open => {
                let paused =
                    conn.inflight >= cap || conn.write_backed_up() || conn.peer_eof || drain_mode;
                if !paused {
                    mask |= EV_READ;
                }
                if conn.pending_write_bytes() > 0 {
                    mask |= EV_WRITE;
                }
            }
            ConnState::CloseAfterFlush => mask |= EV_WRITE,
            ConnState::Draining { .. } => mask |= EV_READ,
            ConnState::Dead => {}
        }
        mask
    }

    /// The executor: pull coalesced batches, answer them, run swaps.
    fn executor_loop(shared: &Shared, batcher: &Batcher, completions: &Completions) {
        let flush_after = Duration::from_micros(shared.config.flush_us.max(1));
        let coalesce = shared.config.coalesce_pairs.max(1);
        while let Some(jobs) = batcher.next_batch(coalesce, flush_after) {
            let mut queries: Vec<QueryJob> = Vec::new();
            for job in jobs {
                match job {
                    Job::Query { conn, respond, pairs } => queries.push((conn, respond, pairs)),
                    Job::Swap { conn, id } => {
                        // Queries queued before the swap answer on the
                        // old generation; flush them first.
                        run_queries(shared, completions, std::mem::take(&mut queries));
                        let body = match do_swap(shared) {
                            Ok(fresh) => ResponseBody::Swapped {
                                generation: fresh.generation(),
                                vertices: fresh.vertices() as u64,
                            },
                            Err(e) => ResponseBody::Error(format!("swap failed: {e}")),
                        };
                        completions.push(Completion {
                            conn,
                            bytes: Response { id, body }.encode(),
                            answered: 1,
                            close_after: false,
                        });
                    }
                    Job::Update { conn, respond, edges } => {
                        // Same ordering contract as a swap: queries
                        // submitted before this frame answer on the
                        // pre-update overlay, queries after it on the
                        // post-update one.
                        run_queries(shared, completions, std::mem::take(&mut queries));
                        let result = do_update(shared, &edges);
                        let (bytes, close_after) = match respond {
                            UpdateRespond::Hopq { id } => {
                                let body = match result {
                                    Ok((generation, overlay_edges)) => {
                                        ResponseBody::Updated { generation, overlay_edges }
                                    }
                                    Err(e) => ResponseBody::Error(format!("update failed: {e}")),
                                };
                                (Response { id, body }.encode(), false)
                            }
                            UpdateRespond::Http { close } => match result {
                                Ok((generation, overlay_edges)) => {
                                    (http::render_update(generation, overlay_edges, close), close)
                                }
                                Err(e) => {
                                    (http::render_error(400, &format!("update failed: {e}")), true)
                                }
                            },
                        };
                        completions.push(Completion { conn, bytes, answered: 1, close_after });
                    }
                }
            }
            run_queries(shared, completions, queries);
        }
    }

    /// Answer one coalesced batch: a single `Generation` clone pins the
    /// whole batch to one index, a single `query_many_into` call
    /// answers every pair, and per-job slices are encoded back out.
    fn run_queries(shared: &Shared, completions: &Completions, jobs: Vec<QueryJob>) {
        if jobs.is_empty() {
            return;
        }
        let generation = match shared.current.read() {
            Ok(current) => Arc::clone(&current),
            Err(_) => {
                for (conn, respond, _) in jobs {
                    push_error(completions, conn, respond, "server state poisoned");
                }
                return;
            }
        };
        let n = generation.vertices() as u32;
        // Range-check per job so one bad frame can't fail its batchmates.
        let mut combined: Vec<(u32, u32)> = Vec::new();
        let mut plan: Vec<(usize, usize, usize)> = Vec::new();
        for (i, (conn, respond, pairs)) in jobs.iter().enumerate() {
            match pairs.iter().find(|&&(s, t)| s >= n || t >= n) {
                Some(&(s, t)) => {
                    let msg = format!("vertex out of range: ({s}, {t}) on a {n}-vertex index");
                    push_error(completions, *conn, *respond, &msg);
                }
                None => {
                    plan.push((i, combined.len(), pairs.len()));
                    combined.extend_from_slice(pairs);
                }
            }
        }
        if combined.is_empty() {
            return;
        }
        let mut dists = Vec::with_capacity(combined.len());
        match generation.query_many_into(&combined, shared.config.batch_threads, &mut dists) {
            Err(msg) => {
                for &(i, _, _) in &plan {
                    let (conn, respond, _) = &jobs[i];
                    push_error(completions, *conn, *respond, &msg);
                }
            }
            Ok(()) => {
                for &(i, offset, len) in &plan {
                    let (conn, respond, pairs) = &jobs[i];
                    let slice = &dists[offset..offset + len];
                    let (bytes, close_after) = match *respond {
                        RespondAs::Hopq { id } => (
                            Response { id, body: ResponseBody::Distances(slice.to_vec()) }.encode(),
                            false,
                        ),
                        RespondAs::HttpOne { close } => {
                            (http::render_query_one(pairs[0].0, pairs[0].1, slice[0], close), close)
                        }
                        RespondAs::HttpMany { close } => {
                            (http::render_query_many(slice, close), close)
                        }
                    };
                    completions.push(Completion { conn: *conn, bytes, answered: 1, close_after });
                }
            }
        }
    }

    fn push_error(completions: &Completions, conn: u64, respond: RespondAs, msg: &str) {
        let (bytes, close_after) = match respond {
            RespondAs::Hopq { id } => (error(id, msg).encode(), false),
            RespondAs::HttpOne { .. } | RespondAs::HttpMany { .. } => {
                (http::render_error(400, msg), true)
            }
        };
        completions.push(Completion { conn, bytes, answered: 1, close_after });
    }
}
