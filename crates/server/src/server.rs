//! The TCP daemon: accept loop, connection worker pool, dispatch, and
//! hot index swap.
//!
//! Architecture (all `std`, no async runtime):
//!
//! ```text
//! accept thread ──► mpsc queue ──► N connection workers
//!                                    │  read_request → dispatch → write response
//!                                    ▼
//!                        RwLock<Arc<Generation>>  ◄── swap (admin frame
//!                        (clone per request)           or ServerHandle::swap)
//! ```
//!
//! Each query request clones the current [`Generation`] `Arc` once and
//! answers the whole batch from it via `FlatIndex::query_many`, so a
//! concurrent swap never mixes two indexes inside one response and
//! never drops a connection: the new generation is loaded *outside* the
//! write lock and promoted with a single pointer swap.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use crate::backend::Generation;
use crate::proto::{
    read_request, ProtoError, Request, RequestBody, Response, ResponseBody, StatsReply,
    DEFAULT_MAX_BATCH,
};

/// Tunables for [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection worker threads (0 = one per core).
    pub threads: usize,
    /// Threads `query_many` may fan one batch across (0 = all cores).
    /// Leave at 1 when many concurrent connections already saturate the
    /// cores; raise it for few-connection, huge-batch workloads.
    pub batch_threads: usize,
    /// Pairs accepted per query request; larger batches are rejected
    /// with a protocol error. (Per-frame allocation is bounded by the
    /// protocol's [`crate::proto::MAX_PAYLOAD`] cap, not by this knob —
    /// a declared length over the cap closes the connection before any
    /// allocation.)
    pub max_batch: usize,
    /// Admission budget: index files larger than this are served from
    /// disk through the LRU-cached fallback instead of resident memory.
    /// `None` = always resident.
    pub max_resident_bytes: Option<u64>,
    /// File promoted by a swap request. `None` = re-load the boot path
    /// (in-place rebuild promotion).
    pub swap_path: Option<PathBuf>,
    /// Honour remote shutdown frames. Off by default: a query port
    /// should not double as a kill switch unless explicitly enabled.
    pub allow_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 0,
            batch_threads: 1,
            max_batch: DEFAULT_MAX_BATCH,
            max_resident_bytes: None,
            swap_path: None,
            allow_shutdown: false,
        }
    }
}

/// State shared by the accept thread, workers, and the handle.
struct Shared {
    current: RwLock<Arc<Generation>>,
    config: ServerConfig,
    index_path: PathBuf,
    local_addr: SocketAddr,
    stop: AtomicBool,
    /// Serializes swap promotions (two concurrent swaps would race the
    /// generation numbering; queries are never blocked by this).
    swap_serial: Mutex<()>,
    generation_seq: AtomicU64,
    conn_seq: AtomicU64,
    /// Live connections (cloned handles) so shutdown can unblock
    /// workers parked in `read`.
    conns: Mutex<HashMap<u64, TcpStream>>,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Shared {
    /// Flip the stop flag, close every live connection, and wake the
    /// accept loop. Idempotent.
    fn begin_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Ok(conns) = self.conns.lock() {
            for conn in conns.values() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Unblock `accept` with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A running server. Dropping the handle does *not* stop the daemon;
/// call [`ServerHandle::shutdown`] (or let a remote shutdown frame stop
/// it) and then [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Generation number of the index currently being served.
    pub fn current_generation(&self) -> u64 {
        self.shared.current.read().map(|g| g.generation()).unwrap_or(0)
    }

    /// Promote the configured swap path (or re-load the boot path) to
    /// the serving index *from this process* — the in-process analogue
    /// of the wire swap frame, for supervisors that rebuild and promote
    /// without a client connection. Returns `(generation, vertices)`.
    pub fn swap(&self) -> std::io::Result<(u64, u64)> {
        let fresh = do_swap(&self.shared)?;
        Ok((fresh.generation(), fresh.vertices() as u64))
    }

    /// Ask the daemon to stop and wait for every thread to exit.
    pub fn shutdown(mut self) {
        self.shared.begin_stop();
        self.join_all();
    }

    /// Block until the daemon stops (remote shutdown frame or
    /// [`ServerHandle::shutdown`] from another thread via a clone of
    /// the shared state — in practice: until a shutdown frame arrives).
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Bind `addr`, load the index at `index_path`, and start serving.
///
/// Returns as soon as the listener is bound and the index is loaded;
/// accepting and answering happens on background threads owned by the
/// returned handle.
pub fn serve(
    addr: impl ToSocketAddrs,
    index_path: &Path,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let boot = Generation::load(index_path, config.max_resident_bytes, 1)?;
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.threads
    };
    let shared = Arc::new(Shared {
        current: RwLock::new(Arc::new(boot)),
        config,
        index_path: index_path.to_path_buf(),
        local_addr,
        stop: AtomicBool::new(false),
        swap_serial: Mutex::new(()),
        generation_seq: AtomicU64::new(1),
        conn_seq: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|_| {
            let (shared, rx) = (Arc::clone(&shared), Arc::clone(&rx));
            std::thread::spawn(move || worker_loop(&shared, &rx))
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail after stop; drop the socket.
                    let _ = tx.send(stream);
                }
            }
            // Dropping the sender drains the workers once their current
            // connections finish.
        })
    };

    Ok(ServerHandle { shared, accept: Some(accept), workers })
}

fn worker_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        // Only one worker parks in `recv` at a time (the rest queue on
        // the mutex) — the standard shared-queue pool without external
        // crates.
        let stream = match rx.lock() {
            Ok(guard) => match guard.recv() {
                Ok(stream) => stream,
                Err(_) => return, // accept loop gone, queue drained
            },
            Err(_) => return,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            if let Ok(mut conns) = shared.conns.lock() {
                conns.insert(conn_id, clone);
            }
        }
        let _ = handle_connection(shared, &stream);
        if let Ok(mut conns) = shared.conns.lock() {
            conns.remove(&conn_id);
        }
    }
}

/// Serve one connection until the peer closes, a fatal protocol error
/// desynchronizes the stream, or the daemon stops.
fn handle_connection(shared: &Shared, stream: &TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request(&mut reader, shared.config.max_batch) {
            Ok(request) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let stopping =
                    matches!(request.body, RequestBody::Shutdown) && shared.config.allow_shutdown;
                let response = dispatch(shared, request);
                writer.write_all(&response.encode())?;
                writer.flush()?;
                if stopping {
                    shared.begin_stop();
                    return Ok(());
                }
            }
            Err(ProtoError::Bad { id, msg }) => {
                // Payload-level violation: the frame was consumed, the
                // stream is still aligned — answer and keep serving.
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                writer.write_all(&Response { id, body: ResponseBody::Error(msg) }.encode())?;
                writer.flush()?;
            }
            Err(ProtoError::Closed) => return Ok(()),
            Err(ProtoError::Fatal(msg)) => {
                // Unsynchronizable stream: best-effort error frame,
                // then close — never leave the peer hanging.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let bye = Response { id: 0, body: ResponseBody::Error(msg) };
                let _ = writer.write_all(&bye.encode());
                let _ = writer.flush();
                // Half-close and drain (bounded) before the full close:
                // closing with unread bytes in the receive queue makes
                // the kernel send RST, which would destroy the error
                // frame before the peer reads it.
                let _ = stream.shutdown(Shutdown::Write);
                drain_bounded(&mut reader, stream);
                let _ = stream.shutdown(Shutdown::Both);
                return Ok(());
            }
            Err(ProtoError::Io(e)) => return Err(e),
        }
    }
}

/// Swallow whatever the peer already sent, bounded in bytes and time,
/// so the close after a fatal protocol error doesn't RST away the error
/// frame. A peer that keeps streaming past the budget gets the reset.
fn drain_bounded(reader: &mut impl std::io::Read, stream: &TcpStream) {
    const DRAIN_BUDGET: usize = 1 << 20;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < DRAIN_BUDGET {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn dispatch(shared: &Shared, request: Request) -> Response {
    let id = request.id;
    let body = match request.body {
        RequestBody::Query(pairs) => {
            // One Arc clone pins this whole batch to one generation,
            // even while a swap promotes the next one.
            let generation = match shared.current.read() {
                Ok(current) => Arc::clone(&current),
                Err(_) => return error(id, "server state poisoned"),
            };
            match generation.query_many(&pairs, shared.config.batch_threads) {
                Ok(dists) => ResponseBody::Distances(dists),
                Err(msg) => ResponseBody::Error(msg),
            }
        }
        RequestBody::Swap => match do_swap(shared) {
            Ok(fresh) => ResponseBody::Swapped {
                generation: fresh.generation(),
                vertices: fresh.vertices() as u64,
            },
            Err(e) => ResponseBody::Error(format!("swap failed: {e}")),
        },
        RequestBody::Stats => match shared.current.read() {
            Ok(current) => ResponseBody::Stats(StatsReply {
                generation: current.generation(),
                vertices: current.vertices() as u64,
                directed: current.is_directed(),
                resident: current.is_resident(),
                requests: shared.requests.load(Ordering::Relaxed),
                protocol_errors: shared.protocol_errors.load(Ordering::Relaxed),
            }),
            Err(_) => return error(id, "server state poisoned"),
        },
        RequestBody::Shutdown => {
            if shared.config.allow_shutdown {
                ResponseBody::Bye
            } else {
                ResponseBody::Error("remote shutdown is disabled on this server".into())
            }
        }
    };
    Response { id, body }
}

fn error(id: u64, msg: &str) -> Response {
    Response { id, body: ResponseBody::Error(msg.to_string()) }
}

/// Load the swap path (fallback: the boot path) as a fresh generation
/// and promote it. The load happens outside the write lock, so queries
/// keep flowing on the old index for the whole load; the promotion
/// itself is one pointer store.
fn do_swap(shared: &Shared) -> std::io::Result<Arc<Generation>> {
    let _serial =
        shared.swap_serial.lock().map_err(|_| std::io::Error::other("swap lock poisoned"))?;
    let path = shared.config.swap_path.as_deref().unwrap_or(&shared.index_path);
    let next = shared.generation_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let fresh = Arc::new(Generation::load(path, shared.config.max_resident_bytes, next)?);
    let mut current =
        shared.current.write().map_err(|_| std::io::Error::other("server state poisoned"))?;
    *current = Arc::clone(&fresh);
    Ok(fresh)
}
