//! A minimal HTTP/1.1 + JSON front for browser and dashboard clients.
//!
//! The epoll backend speaks two protocols on one port: the binary
//! `HOPQ` framing and this HTTP front, distinguished by the first bytes
//! a connection sends. The HTTP surface is deliberately small:
//!
//! | endpoint            | answer |
//! |---------------------|--------|
//! | `GET /query?s=S&t=T` | `{"s":S,"t":T,"dist":D}` (`"dist":null` when unreachable) |
//! | `POST /query_many`  | body `{"pairs":[[s,t],...]}` → `{"dists":[...]}` (null = unreachable) |
//! | `POST /update`      | body `{"edges":[[s,t,w],...]}` → `{"generation":G,"overlay_edges":N}` |
//! | `GET /stats`        | serving statistics as JSON |
//!
//! Query answers ride the same micro-batch path as binary frames; only
//! `/stats` (and errors) are answered inline. Keep-alive is honoured
//! (HTTP/1.1 default); HTTP requests on one connection are answered in
//! order, so the per-connection in-flight cap is 1 for HTTP mode —
//! browsers do not pipeline anyway, and it keeps responses ordered
//! without a resequencing buffer.
//!
//! Parsing is hand-rolled (no external dependencies, like the rest of
//! the tree): request line + headers up to a CRLFCRLF, an optional
//! `Content-Length` body, and a tiny JSON scanner for the one body
//! shape `/query_many` accepts. Head and body sizes are capped; a peer
//! exceeding them gets a 4xx and the connection closed.

use sfgraph::{Dist, VertexId, INF_DIST};

/// Cap on the request head (request line + headers).
pub const MAX_HEAD: usize = 8 << 10;
/// Cap on a request body (`POST /query_many` pair lists).
pub const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request the server acts on.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpRequest {
    /// `GET /query?s=&t=`.
    QueryOne {
        /// Source vertex.
        s: VertexId,
        /// Target vertex.
        t: VertexId,
    },
    /// `POST /query_many` with a JSON pair list.
    QueryMany(Vec<(VertexId, VertexId)>),
    /// `POST /update` with a JSON list of weighted edge insertions.
    Update(Vec<(VertexId, VertexId, Dist)>),
    /// `GET /stats`.
    Stats,
}

/// Outcome of trying to parse one HTTP request from a buffer prefix.
#[derive(Debug)]
pub enum HttpDecoded {
    /// Need more bytes (head or body still incomplete).
    Incomplete,
    /// A request the server should act on; consume `used` bytes.
    Request {
        /// What was asked.
        request: HttpRequest,
        /// Whether the client asked to close after the response.
        close: bool,
        /// Bytes consumed from the buffer.
        used: usize,
    },
    /// Answer with this pre-rendered error response, then close.
    Error(Vec<u8>),
}

/// Whether a buffer prefix looks like the start of an HTTP request
/// (used for protocol detection on a fresh connection).
pub fn looks_like_http(prefix: &[u8]) -> bool {
    const METHODS: [&[u8]; 6] = [b"GET ", b"POST", b"HEAD", b"PUT ", b"DELE", b"OPTI"];
    if prefix.len() < 4 {
        return false;
    }
    METHODS.iter().any(|m| prefix.starts_with(m))
}

/// Try to parse one request from the front of `buf`.
pub fn decode_http(buf: &[u8]) -> HttpDecoded {
    let Some(head_len) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD {
            return HttpDecoded::Error(render_error(431, "request head too large"));
        }
        return HttpDecoded::Incomplete;
    };
    let Some(head_bytes) = buf.get(..head_len) else {
        return HttpDecoded::Incomplete; // unreachable: head_len <= buf.len()
    };
    let Ok(head) = std::str::from_utf8(head_bytes) else {
        return HttpDecoded::Error(render_error(400, "request head is not UTF-8"));
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return HttpDecoded::Error(render_error(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return HttpDecoded::Error(render_error(505, "only HTTP/1.x is supported"));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(v) => content_length = v,
                Err(_) => return HttpDecoded::Error(render_error(400, "bad Content-Length")),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return HttpDecoded::Error(render_error(501, "chunked bodies are not supported"));
        }
    }
    if content_length > MAX_BODY {
        return HttpDecoded::Error(render_error(413, "request body too large"));
    }
    let total = head_len + 4 + content_length;
    let Some(body) = buf.get(head_len + 4..total) else {
        return HttpDecoded::Incomplete;
    };

    let (path, rawquery) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let request = match (method, path) {
        ("GET", "/query") => {
            let (mut s, mut t) = (None, None);
            for kv in rawquery.split('&') {
                match kv.split_once('=') {
                    Some(("s", v)) => s = v.parse::<VertexId>().ok(),
                    Some(("t", v)) => t = v.parse::<VertexId>().ok(),
                    _ => {}
                }
            }
            match (s, t) {
                (Some(s), Some(t)) => HttpRequest::QueryOne { s, t },
                _ => {
                    return HttpDecoded::Error(render_error(
                        400,
                        "need numeric query parameters s and t",
                    ))
                }
            }
        }
        ("POST", "/query_many") => match parse_pairs_json(body) {
            Ok(pairs) if pairs.is_empty() => {
                return HttpDecoded::Error(render_error(400, "pair list is empty"))
            }
            Ok(pairs) => HttpRequest::QueryMany(pairs),
            Err(msg) => return HttpDecoded::Error(render_error(400, msg)),
        },
        ("POST", "/update") => match parse_edges_json(body) {
            Ok(edges) if edges.is_empty() => {
                return HttpDecoded::Error(render_error(400, "edge list is empty"))
            }
            Ok(edges) => HttpRequest::Update(edges),
            Err(msg) => return HttpDecoded::Error(render_error(400, msg)),
        },
        ("GET", "/stats") => HttpRequest::Stats,
        ("GET" | "POST", _) => return HttpDecoded::Error(render_error(404, "unknown endpoint")),
        _ => return HttpDecoded::Error(render_error(405, "method not allowed")),
    };
    HttpDecoded::Request { request, close, used: total }
}

/// Byte offset of the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let horizon = buf.len().min(MAX_HEAD + 4);
    buf.get(..horizon)?.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse `{"pairs":[[s,t],...]}` (or a bare `[[s,t],...]`) without a
/// JSON library: scan for the bracketed pair list and read number
/// pairs. Tolerates arbitrary whitespace; rejects anything else.
fn parse_pairs_json(body: &[u8]) -> Result<Vec<(VertexId, VertexId)>, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    let list = match text.find("\"pairs\"") {
        Some(at) => {
            let rest = text.get(at + "\"pairs\"".len()..).ok_or("expected : after \"pairs\"")?;
            let rest = rest.trim_start();
            let rest = rest.strip_prefix(':').ok_or("expected : after \"pairs\"")?;
            rest.trim_start()
        }
        None => text.trim_start(),
    };
    let list = list.strip_prefix('[').ok_or("expected a JSON array of pairs")?;
    let mut pairs = Vec::new();
    let mut rest = list.trim_start();
    if let Some(after) = rest.strip_prefix(']') {
        // Empty list: valid JSON, rejected later as a zero-pair batch.
        let _ = after;
        return Ok(pairs);
    }
    loop {
        rest = rest.strip_prefix('[').ok_or("expected [s,t]")?.trim_start();
        let (s, r) = take_number(rest)?;
        rest = r.trim_start().strip_prefix(',').ok_or("expected , between s and t")?.trim_start();
        let (t, r) = take_number(rest)?;
        rest = r.trim_start().strip_prefix(']').ok_or("expected ] after t")?.trim_start();
        pairs.push((s, t));
        if pairs.len() > crate::proto::DEFAULT_MAX_BATCH {
            return Err("too many pairs");
        }
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            continue;
        }
        rest.strip_prefix(']').ok_or("expected , or ] after a pair")?;
        return Ok(pairs);
    }
}

/// Parse `{"edges":[[s,t,w],...]}` (or a bare `[[s,t,w],...]`), the
/// `POST /update` body: weighted edge insertions in original ids.
fn parse_edges_json(body: &[u8]) -> Result<Vec<(VertexId, VertexId, Dist)>, &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    let list = match text.find("\"edges\"") {
        Some(at) => {
            let rest = text.get(at + "\"edges\"".len()..).ok_or("expected : after \"edges\"")?;
            let rest = rest.trim_start();
            let rest = rest.strip_prefix(':').ok_or("expected : after \"edges\"")?;
            rest.trim_start()
        }
        None => text.trim_start(),
    };
    let list = list.strip_prefix('[').ok_or("expected a JSON array of edges")?;
    let mut edges = Vec::new();
    let mut rest = list.trim_start();
    if rest.strip_prefix(']').is_some() {
        // Empty list: valid JSON, rejected later as a zero-edge batch.
        return Ok(edges);
    }
    loop {
        rest = rest.strip_prefix('[').ok_or("expected [s,t,w]")?.trim_start();
        let (s, r) = take_number(rest)?;
        rest = r.trim_start().strip_prefix(',').ok_or("expected , between s and t")?.trim_start();
        let (t, r) = take_number(rest)?;
        rest = r.trim_start().strip_prefix(',').ok_or("expected , between t and w")?.trim_start();
        let (w, r) = take_number(rest)?;
        rest = r.trim_start().strip_prefix(']').ok_or("expected ] after w")?.trim_start();
        edges.push((s, t, w));
        if edges.len() > crate::proto::DEFAULT_MAX_BATCH {
            return Err("too many edges");
        }
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            continue;
        }
        rest.strip_prefix(']').ok_or("expected , or ] after an edge")?;
        return Ok(edges);
    }
}

fn take_number(text: &str) -> Result<(VertexId, &str), &'static str> {
    let digits = text.len() - text.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return Err("expected a vertex id");
    }
    let (num, rest) = text.split_at_checked(digits).ok_or("expected a vertex id")?;
    let v = num.parse::<VertexId>().map_err(|_| "vertex id out of range")?;
    Ok((v, rest))
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}

/// Render a complete response with a JSON body.
pub fn render_response(code: u16, body: &str, close: bool) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        status_text(code),
        body.len(),
    )
    .into_bytes()
}

/// Render an error response (always closes: the connection state after
/// a refused request is not worth resynchronizing).
pub fn render_error(code: u16, msg: &str) -> Vec<u8> {
    render_response(code, &format!("{{\"error\":{}}}", json_string(msg)), true)
}

/// JSON for one `GET /query` answer.
pub fn render_query_one(s: VertexId, t: VertexId, dist: Dist, close: bool) -> Vec<u8> {
    let body = format!("{{\"s\":{s},\"t\":{t},\"dist\":{}}}", json_dist(dist));
    render_response(200, &body, close)
}

/// JSON for one `POST /query_many` answer, in input order.
pub fn render_query_many(dists: &[Dist], close: bool) -> Vec<u8> {
    let mut body = String::with_capacity(12 + dists.len() * 4);
    body.push_str("{\"dists\":[");
    for (i, &d) in dists.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&json_dist(d));
    }
    body.push_str("]}");
    render_response(200, &body, close)
}

/// JSON for one `POST /update` ack.
pub fn render_update(generation: u64, overlay_edges: u64, close: bool) -> Vec<u8> {
    let body = format!("{{\"generation\":{generation},\"overlay_edges\":{overlay_edges}}}");
    render_response(200, &body, close)
}

fn json_dist(d: Dist) -> String {
    if d == INF_DIST {
        "null".to_string()
    } else {
        d.to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (HttpRequest, bool, usize) {
        match decode_http(raw) {
            HttpDecoded::Request { request, close, used } => (request, close, used),
            other => panic!("want Request, got {other:?}"),
        }
    }

    #[test]
    fn get_query_parses_and_is_incremental() {
        let raw = b"GET /query?s=3&t=9 HTTP/1.1\r\nHost: x\r\n\r\n";
        for cut in 1..raw.len() {
            assert!(matches!(decode_http(&raw[..cut]), HttpDecoded::Incomplete), "cut at {cut}");
        }
        let (req, close, used) = parse_ok(raw);
        assert_eq!(req, HttpRequest::QueryOne { s: 3, t: 9 });
        assert!(!close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(used, raw.len());

        let (_, close, _) = parse_ok(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(close);
    }

    #[test]
    fn post_query_many_parses_wrapped_and_bare_lists() {
        for body in ["{\"pairs\":[[0,1],[5,5], [7,42]]}", "[[0,1],[5,5],[7,42]]"] {
            let raw = format!(
                "POST /query_many HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let (req, _, used) = parse_ok(raw.as_bytes());
            assert_eq!(req, HttpRequest::QueryMany(vec![(0, 1), (5, 5), (7, 42)]), "{body}");
            assert_eq!(used, raw.len());
        }
        // Body split across reads: incomplete until the last byte.
        let body = "{\"pairs\":[[1,2]]}";
        let raw =
            format!("POST /query_many HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        assert!(matches!(decode_http(&raw.as_bytes()[..raw.len() - 1]), HttpDecoded::Incomplete));
    }

    #[test]
    fn post_update_parses_wrapped_and_bare_lists() {
        for body in ["{\"edges\":[[0,1,5],[5,5,1], [7,42,3]]}", "[[0,1,5],[5,5,1],[7,42,3]]"] {
            let raw =
                format!("POST /update HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
            let (req, _, used) = parse_ok(raw.as_bytes());
            assert_eq!(req, HttpRequest::Update(vec![(0, 1, 5), (5, 5, 1), (7, 42, 3)]), "{body}");
            assert_eq!(used, raw.len());
        }
        // A pair where a weighted triple is required is refused.
        let raw = b"POST /update HTTP/1.1\r\nContent-Length: 7\r\n\r\n[[1,2]]";
        assert!(matches!(decode_http(raw), HttpDecoded::Error(_)));
        let raw = b"POST /update HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]";
        assert!(matches!(decode_http(raw), HttpDecoded::Error(_)));

        let ack = String::from_utf8(render_update(3, 17, false)).unwrap();
        assert!(ack.contains("{\"generation\":3,\"overlay_edges\":17}"), "{ack}");
    }

    #[test]
    fn errors_are_rendered_not_panicked() {
        let cases: &[&[u8]] = &[
            b"GET /nope HTTP/1.1\r\n\r\n",
            b"GET /query?s=x&t=2 HTTP/1.1\r\n\r\n",
            b"DELETE /query HTTP/1.1\r\n\r\n",
            b"GET /query HTTP/9.9\r\n\r\n",
            b"POST /query_many HTTP/1.1\r\nContent-Length: 7\r\n\r\nnot json",
            b"POST /query_many HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]",
            b"POST /query_many HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ];
        for raw in cases {
            match decode_http(raw) {
                HttpDecoded::Error(resp) => {
                    let text = String::from_utf8_lossy(&resp);
                    assert!(text.starts_with("HTTP/1.1 4") || text.starts_with("HTTP/1.1 5"));
                    assert!(text.contains("\"error\""), "{text}");
                }
                other => panic!("{:?}: want Error, got {other:?}", String::from_utf8_lossy(raw)),
            }
        }
    }

    #[test]
    fn renderers_emit_valid_bodies() {
        let one = String::from_utf8(render_query_one(1, 2, 7, false)).unwrap();
        assert!(one.contains("\"dist\":7"), "{one}");
        let unreachable =
            String::from_utf8(render_query_one(1, 2, sfgraph::INF_DIST, false)).unwrap();
        assert!(unreachable.contains("\"dist\":null"), "{unreachable}");
        let many = String::from_utf8(render_query_many(&[0, sfgraph::INF_DIST, 3], true)).unwrap();
        assert!(many.contains("[0,null,3]"), "{many}");
        assert!(many.contains("Connection: close"), "{many}");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
    }

    #[test]
    fn protocol_detection() {
        assert!(looks_like_http(b"GET /query"));
        assert!(looks_like_http(b"POST /query_many"));
        assert!(!looks_like_http(b"HOPQ...."));
        assert!(!looks_like_http(b"GE")); // too short to tell
    }
}
