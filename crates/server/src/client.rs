//! A minimal blocking client for the `HOPQ` protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol itself allows pipelining — ids are echoed — but
//! the closed-loop client is all the CLI, tests, and the `serverperf`
//! harness need).

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sfgraph::{Dist, VertexId};

use crate::proto::{read_response, ProtoError, Request, RequestBody, ResponseBody, StatsReply};

/// A blocking connection to a `hopdb-server` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream), next_id: 1 })
    }

    /// Send one request and read the matching response body. Server-side
    /// errors come back as `InvalidData` I/O errors carrying the
    /// server's message.
    fn roundtrip(&mut self, body: RequestBody) -> std::io::Result<ResponseBody> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&Request { id, body }.encode())?;
        self.writer.flush()?;
        let response = read_response(&mut self.reader).map_err(|e| match e {
            ProtoError::Io(io) => io,
            other => invalid(other.to_string()),
        })?;
        if response.id != id {
            // A fatal protocol error is answered with id 0 before the
            // server closes the stream: surface the server's reason,
            // not a bare id mismatch.
            if let ResponseBody::Error(msg) = response.body {
                return Err(invalid(msg));
            }
            return Err(invalid(format!("response id {} for request {id}", response.id)));
        }
        Ok(response.body)
    }

    /// Distance of a batch of `(s, t)` pairs, in input order;
    /// [`crate::proto::UNREACHABLE`] marks disconnected pairs.
    pub fn query(&mut self, pairs: &[(VertexId, VertexId)]) -> std::io::Result<Vec<Dist>> {
        // Refuse frames the server could only treat as stream
        // corruption (the declared payload would exceed the cap) while
        // the connection is still healthy.
        if 4 + 8 * pairs.len() as u64 > crate::proto::MAX_PAYLOAD as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("batch of {} pairs exceeds the wire payload cap", pairs.len()),
            ));
        }
        match self.roundtrip(RequestBody::Query(pairs.to_vec()))? {
            ResponseBody::Distances(dists) if dists.len() == pairs.len() => Ok(dists),
            ResponseBody::Distances(dists) => {
                Err(invalid(format!("{} answers for {} pairs", dists.len(), pairs.len())))
            }
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Distance of a single pair.
    pub fn query_one(&mut self, s: VertexId, t: VertexId) -> std::io::Result<Dist> {
        Ok(self.query(&[(s, t)])?[0])
    }

    /// Trigger a hot index swap; returns `(generation, vertices)` of
    /// the newly promoted index.
    pub fn swap(&mut self) -> std::io::Result<(u64, u64)> {
        match self.roundtrip(RequestBody::Swap)? {
            ResponseBody::Swapped { generation, vertices } => Ok((generation, vertices)),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetch serving statistics.
    pub fn stats(&mut self) -> std::io::Result<StatsReply> {
        match self.roundtrip(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Ask the server to stop (requires the server to allow it).
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        match self.roundtrip(RequestBody::Shutdown)? {
            ResponseBody::Bye => Ok(()),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }
}
