//! Clients for the `HOPQ` protocol: a pipelined [`Session`] and the
//! thin blocking [`Client`] wrapper.
//!
//! The protocol is pipelined — request ids are echoed verbatim and the
//! epoll backend may answer **out of order** (micro-batches complete
//! independently). [`Session`] exposes that directly:
//!
//! ```text
//! let t1 = session.submit(&pairs_a)?;   // fire...
//! let t2 = session.submit(&pairs_b)?;   // ...and keep firing
//! let b  = session.wait(t2)?;           // answers correlate by id,
//! let a  = session.wait(t1)?;           // any completion order works
//! ```
//!
//! `wait` reads frames off the socket and stashes answers for tickets
//! the caller hasn't asked about yet, so tickets can be awaited in any
//! order. [`Client`] keeps the one-request-at-a-time surface the CLI,
//! tests, and `serverperf` use — each call is submit-then-wait on an
//! internal session.
//!
//! Both types take an optional I/O timeout ([`Session::set_io_timeout`],
//! [`Client::connect_timeout`]) so admin tooling pointed at a hung
//! server fails with `TimedOut` instead of blocking forever.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use sfgraph::{Dist, VertexId};

use crate::proto::{
    read_response, InfoReply, ProtoError, Request, RequestBody, ResponseBody, RouteReply,
    StatsReply,
};

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Connect errors worth retrying: the listener is not there *yet*
/// (daemon restarting, socket backlog overflowed), as opposed to
/// timeouts and routing errors that a retry will not fix.
fn is_transient_connect_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
    )
}

/// A claim on one in-flight query batch, returned by
/// [`Session::submit`] and redeemed by [`Session::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    id: u64,
    pairs: usize,
}

impl Ticket {
    /// The wire request id this ticket correlates on.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A pipelined connection: submit many query batches, await their
/// answers in any order.
pub struct Session {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// Answers that arrived while waiting for a different ticket.
    stash: HashMap<u64, ResponseBody>,
    /// Ids submitted and not yet redeemed (guards double-waits).
    outstanding: HashMap<u64, usize>,
}

impl Session {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Session> {
        Session::from_stream(TcpStream::connect(addr)?)
    }

    /// Connect with a timeout covering the TCP connect itself; the same
    /// timeout is installed as the session's I/O timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Session> {
        let mut session = Session::from_stream(TcpStream::connect_timeout(addr, timeout)?)?;
        session.set_io_timeout(Some(timeout))?;
        Ok(session)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Session> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Session {
            reader,
            writer: BufWriter::new(stream),
            next_id: 1,
            stash: HashMap::new(),
            outstanding: HashMap::new(),
        })
    }

    /// Bound every subsequent socket read and write: a server that goes
    /// silent surfaces as `TimedOut`/`WouldBlock` instead of hanging
    /// the caller. `None` restores blocking forever.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, body: RequestBody) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&Request { id, body }.encode())?;
        self.writer.flush()?;
        Ok(id)
    }

    /// Fire one query batch without waiting for its answer. The ticket
    /// is redeemed by [`Session::wait`], in any order relative to other
    /// tickets.
    pub fn submit(&mut self, pairs: &[(VertexId, VertexId)]) -> std::io::Result<Ticket> {
        // Refuse frames the server could only treat as stream
        // corruption (declared payload above the wire cap) while the
        // connection is still healthy.
        if 4 + 8 * pairs.len() as u64 > crate::proto::MAX_PAYLOAD as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("batch of {} pairs exceeds the wire payload cap", pairs.len()),
            ));
        }
        let id = self.send(RequestBody::Query(pairs.to_vec()))?;
        self.outstanding.insert(id, pairs.len());
        Ok(Ticket { id, pairs: pairs.len() })
    }

    /// Number of submitted-but-unredeemed tickets.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Block until `ticket`'s answer is available and return its
    /// distances (input order, [`crate::proto::UNREACHABLE`] for
    /// disconnected pairs). Answers for *other* tickets read along the
    /// way are stashed for their own `wait` calls.
    pub fn wait(&mut self, ticket: Ticket) -> std::io::Result<Vec<Dist>> {
        if self.outstanding.remove(&ticket.id).is_none() {
            return Err(invalid(format!(
                "ticket {} was never submitted or already redeemed",
                ticket.id
            )));
        }
        let body = self.wait_body(ticket.id)?;
        match body {
            ResponseBody::Distances(dists) if dists.len() == ticket.pairs => Ok(dists),
            ResponseBody::Distances(dists) => {
                Err(invalid(format!("{} answers for {} pairs", dists.len(), ticket.pairs)))
            }
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Read frames until the response for `id` arrives, stashing
    /// answers to other in-flight ids.
    fn wait_body(&mut self, id: u64) -> std::io::Result<ResponseBody> {
        if let Some(body) = self.stash.remove(&id) {
            return Ok(body);
        }
        loop {
            let response = read_response(&mut self.reader).map_err(|e| match e {
                ProtoError::Io(io) => io,
                // A clean EOF is a transport failure (the peer went
                // away), not a server-reported error: it must keep a
                // kind a failover path can tell apart from InvalidData.
                ProtoError::Closed => {
                    std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed")
                }
                other => invalid(other.to_string()),
            })?;
            if response.id == id {
                return Ok(response.body);
            }
            if self.outstanding.contains_key(&response.id) {
                self.stash.insert(response.id, response.body);
                continue;
            }
            // Not ours and not in flight: a fatal server error frame
            // (id 0) carries the reason the stream is about to close.
            if let ResponseBody::Error(msg) = response.body {
                return Err(invalid(msg));
            }
            return Err(invalid(format!("response id {} was never requested", response.id)));
        }
    }

    /// Submit-and-wait for one admin request (no pipelining — admin
    /// frames are rare and their ordering matters to the caller).
    fn roundtrip(&mut self, body: RequestBody) -> std::io::Result<ResponseBody> {
        let id = self.send(body)?;
        self.wait_body(id)
    }
}

/// A blocking connection to a `hopdb-server` daemon: each call is one
/// request and its answer. Wraps a [`Session`]; use the session
/// directly to pipeline.
pub struct Client {
    session: Session,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Ok(Client { session: Session::connect(addr)? })
    }

    /// Connect with a timeout that also bounds every later read/write —
    /// the variant admin tooling should use so a dead server cannot
    /// hang it.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        Ok(Client { session: Session::connect_timeout(addr, timeout)? })
    }

    /// Like [`Client::connect_timeout`], but retry transient connect
    /// failures (refused/reset/aborted — the daemon is restarting or
    /// not yet listening) up to `retries` additional attempts, sleeping
    /// an exponentially growing, jittered backoff between attempts.
    /// `timeout` stays a *per-attempt* bound (`None` = block forever,
    /// matching [`Client::connect`]); non-transient errors and
    /// per-attempt timeouts fail immediately.
    pub fn connect_retry(
        addr: &SocketAddr,
        timeout: Option<Duration>,
        retries: u32,
    ) -> std::io::Result<Client> {
        // Deterministic tooling doesn't need a real RNG: one LCG step
        // seeded from the clock de-synchronizes concurrent callers.
        let mut jitter_state = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 | 1)
            .unwrap_or(1);
        let mut backoff = Duration::from_millis(50);
        let mut attempt = 0;
        loop {
            let result = match timeout {
                Some(t) => Client::connect_timeout(addr, t),
                None => Client::connect(addr),
            };
            match result {
                Ok(client) => return Ok(client),
                Err(e) if attempt < retries && is_transient_connect_error(&e) => {
                    jitter_state = jitter_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    // Sleep backoff ± 25%.
                    let base = backoff.as_millis() as u64;
                    let spread = (base / 2).max(1);
                    let jittered = base - spread / 2 + jitter_state % spread;
                    std::thread::sleep(Duration::from_millis(jittered));
                    backoff = (backoff * 2).min(Duration::from_secs(1));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Bound every subsequent socket read/write (`None` = block forever).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.session.set_io_timeout(timeout)
    }

    /// The underlying pipelined session.
    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Distance of a batch of `(s, t)` pairs, in input order;
    /// [`crate::proto::UNREACHABLE`] marks disconnected pairs.
    pub fn query(&mut self, pairs: &[(VertexId, VertexId)]) -> std::io::Result<Vec<Dist>> {
        let ticket = self.session.submit(pairs)?;
        self.session.wait(ticket)
    }

    /// Distance of a single pair.
    pub fn query_one(&mut self, s: VertexId, t: VertexId) -> std::io::Result<Dist> {
        Ok(self.query(&[(s, t)])?[0])
    }

    /// Trigger a hot index swap; returns `(generation, vertices)` of
    /// the newly promoted index.
    pub fn swap(&mut self) -> std::io::Result<(u64, u64)> {
        match self.session.roundtrip(RequestBody::Swap)? {
            ResponseBody::Swapped { generation, vertices } => Ok((generation, vertices)),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Insert a batch of weighted edges into the live overlay; returns
    /// `(generation, overlay_edges)` — the generation serving the
    /// update (unchanged: updates do not bump it) and the deduplicated
    /// overlay size after the batch. Protocol v2; a v1 server answers
    /// with a recoverable `unsupported kind` error.
    pub fn update(&mut self, edges: &[(VertexId, VertexId, Dist)]) -> std::io::Result<(u64, u64)> {
        match self.session.roundtrip(RequestBody::Update(edges.to_vec()))? {
            ResponseBody::Updated { generation, overlay_edges } => Ok((generation, overlay_edges)),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetch the extended `info` snapshot (protocol v2): stats plus
    /// overlay and compaction state.
    pub fn info(&mut self) -> std::io::Result<InfoReply> {
        match self.session.roundtrip(RequestBody::Info)? {
            ResponseBody::Info(info) => Ok(info),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Compact: rebuild the frozen index from the server's source graph
    /// plus the accumulated update log and promote it as a fresh
    /// generation; returns `(generation, vertices)`. Requires the
    /// server to have been started with a source graph.
    pub fn compact(&mut self) -> std::io::Result<(u64, u64)> {
        match self.session.roundtrip(RequestBody::Compact)? {
            ResponseBody::Compacted { generation, vertices } => Ok((generation, vertices)),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetch serving statistics.
    pub fn stats(&mut self) -> std::io::Result<StatsReply> {
        match self.session.roundtrip(RequestBody::Stats)? {
            ResponseBody::Stats(stats) => Ok(stats),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Fetch the endpoint's serving-topology description (protocol v4):
    /// single node, replica router, or shard router, plus the shard
    /// range when the endpoint serves a shard image.
    pub fn route_info(&mut self) -> std::io::Result<RouteReply> {
        match self.session.roundtrip(RequestBody::RouteInfo)? {
            ResponseBody::RouteInfo(route) => Ok(route),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }

    /// Ask the server to stop (requires the server to allow it).
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        match self.session.roundtrip(RequestBody::Shutdown)? {
            ResponseBody::Bye => Ok(()),
            ResponseBody::Error(msg) => Err(invalid(msg)),
            other => Err(invalid(format!("unexpected response {other:?}"))),
        }
    }
}
