//! The `HOPQ` wire protocol: length-prefixed binary frames.
//!
//! Every frame — request or response — starts with the same fixed
//! 18-byte header followed by a `payload_len`-byte payload:
//!
//! ```text
//! magic        4 bytes   "HOPQ" (request) / "HOPR" (response)
//! version      u8        1 through 4 (see "Versioning" below)
//! kind/status  u8        request kind, or response status
//! request id   u64 LE    echoed verbatim in the response
//! payload_len  u32 LE    bytes following the header (≤ MAX_PAYLOAD)
//! ```
//!
//! Request kinds and their payloads:
//!
//! | kind | name     | since | payload |
//! |------|----------|-------|---------|
//! | 1    | query    | v1    | `count u32 LE`, then `count` × (`s u32 LE`, `t u32 LE`) |
//! | 2    | swap     | v1    | empty — promote the server's configured swap path |
//! | 3    | stats    | v1    | empty |
//! | 4    | shutdown | v1    | empty — honoured only when the server allows it |
//! | 5    | update   | v2    | `count u32 LE`, then `count` × (`s u32 LE`, `t u32 LE`, `w u32 LE`) weighted edge insertions |
//! | 6    | info     | v2    | empty — extended serving/overlay statistics |
//! | 7    | compact  | v2    | empty — fold the overlay into a fresh frozen generation |
//! | 8    | route_info | v4  | empty — describe this endpoint's place in a serving topology |
//!
//! Response statuses: `0` = ok (payload depends on the request kind),
//! `1` = error (payload is a UTF-8 message). A query response carries
//! `count u32 LE` then `count` × `dist u32 LE` in input order, with
//! [`UNREACHABLE`] (`u32::MAX`, numerically equal to
//! `sfgraph::INF_DIST`) marking disconnected pairs.
//!
//! ## Versioning
//!
//! Version 2 is a *minor* bump that only adds frame kinds; every v1
//! frame is unchanged. Decoders accept any version in
//! `MIN_VERSION..=VERSION` and encoders mark each frame with the lowest
//! version that defines its kind — legacy kinds still go out as v1, so
//! a v2 client talking to a v1 server (or through a v1-only proxy)
//! keeps working for everything except the new kinds. A v2-only kind
//! arriving in a v1-marked frame is a *recoverable* `unsupported kind`
//! error: the frame was consumed whole, so the connection survives and
//! old clients get an error response instead of a slammed connection.
//! Versions outside the supported range remain fatal.
//!
//! Version 3 widens one payload: the `info` *response* grew durability
//! fields (WAL epoch/size, recovery and checkpoint counters — see
//! [`InfoReply`]) and is stamped v3; the `info` request is unchanged
//! and still goes out as v2. No other frame changed.
//!
//! Version 4 adds one kind: `route_info` (see [`RouteReply`]), the
//! topology exchange the scale-out router uses to learn each backend's
//! vertex count, direction, and — when the backend serves a pivot-range
//! shard image — its shard slot. Like the v2 bump it adds no wire
//! changes to existing kinds; a `route_info` frame marked with an older
//! version is a recoverable `unsupported kind` error.
//!
//! ## Pipelining
//!
//! The protocol is *pipelined by design*: the request id in every
//! header is chosen by the client and echoed verbatim in the matching
//! response, so a client may keep many requests in flight on one
//! connection without waiting for answers. Ordering guarantees:
//!
//! * Every well-formed request gets exactly one response carrying its
//!   id (recoverable violations get an error response with the id).
//! * Responses may arrive **out of order**: the epoll backend coalesces
//!   query frames from many connections into shared micro-batches, and
//!   batches complete independently. Clients must correlate by id
//!   (see `client::Session`), never by arrival order.
//! * The threaded backend happens to answer in order; clients must not
//!   rely on that.
//! * Servers cap the number of unanswered query frames per connection
//!   (default 128) and stop *reading* — not answering — beyond the cap,
//!   so a well-behaved pipelined client just sees backpressure.
//!
//! Id reuse while a request is still in flight is legal on the wire but
//! makes responses ambiguous to the client; `client::Session` always
//! allocates fresh ids.
//!
//! ## Error discipline
//!
//! Decoding distinguishes *recoverable* violations from *fatal* ones.
//! A frame whose header is well-formed but whose payload is invalid
//! (zero-pair batch, batch over the server limit, payload/count
//! mismatch, unknown kind) has already been consumed in full, so the
//! stream is still frame-aligned: the server answers with an error
//! response and keeps the connection. Bad magic, a version mismatch, a
//! declared length above [`MAX_PAYLOAD`], or EOF mid-frame leave the
//! stream unsynchronizable: the server sends a final error frame (id 0)
//! and closes. Nothing in this module panics on malformed input.
//!
//! Two decoding front ends share one payload parser: [`read_request`]
//! blocks on a stream (the threaded backend), while [`decode_request`]
//! consumes a byte buffer incrementally and reports `Incomplete` until
//! a whole frame has arrived (the epoll backend's per-connection read
//! buffer, where frames arrive split at arbitrary byte boundaries).

use extmem::wire;
use std::io::Read;

/// Request frame magic.
pub const REQ_MAGIC: [u8; 4] = *b"HOPQ";
/// Response frame magic.
pub const RESP_MAGIC: [u8; 4] = *b"HOPR";
/// Highest protocol version this build speaks. Frames are encoded with
/// the lowest version that defines their kind (see "Versioning").
pub const VERSION: u8 = 4;
/// Lowest protocol version still accepted on the wire.
pub const MIN_VERSION: u8 = 1;
/// Fixed frame header size: magic + version + kind + id + payload len.
pub const HEADER_LEN: usize = 18;
/// Hard cap on a declared payload length. A header announcing more is
/// treated as stream corruption (fatal), not as a large request — the
/// cap bounds the allocation a malicious or broken peer can force.
pub const MAX_PAYLOAD: u32 = 1 << 24;
/// Distance value marking an unreachable pair in query responses
/// (numerically identical to `sfgraph::INF_DIST`).
pub const UNREACHABLE: u32 = u32::MAX;
/// Default cap on pairs per query request (servers may lower it).
pub const DEFAULT_MAX_BATCH: usize = 1 << 16;

const KIND_QUERY: u8 = 1;
const KIND_SWAP: u8 = 2;
const KIND_STATS: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;
const KIND_UPDATE: u8 = 5;
const KIND_INFO: u8 = 6;
const KIND_COMPACT: u8 = 7;
const KIND_ROUTE_INFO: u8 = 8;

const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id echoed in the matching response.
    pub id: u64,
    /// What the client asked for.
    pub body: RequestBody,
}

/// The request kinds a client can send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestBody {
    /// Answer a batch of `(s, t)` distance queries.
    Query(Vec<(u32, u32)>),
    /// Promote the server's configured swap path to the serving index.
    Swap,
    /// Report serving statistics.
    Stats,
    /// Stop the server (honoured only when explicitly allowed).
    Shutdown,
    /// Insert a batch of weighted edges `(s, t, w)` into the live
    /// overlay (v2). Duplicate edges merge keeping the minimum weight.
    Update(Vec<(u32, u32, u32)>),
    /// Report extended serving and overlay statistics (v2).
    Info,
    /// Fold the overlay into a freshly built frozen generation and
    /// promote it (v2).
    Compact,
    /// Describe this endpoint's place in a serving topology (v4):
    /// single daemon, replica router, or shard router/backend.
    RouteInfo,
}

impl RequestBody {
    fn kind(&self) -> u8 {
        match self {
            RequestBody::Query(_) => KIND_QUERY,
            RequestBody::Swap => KIND_SWAP,
            RequestBody::Stats => KIND_STATS,
            RequestBody::Shutdown => KIND_SHUTDOWN,
            RequestBody::Update(_) => KIND_UPDATE,
            RequestBody::Info => KIND_INFO,
            RequestBody::Compact => KIND_COMPACT,
            RequestBody::RouteInfo => KIND_ROUTE_INFO,
        }
    }

    fn min_version(&self) -> u8 {
        match self {
            RequestBody::RouteInfo => 4,
            RequestBody::Update(_) | RequestBody::Info | RequestBody::Compact => 2,
            _ => 1,
        }
    }
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The id of the request this answers.
    pub id: u64,
    /// The answer.
    pub body: ResponseBody,
}

/// Serving statistics returned by a stats request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Monotone index generation (bumped by every promoted swap).
    pub generation: u64,
    /// Vertices covered by the serving index.
    pub vertices: u64,
    /// Whether the serving index is directed.
    pub directed: bool,
    /// Whether the index is fully resident (`FlatIndex`) as opposed to
    /// the disk-backed LRU fallback.
    pub resident: bool,
    /// Requests answered since boot (all kinds, errors included).
    pub requests: u64,
    /// Malformed frames seen since boot (recoverable and fatal).
    pub protocol_errors: u64,
}

/// Extended serving statistics returned by an info request (v2): the
/// extensible sibling of [`StatsReply`] that also describes the live
/// overlay, so scripts can watch ingest and poll for compaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InfoReply {
    /// Highest protocol version the server speaks.
    pub protocol: u8,
    /// Monotone index generation (bumped by swap and compaction).
    pub generation: u64,
    /// Vertices covered by the serving index.
    pub vertices: u64,
    /// Whether the serving index is directed.
    pub directed: bool,
    /// Whether the frozen index is fully resident in memory.
    pub resident: bool,
    /// Bytes the serving generation holds resident (frozen + overlay).
    pub resident_bytes: u64,
    /// Deduplicated edges currently in the overlay.
    pub overlay_edges: u64,
    /// Distinct vertices touched by overlay edges.
    pub overlay_affected: u64,
    /// Compactions promoted since boot.
    pub compactions: u64,
    /// Requests answered since boot (all kinds, errors included).
    pub requests: u64,
    /// Malformed frames seen since boot (recoverable and fatal).
    pub protocol_errors: u64,
    /// Fsync policy of the write-ahead log (v3): 0 = off, 1 = batch,
    /// 2 = always, [`DURABILITY_DISABLED`] = no WAL configured.
    pub durability: u8,
    /// Checkpoint epoch the WAL lineage is at (v3; 0 without a WAL).
    pub wal_epoch: u64,
    /// Update records in the live WAL file (v3).
    pub wal_records: u64,
    /// Byte length of the live WAL file, header included (v3).
    pub wal_bytes: u64,
    /// Update records replayed from the WAL at the last boot (v3).
    pub recovered_records: u64,
    /// Torn-tail/corrupt bytes discarded from the WAL at boot (v3).
    pub recovered_dropped_bytes: u64,
    /// Durable checkpoints published since boot (v3).
    pub checkpoints: u64,
    /// Compactions that aborted (superseding swap or build error)
    /// since boot (v3).
    pub aborted_compactions: u64,
}

/// [`InfoReply::durability`] value when the server runs without a WAL.
pub const DURABILITY_DISABLED: u8 = 255;

/// [`RouteReply::mode`]: a single daemon answering queries itself.
pub const ROUTE_SINGLE: u8 = 0;
/// [`RouteReply::mode`]: a router fanning query batches over replicas.
pub const ROUTE_REPLICA: u8 = 1;
/// [`RouteReply::mode`]: a router min-merging pivot-range shards.
pub const ROUTE_SHARD: u8 = 2;

/// Topology description returned by a route_info request (v4). The
/// scale-out router interrogates every backend with this at startup:
/// replica sets must agree on `vertices`/`directed`, and shard sets
/// must tile `[0, vertices)` with their `[shard_lo, shard_hi)` ranges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteReply {
    /// [`ROUTE_SINGLE`], [`ROUTE_REPLICA`], or [`ROUTE_SHARD`].
    pub mode: u8,
    /// Vertices covered by the serving index (the *full* vertex set —
    /// shard images keep the unsharded count).
    pub vertices: u64,
    /// Whether the serving index is directed.
    pub directed: bool,
    /// Current index generation at this endpoint.
    pub generation: u64,
    /// First pivot id owned, when serving a shard image (else 0).
    pub shard_lo: u32,
    /// One past the last owned pivot, when serving a shard image.
    pub shard_hi: u32,
    /// Shard slot in the partition, when serving a shard image.
    pub shard_index: u32,
    /// Shards in the partition; 0 = not serving a shard image.
    pub shard_count: u32,
    /// Whether the rank-space pruning invariant holds *and* queries
    /// arrive in rank ids (no `.rank` translation), so a router may
    /// skip shards with `shard_lo > min(s, t)`.
    pub rank_pruned: bool,
}

/// The response payloads a server can send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseBody {
    /// Per-pair distances in input order ([`UNREACHABLE`] = no path).
    Distances(Vec<u32>),
    /// A swap was promoted: the new generation and its vertex count.
    Swapped {
        /// Generation of the newly promoted index.
        generation: u64,
        /// Vertices covered by the newly promoted index.
        vertices: u64,
    },
    /// Serving statistics.
    Stats(StatsReply),
    /// The server accepted a shutdown request and is stopping.
    Bye,
    /// An update batch was applied to the overlay (v2).
    Updated {
        /// Generation the batch landed in (the one to query for it).
        generation: u64,
        /// Deduplicated overlay edges after applying the batch.
        overlay_edges: u64,
    },
    /// Extended serving statistics (v2).
    Info(InfoReply),
    /// A compaction was promoted (v2): scripts poll `stats`/`info`
    /// until they observe this generation.
    Compacted {
        /// Generation of the freshly built index.
        generation: u64,
        /// Vertices covered by the freshly built index.
        vertices: u64,
    },
    /// Serving-topology description (v4).
    RouteInfo(RouteReply),
    /// The request failed; the payload is a human-readable reason.
    Error(String),
}

impl ResponseBody {
    fn min_version(&self) -> u8 {
        match self {
            ResponseBody::RouteInfo(_) => 4,
            // The info payload gained durability fields in v3.
            ResponseBody::Info(_) => 3,
            ResponseBody::Updated { .. } | ResponseBody::Compacted { .. } => 2,
            _ => 1,
        }
    }
}

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// Clean EOF at a frame boundary: the peer closed the connection.
    Closed,
    /// The header was valid and the payload fully consumed, but its
    /// contents violate the protocol. The stream is still
    /// frame-aligned; the connection can continue after an error
    /// response carrying the echoed `id`.
    Bad {
        /// Request id from the offending frame's header.
        id: u64,
        /// What was wrong with the payload.
        msg: String,
    },
    /// The stream cannot be trusted to be frame-aligned any more (bad
    /// magic/version, oversized declared length, EOF mid-frame). The
    /// connection must be closed.
    Fatal(String),
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Bad { id, msg } => write!(f, "bad request {id}: {msg}"),
            ProtoError::Fatal(msg) => write!(f, "protocol violation: {msg}"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

fn put_header(
    buf: &mut Vec<u8>,
    magic: [u8; 4],
    version: u8,
    kind: u8,
    id: u64,
    payload_len: usize,
) {
    buf.extend_from_slice(&magic);
    buf.push(version);
    buf.push(kind);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
}

impl Request {
    /// Serialize this request into one wire frame, marked with the
    /// lowest protocol version that defines its kind.
    pub fn encode(&self) -> Vec<u8> {
        let payload: Vec<u8> = match &self.body {
            RequestBody::Query(pairs) => {
                let mut p = Vec::with_capacity(4 + 8 * pairs.len());
                p.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
                for &(s, t) in pairs {
                    p.extend_from_slice(&s.to_le_bytes());
                    p.extend_from_slice(&t.to_le_bytes());
                }
                p
            }
            RequestBody::Update(edges) => {
                let mut p = Vec::with_capacity(4 + 12 * edges.len());
                p.extend_from_slice(&(edges.len() as u32).to_le_bytes());
                for &(s, t, w) in edges {
                    p.extend_from_slice(&s.to_le_bytes());
                    p.extend_from_slice(&t.to_le_bytes());
                    p.extend_from_slice(&w.to_le_bytes());
                }
                p
            }
            RequestBody::Swap
            | RequestBody::Stats
            | RequestBody::Shutdown
            | RequestBody::Info
            | RequestBody::Compact
            | RequestBody::RouteInfo => Vec::new(),
        };
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        put_header(
            &mut buf,
            REQ_MAGIC,
            self.body.min_version(),
            self.body.kind(),
            self.id,
            payload.len(),
        );
        buf.extend_from_slice(&payload);
        buf
    }
}

impl Response {
    /// Serialize this response into one wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let (status, payload): (u8, Vec<u8>) = match &self.body {
            ResponseBody::Distances(dists) => {
                let mut p = Vec::with_capacity(4 + 4 * dists.len());
                p.extend_from_slice(&(dists.len() as u32).to_le_bytes());
                for &d in dists {
                    p.extend_from_slice(&d.to_le_bytes());
                }
                (STATUS_OK, p)
            }
            ResponseBody::Swapped { generation, vertices } => {
                let mut p = Vec::with_capacity(17);
                p.push(KIND_SWAP);
                p.extend_from_slice(&generation.to_le_bytes());
                p.extend_from_slice(&vertices.to_le_bytes());
                (STATUS_OK, p)
            }
            ResponseBody::Stats(s) => {
                let mut p = Vec::with_capacity(35);
                p.push(KIND_STATS);
                p.extend_from_slice(&s.generation.to_le_bytes());
                p.extend_from_slice(&s.vertices.to_le_bytes());
                p.push(s.directed as u8);
                p.push(s.resident as u8);
                p.extend_from_slice(&s.requests.to_le_bytes());
                p.extend_from_slice(&s.protocol_errors.to_le_bytes());
                (STATUS_OK, p)
            }
            ResponseBody::Bye => (STATUS_OK, vec![KIND_SHUTDOWN]),
            ResponseBody::Updated { generation, overlay_edges } => {
                let mut p = Vec::with_capacity(17);
                p.push(KIND_UPDATE);
                p.extend_from_slice(&generation.to_le_bytes());
                p.extend_from_slice(&overlay_edges.to_le_bytes());
                (STATUS_OK, p)
            }
            ResponseBody::Info(i) => {
                let mut p = Vec::with_capacity(125);
                p.push(KIND_INFO);
                p.push(i.protocol);
                p.extend_from_slice(&i.generation.to_le_bytes());
                p.extend_from_slice(&i.vertices.to_le_bytes());
                p.push(i.directed as u8);
                p.push(i.resident as u8);
                p.extend_from_slice(&i.resident_bytes.to_le_bytes());
                p.extend_from_slice(&i.overlay_edges.to_le_bytes());
                p.extend_from_slice(&i.overlay_affected.to_le_bytes());
                p.extend_from_slice(&i.compactions.to_le_bytes());
                p.extend_from_slice(&i.requests.to_le_bytes());
                p.extend_from_slice(&i.protocol_errors.to_le_bytes());
                p.push(i.durability);
                p.extend_from_slice(&i.wal_epoch.to_le_bytes());
                p.extend_from_slice(&i.wal_records.to_le_bytes());
                p.extend_from_slice(&i.wal_bytes.to_le_bytes());
                p.extend_from_slice(&i.recovered_records.to_le_bytes());
                p.extend_from_slice(&i.recovered_dropped_bytes.to_le_bytes());
                p.extend_from_slice(&i.checkpoints.to_le_bytes());
                p.extend_from_slice(&i.aborted_compactions.to_le_bytes());
                (STATUS_OK, p)
            }
            ResponseBody::Compacted { generation, vertices } => {
                let mut p = Vec::with_capacity(17);
                p.push(KIND_COMPACT);
                p.extend_from_slice(&generation.to_le_bytes());
                p.extend_from_slice(&vertices.to_le_bytes());
                (STATUS_OK, p)
            }
            ResponseBody::RouteInfo(r) => {
                // 37 bytes: deliberately not 4 + 4k, so the untagged
                // distance fallback in `read_response` can never
                // mistake it for a count-prefixed distance payload.
                let mut p = Vec::with_capacity(37);
                p.push(KIND_ROUTE_INFO);
                p.push(r.mode);
                p.push(r.directed as u8);
                p.push(r.rank_pruned as u8);
                p.extend_from_slice(&r.vertices.to_le_bytes());
                p.extend_from_slice(&r.generation.to_le_bytes());
                p.extend_from_slice(&r.shard_lo.to_le_bytes());
                p.extend_from_slice(&r.shard_hi.to_le_bytes());
                p.extend_from_slice(&r.shard_index.to_le_bytes());
                p.extend_from_slice(&r.shard_count.to_le_bytes());
                p.push(0); // reserved
                (STATUS_OK, p)
            }
            ResponseBody::Error(msg) => (STATUS_ERROR, msg.as_bytes().to_vec()),
        };
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        put_header(&mut buf, RESP_MAGIC, self.body.min_version(), status, self.id, payload.len());
        buf.extend_from_slice(&payload);
        buf
    }
}

/// Read one frame header + payload. Returns
/// `(version, kind, id, payload)`; `Closed` only on EOF before the
/// first header byte.
fn read_frame(
    r: &mut impl Read,
    expect_magic: [u8; 4],
) -> Result<(u8, u8, u64, Vec<u8>), ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish "no next frame" (clean close) from "EOF mid-header".
    match r.read(&mut header) {
        Ok(0) => return Err(ProtoError::Closed),
        Ok(mut got) => {
            while got < HEADER_LEN {
                let Some(rest) = header.get_mut(got..) else { break };
                match r.read(rest) {
                    Ok(0) => return Err(ProtoError::Fatal("truncated frame header".into())),
                    Ok(n) => got += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(ProtoError::Io(e)),
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_frame(r, expect_magic)
        }
        Err(e) => return Err(ProtoError::Io(e)),
    }
    // Irrefutable split of the 18 header bytes: magic, version, kind,
    // id, declared payload length. No indexing, so no panic path.
    let [m0, m1, m2, m3, version, kind, i0, i1, i2, i3, i4, i5, i6, i7, l0, l1, l2, l3] = header;
    if [m0, m1, m2, m3] != expect_magic {
        return Err(ProtoError::Fatal("bad frame magic".into()));
    }
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ProtoError::Fatal(format!(
            "unsupported protocol version {version} (want {MIN_VERSION}..={VERSION})"
        )));
    }
    let id = u64::from_le_bytes([i0, i1, i2, i3, i4, i5, i6, i7]);
    let payload_len = u32::from_le_bytes([l0, l1, l2, l3]);
    if payload_len > MAX_PAYLOAD {
        return Err(ProtoError::Fatal(format!(
            "declared payload length {payload_len} exceeds the {MAX_PAYLOAD}-byte cap"
        )));
    }
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Fatal("truncated frame payload".into())
        } else {
            ProtoError::Io(e)
        }
    })?;
    Ok((version, kind, id, payload))
}

/// Parse a fully-received request payload. Violations are reported as
/// `Err(message)` — recoverable, since the frame was consumed whole.
/// `version` is the frame header's version byte: v2 kinds inside a
/// v1-marked frame are rejected recoverably, which is what an old
/// server relaying a new client's frame reports too.
fn parse_request_payload(
    version: u8,
    kind: u8,
    payload: &[u8],
    max_batch: usize,
) -> Result<RequestBody, String> {
    if version < 2 && matches!(kind, KIND_UPDATE | KIND_INFO | KIND_COMPACT) {
        return Err(format!(
            "unsupported kind {kind} at protocol version {version} (needs version 2)"
        ));
    }
    if version < 4 && kind == KIND_ROUTE_INFO {
        return Err(format!(
            "unsupported kind {kind} at protocol version {version} (needs version 4)"
        ));
    }
    match kind {
        KIND_QUERY => {
            let Some(count) = wire::u32_at(payload, 0).map(|c| c as usize) else {
                return Err("query payload shorter than its pair count".into());
            };
            if count == 0 {
                return Err("query batch declares zero pairs".into());
            }
            if count > max_batch {
                return Err(format!("query batch of {count} pairs exceeds limit {max_batch}"));
            }
            if payload.len() != 4 + 8 * count {
                return Err(format!(
                    "query payload is {} bytes but {count} pairs need {}",
                    payload.len(),
                    4 + 8 * count
                ));
            }
            let mut words = wire::u32s(payload.get(4..).unwrap_or_default());
            let mut pairs = Vec::with_capacity(count);
            while let (Some(s), Some(t)) = (words.next(), words.next()) {
                pairs.push((s, t));
            }
            Ok(RequestBody::Query(pairs))
        }
        KIND_UPDATE => {
            let Some(count) = wire::u32_at(payload, 0).map(|c| c as usize) else {
                return Err("update payload shorter than its edge count".into());
            };
            if count == 0 {
                return Err("update batch declares zero edges".into());
            }
            if count > max_batch {
                return Err(format!("update batch of {count} edges exceeds limit {max_batch}"));
            }
            if payload.len() != 4 + 12 * count {
                return Err(format!(
                    "update payload is {} bytes but {count} edges need {}",
                    payload.len(),
                    4 + 12 * count
                ));
            }
            let mut words = wire::u32s(payload.get(4..).unwrap_or_default());
            let mut edges = Vec::with_capacity(count);
            while let (Some(s), Some(t), Some(w)) = (words.next(), words.next(), words.next()) {
                edges.push((s, t, w));
            }
            Ok(RequestBody::Update(edges))
        }
        KIND_SWAP | KIND_STATS | KIND_SHUTDOWN | KIND_INFO | KIND_COMPACT | KIND_ROUTE_INFO => {
            if !payload.is_empty() {
                return Err(format!("kind {kind} takes no payload, got {}", payload.len()));
            }
            Ok(match kind {
                KIND_SWAP => RequestBody::Swap,
                KIND_STATS => RequestBody::Stats,
                KIND_INFO => RequestBody::Info,
                KIND_COMPACT => RequestBody::Compact,
                KIND_ROUTE_INFO => RequestBody::RouteInfo,
                _ => RequestBody::Shutdown,
            })
        }
        other => Err(format!("unknown request kind {other}")),
    }
}

/// Decode one request frame from `r`, enforcing `max_batch` pairs per
/// query. Payload-level violations come back as recoverable
/// [`ProtoError::Bad`] values carrying the request id.
pub fn read_request(r: &mut impl Read, max_batch: usize) -> Result<Request, ProtoError> {
    let (version, kind, id, payload) = read_frame(r, REQ_MAGIC)?;
    match parse_request_payload(version, kind, &payload, max_batch) {
        Ok(body) => Ok(Request { id, body }),
        Err(msg) => Err(ProtoError::Bad { id, msg }),
    }
}

/// Outcome of trying to decode one request frame from the front of a
/// byte buffer (the nonblocking read path).
#[derive(Debug)]
pub enum Decoded {
    /// The buffer does not yet hold a whole frame; read more bytes and
    /// try again. Nothing was consumed.
    Incomplete,
    /// A well-formed request: consume `used` bytes.
    Request {
        /// The decoded request.
        request: Request,
        /// Bytes of the buffer this frame occupied.
        used: usize,
    },
    /// A complete frame with an invalid payload (recoverable): consume
    /// `used` bytes, answer with an error response, keep the stream.
    Bad {
        /// Request id from the offending frame's header.
        id: u64,
        /// What was wrong with the payload.
        msg: String,
        /// Bytes of the buffer this frame occupied.
        used: usize,
    },
    /// Stream corruption (bad magic/version, oversized declared
    /// length): send a final error frame and close.
    Fatal(String),
}

/// Incrementally decode one request frame from the front of `buf`.
///
/// Mirrors [`read_request`]'s error discipline exactly, but never
/// blocks: with fewer bytes than one whole frame it returns
/// [`Decoded::Incomplete`] and consumes nothing. Header-level
/// violations (magic, version, declared length over [`MAX_PAYLOAD`])
/// are detected as soon as the relevant bytes are present, before the
/// payload arrives.
pub fn decode_request(buf: &[u8], max_batch: usize) -> Decoded {
    // Validate the prefix eagerly: a bad magic or version is fatal on
    // byte 4, not after a full header straggles in.
    if let Some(magic) = buf.first_chunk::<4>() {
        if *magic != REQ_MAGIC {
            return Decoded::Fatal("bad frame magic".into());
        }
    }
    if let Some(&early_version) = buf.get(4) {
        if !(MIN_VERSION..=VERSION).contains(&early_version) {
            return Decoded::Fatal(format!(
                "unsupported protocol version {early_version} (want {MIN_VERSION}..={VERSION})"
            ));
        }
    }
    let Some(header) = buf.first_chunk::<HEADER_LEN>() else {
        return Decoded::Incomplete;
    };
    let [_, _, _, _, version, kind, i0, i1, i2, i3, i4, i5, i6, i7, l0, l1, l2, l3] = *header;
    let id = u64::from_le_bytes([i0, i1, i2, i3, i4, i5, i6, i7]);
    let payload_len = u32::from_le_bytes([l0, l1, l2, l3]);
    if payload_len > MAX_PAYLOAD {
        return Decoded::Fatal(format!(
            "declared payload length {payload_len} exceeds the {MAX_PAYLOAD}-byte cap"
        ));
    }
    let used = HEADER_LEN + payload_len as usize;
    let Some(payload) = buf.get(HEADER_LEN..used) else {
        return Decoded::Incomplete;
    };
    match parse_request_payload(version, kind, payload, max_batch) {
        Ok(body) => Decoded::Request { request: Request { id, body }, used },
        Err(msg) => Decoded::Bad { id, msg, used },
    }
}

/// Decode one response frame from `r`. Malformed responses are always
/// fatal on the client side — a client has no one to report them to.
pub fn read_response(r: &mut impl Read) -> Result<Response, ProtoError> {
    let (_version, status, id, payload) = read_frame(r, RESP_MAGIC)?;
    let bad = |msg: &str| ProtoError::Fatal(msg.to_string());
    let body = match status {
        STATUS_ERROR => ResponseBody::Error(String::from_utf8_lossy(&payload).into_owned()),
        STATUS_OK => {
            // Ok payloads for the empty-bodied kinds are tagged with
            // the request kind so the stream stays self-describing.
            // Each arm's length guard makes the field reads below it
            // infallible, but the reads are total anyway: a guard
            // edited out of step with its fields surfaces as this
            // fatal error, never a slice-index panic.
            let short = || bad("ok response payload shorter than its declared layout");
            let u8f = |at: usize| wire::u8_at(&payload, at).ok_or_else(short);
            let u32f = |at: usize| wire::u32_at(&payload, at).ok_or_else(short);
            let u64f = |at: usize| wire::u64_at(&payload, at).ok_or_else(short);
            match payload.first() {
                None => return Err(bad("empty ok response payload")),
                Some(&KIND_SWAP) if payload.len() == 17 => {
                    ResponseBody::Swapped { generation: u64f(1)?, vertices: u64f(9)? }
                }
                Some(&KIND_STATS) if payload.len() == 35 => ResponseBody::Stats(StatsReply {
                    generation: u64f(1)?,
                    vertices: u64f(9)?,
                    directed: u8f(17)? != 0,
                    resident: u8f(18)? != 0,
                    requests: u64f(19)?,
                    protocol_errors: u64f(27)?,
                }),
                Some(&KIND_SHUTDOWN) if payload.len() == 1 => ResponseBody::Bye,
                Some(&KIND_UPDATE) if payload.len() == 17 => {
                    ResponseBody::Updated { generation: u64f(1)?, overlay_edges: u64f(9)? }
                }
                Some(&KIND_INFO) if payload.len() == 125 => ResponseBody::Info(InfoReply {
                    protocol: u8f(1)?,
                    generation: u64f(2)?,
                    vertices: u64f(10)?,
                    directed: u8f(18)? != 0,
                    resident: u8f(19)? != 0,
                    resident_bytes: u64f(20)?,
                    overlay_edges: u64f(28)?,
                    overlay_affected: u64f(36)?,
                    compactions: u64f(44)?,
                    requests: u64f(52)?,
                    protocol_errors: u64f(60)?,
                    durability: u8f(68)?,
                    wal_epoch: u64f(69)?,
                    wal_records: u64f(77)?,
                    wal_bytes: u64f(85)?,
                    recovered_records: u64f(93)?,
                    recovered_dropped_bytes: u64f(101)?,
                    checkpoints: u64f(109)?,
                    aborted_compactions: u64f(117)?,
                }),
                Some(&KIND_COMPACT) if payload.len() == 17 => {
                    ResponseBody::Compacted { generation: u64f(1)?, vertices: u64f(9)? }
                }
                Some(&KIND_ROUTE_INFO) if payload.len() == 37 => {
                    ResponseBody::RouteInfo(RouteReply {
                        mode: u8f(1)?,
                        directed: u8f(2)? != 0,
                        rank_pruned: u8f(3)? != 0,
                        vertices: u64f(4)?,
                        generation: u64f(12)?,
                        shard_lo: u32f(20)?,
                        shard_hi: u32f(24)?,
                        shard_index: u32f(28)?,
                        shard_count: u32f(32)?,
                    })
                }
                _ => {
                    // Distances: count-prefixed u32s. The tag bytes of
                    // the variants above cannot collide because a
                    // distance payload is always 4 + 4k bytes with a
                    // leading LE count — re-parse as such (a 17-, 35-,
                    // 37-, or 125-byte payload is never 4 + 4k with a
                    // matching count whose low byte equals the tag).
                    let Some(count) = wire::u32_at(&payload, 0).map(|c| c as usize) else {
                        return Err(bad("ok response payload too short"));
                    };
                    if payload.len() != 4 + 4 * count {
                        return Err(bad("distance payload length mismatch"));
                    }
                    ResponseBody::Distances(
                        wire::u32s(payload.get(4..).unwrap_or_default()).collect(),
                    )
                }
            }
        }
        other => return Err(ProtoError::Fatal(format!("unknown response status {other}"))),
    };
    Ok(Response { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrip_all_kinds() {
        for body in [
            RequestBody::Query(vec![(0, 1), (7, 7), (u32::MAX - 1, 3)]),
            RequestBody::Swap,
            RequestBody::Stats,
            RequestBody::Shutdown,
            RequestBody::Update(vec![(0, 9, 1), (5, 2, u32::MAX)]),
            RequestBody::Info,
            RequestBody::Compact,
            RequestBody::RouteInfo,
        ] {
            let req = Request { id: 0xDEAD_BEEF_0BAD_CAFE, body };
            let bytes = req.encode();
            let got = read_request(&mut Cursor::new(&bytes), 1 << 16).unwrap();
            assert_eq!(got, req);
        }
    }

    #[test]
    fn response_roundtrip_all_kinds() {
        for body in [
            ResponseBody::Distances(vec![0, 5, UNREACHABLE]),
            ResponseBody::Swapped { generation: 3, vertices: 1000 },
            ResponseBody::Stats(StatsReply {
                generation: 2,
                vertices: 42,
                directed: true,
                resident: false,
                requests: 17,
                protocol_errors: 3,
            }),
            ResponseBody::Bye,
            ResponseBody::Updated { generation: 4, overlay_edges: 12 },
            ResponseBody::Info(InfoReply {
                protocol: VERSION,
                generation: 9,
                vertices: 777,
                directed: false,
                resident: true,
                resident_bytes: 1 << 20,
                overlay_edges: 3,
                overlay_affected: 5,
                compactions: 2,
                requests: 1000,
                protocol_errors: 1,
                durability: 2,
                wal_epoch: 6,
                wal_records: 40,
                wal_bytes: 4096,
                recovered_records: 7,
                recovered_dropped_bytes: 13,
                checkpoints: 3,
                aborted_compactions: 1,
            }),
            ResponseBody::Compacted { generation: 5, vertices: 888 },
            ResponseBody::RouteInfo(RouteReply {
                mode: ROUTE_SHARD,
                vertices: 4096,
                directed: true,
                generation: 11,
                shard_lo: 16,
                shard_hi: 900,
                shard_index: 1,
                shard_count: 4,
                rank_pruned: true,
            }),
            ResponseBody::Error("nope".into()),
        ] {
            let resp = Response { id: 99, body };
            let bytes = resp.encode();
            let got = read_response(&mut Cursor::new(&bytes)).unwrap();
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn eof_at_boundary_is_closed_mid_header_is_fatal() {
        assert!(matches!(read_request(&mut Cursor::new(&[]), 16), Err(ProtoError::Closed)));
        let frame = Request { id: 1, body: RequestBody::Stats }.encode();
        for cut in 1..HEADER_LEN {
            let r = read_request(&mut Cursor::new(&frame[..cut]), 16);
            assert!(matches!(r, Err(ProtoError::Fatal(_))), "cut at {cut}: {r:?}");
        }
    }

    #[test]
    fn zero_pair_batch_is_recoverable() {
        let frame = Request { id: 7, body: RequestBody::Query(vec![]) }.encode();
        match read_request(&mut Cursor::new(&frame), 16) {
            Err(ProtoError::Bad { id: 7, msg }) => assert!(msg.contains("zero pairs"), "{msg}"),
            other => panic!("want Bad, got {other:?}"),
        }
    }

    #[test]
    fn incremental_decode_matches_blocking_at_every_prefix() {
        for body in [
            RequestBody::Query(vec![(0, 1), (7, 7), (u32::MAX - 1, 3)]),
            RequestBody::Swap,
            RequestBody::Stats,
            RequestBody::Shutdown,
            RequestBody::Update(vec![(0, 9, 1), (5, 2, 3)]),
            RequestBody::Info,
            RequestBody::Compact,
            RequestBody::RouteInfo,
        ] {
            let req = Request { id: 0x0123_4567_89AB_CDEF, body };
            let frame = req.encode();
            // Every strict prefix is Incomplete; the full frame decodes.
            for cut in 0..frame.len() {
                assert!(
                    matches!(decode_request(&frame[..cut], 1 << 16), Decoded::Incomplete),
                    "prefix of {cut} bytes must be Incomplete"
                );
            }
            match decode_request(&frame, 1 << 16) {
                Decoded::Request { request, used } => {
                    assert_eq!(request, req);
                    assert_eq!(used, frame.len());
                }
                other => panic!("want Request, got {other:?}"),
            }
            // Trailing bytes of the next frame must not disturb it.
            let mut two = frame.clone();
            two.extend_from_slice(&frame[..7]);
            match decode_request(&two, 1 << 16) {
                Decoded::Request { used, .. } => assert_eq!(used, frame.len()),
                other => panic!("want Request, got {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_decode_flags_header_violations_early() {
        assert!(matches!(decode_request(b"HTTP", 16), Decoded::Fatal(_)), "magic at 4 bytes");
        assert!(matches!(decode_request(b"HOP", 16), Decoded::Incomplete));
        let mut bad_version = REQ_MAGIC.to_vec();
        bad_version.push(99);
        assert!(matches!(decode_request(&bad_version, 16), Decoded::Fatal(_)));
        // Oversized declared payload: fatal with just the header.
        let mut frame = Vec::new();
        put_header(&mut frame, REQ_MAGIC, VERSION, KIND_QUERY, 1, (MAX_PAYLOAD + 1) as usize);
        assert!(matches!(decode_request(&frame, 16), Decoded::Fatal(_)));
    }

    #[test]
    fn v2_kinds_in_a_v1_frame_are_recoverable_unsupported_kind() {
        for body in [RequestBody::Update(vec![(1, 2, 3)]), RequestBody::Info, RequestBody::Compact]
        {
            let mut frame = Request { id: 11, body }.encode();
            assert_eq!(frame[4], 2, "v2 kinds must be marked v2");
            frame[4] = 1;
            match read_request(&mut Cursor::new(&frame), 16) {
                Err(ProtoError::Bad { id: 11, msg }) => {
                    assert!(msg.contains("unsupported kind"), "{msg}")
                }
                other => panic!("want recoverable Bad, got {other:?}"),
            }
            match decode_request(&frame, 16) {
                Decoded::Bad { id: 11, msg, used } => {
                    assert!(msg.contains("unsupported kind"), "{msg}");
                    assert_eq!(used, frame.len());
                }
                other => panic!("want recoverable Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn v4_kind_in_an_older_frame_is_recoverable_unsupported_kind() {
        let mut frame = Request { id: 21, body: RequestBody::RouteInfo }.encode();
        assert_eq!(frame[4], 4, "route_info must be marked v4");
        for older in 1..4u8 {
            frame[4] = older;
            match read_request(&mut Cursor::new(&frame), 16) {
                Err(ProtoError::Bad { id: 21, msg }) => {
                    assert!(msg.contains("unsupported kind"), "{msg}")
                }
                other => panic!("v{older}: want recoverable Bad, got {other:?}"),
            }
            match decode_request(&frame, 16) {
                Decoded::Bad { id: 21, msg, used } => {
                    assert!(msg.contains("unsupported kind"), "{msg}");
                    assert_eq!(used, frame.len());
                }
                other => panic!("v{older}: want recoverable Bad, got {other:?}"),
            }
        }
    }

    #[test]
    fn legacy_kinds_still_encode_as_version_1() {
        for body in [RequestBody::Query(vec![(1, 2)]), RequestBody::Swap, RequestBody::Stats] {
            assert_eq!(Request { id: 1, body }.encode()[4], 1);
        }
        assert_eq!(Response { id: 1, body: ResponseBody::Bye }.encode()[4], 1);
        assert_eq!(
            Response { id: 1, body: ResponseBody::Updated { generation: 1, overlay_edges: 0 } }
                .encode()[4],
            2
        );
        assert_eq!(
            Response { id: 1, body: ResponseBody::Info(InfoReply::default()) }.encode()[4],
            3
        );
    }

    #[test]
    fn incremental_decode_bad_payload_is_recoverable_with_length() {
        let frame = Request { id: 9, body: RequestBody::Query(vec![]) }.encode();
        match decode_request(&frame, 16) {
            Decoded::Bad { id: 9, msg, used } => {
                assert!(msg.contains("zero pairs"), "{msg}");
                assert_eq!(used, frame.len());
            }
            other => panic!("want Bad, got {other:?}"),
        }
    }
}
