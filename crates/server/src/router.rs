//! The scale-out router: one `HOPQ`/HTTP endpoint fanning query batches
//! across N backend daemons.
//!
//! Two modes, one reactor:
//!
//! * **replica** — every backend serves the *same* index image. Query
//!   batches are load-balanced to the least-loaded backend (round-robin
//!   tiebreak); a transport failure mid-batch fails over to the next
//!   replica (queries are idempotent), so killing one of N replicas
//!   loses no accepted query. Update batches are validated once at the
//!   router, then applied to *every* replica behind a dispatch barrier:
//!   no later job is dispatched until all replicas acked, so queries
//!   submitted after an update observe it on whichever replica answers
//!   them. Rolling generation swaps are *not* routed — operators drive
//!   `admin swap`/`admin compact` against each backend in turn while
//!   the router keeps serving.
//!
//! * **shard** — each backend serves one pivot-range shard split by
//!   `hopdb-cli shard` ([`hoplabels::shard`]). A 2-hop answer is the
//!   minimum over common pivots, so per-shard answers min-merge back to
//!   the exact unsharded answer. The router broadcasts each pair to
//!   every shard whose pivot range could hold the winning pivot (all of
//!   them, or — when every shard reports `rank_pruned` — only shards
//!   with `lo <= min(s, t)`), and folds the parts with
//!   [`hoplabels::shard::min_merge`] semantics. Shard routers reject
//!   updates: mutate the source graph and re-shard instead.
//!
//! The front end reuses the epoll machinery of the single-node daemon —
//! [`crate::reactor`] for readiness, [`crate::conn`] for framing (HOPQ
//! and HTTP alike), [`crate::batch`] for adaptive micro-batching — so a
//! router endpoint is wire-compatible with a plain daemon for queries,
//! stats, `route_info`, and (replica mode) updates. Topology is probed
//! once at startup via the protocol-v4 `route_info` frame and validated
//! hard: replicas must agree on vertex count and direction; shards must
//! tile the pivot space exactly.
//!
//! ```text
//! reactor thread          dispatcher thread           worker threads (1/backend)
//!   epoll_wait              Batcher::next_batch          own Client per backend
//!   cut frames     ──────►    coalesce + range-check      (plus failover clients)
//!   answer stats/             replica: least-inflight ──► query / failover
//!   route_info inline         shard: split + ShardMerge ► query part, min-merge
//!   flush responses ◄──────────── Completions + eventfd wake ◄──┘
//! ```

use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sfgraph::{Dist, INF_DIST};

use crate::batch::{Batcher, Completion, Completions, Job, RespondAs, UpdateRespond};
use crate::client::Client;
use crate::conn::{Conn, ConnRequest, ConnState, Mode};
use crate::http::{self, HttpRequest};
use crate::proto::{
    RequestBody, Response, ResponseBody, RouteReply, StatsReply, ROUTE_REPLICA, ROUTE_SHARD,
    ROUTE_SINGLE,
};
use crate::reactor::{Event, Poller, WakeFd, EV_READ, EV_WRITE};
use crate::server::validate_update_edges;

/// How the router spreads work across its backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteMode {
    /// Every backend serves the same image; batches load-balance.
    Replica,
    /// Each backend serves one pivot-range shard; answers min-merge.
    Shard,
}

impl std::str::FromStr for RouteMode {
    type Err = String;

    fn from_str(s: &str) -> Result<RouteMode, String> {
        match s {
            "replica" => Ok(RouteMode::Replica),
            "shard" => Ok(RouteMode::Shard),
            other => Err(format!("unknown route mode '{other}' (want replica or shard)")),
        }
    }
}

/// Tunables for [`serve_router`]. The serving knobs mirror
/// [`crate::ServerConfig`]'s epoll knobs; the connect knobs govern the
/// startup probe and per-worker backend connections.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Replica fan-out or shard fan-out.
    pub mode: RouteMode,
    /// Backend daemon addresses (shard mode: one per shard, any order —
    /// ownership comes from each backend's `.shard` sidecar).
    pub backends: Vec<SocketAddr>,
    /// Pairs accepted per query request.
    pub max_batch: usize,
    /// Longest a queued query waits (µs) for company before its
    /// micro-batch flushes anyway.
    pub flush_us: u64,
    /// Queued pair count that flushes a micro-batch immediately.
    pub coalesce_pairs: usize,
    /// Unanswered frames per connection before the router stops
    /// reading that connection.
    pub max_inflight: usize,
    /// Evict connections idle longer than this many ms (0 = never).
    pub idle_timeout_ms: u64,
    /// Honour remote shutdown frames (stops the router, not backends).
    pub allow_shutdown: bool,
    /// TCP connect timeout per backend; also installed as each backend
    /// connection's I/O timeout so a hung backend surfaces as
    /// `TimedOut` and fails over instead of wedging a worker.
    pub connect_timeout: Duration,
    /// Extra connect attempts during the startup probe (backends may
    /// still be booting when the router starts).
    pub connect_retries: u32,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            mode: RouteMode::Replica,
            backends: Vec::new(),
            max_batch: crate::proto::DEFAULT_MAX_BATCH,
            flush_us: 100,
            coalesce_pairs: 4096,
            max_inflight: 128,
            idle_timeout_ms: 0,
            allow_shutdown: false,
            connect_timeout: Duration::from_secs(5),
            connect_retries: 20,
        }
    }
}

/// One backend's place in the topology.
#[derive(Clone, Copy, Debug)]
struct BackendSlot {
    addr: SocketAddr,
    /// Owned pivot range `[lo, hi)` (shard mode; zeros in replica mode).
    lo: u32,
    #[allow(dead_code)]
    hi: u32,
}

/// What the startup probe learned (constant for the router's lifetime).
struct Topology {
    vertices: u64,
    directed: bool,
    /// Highest backend generation observed at boot (stats only).
    generation: u64,
    /// Shard mode: every shard kept the `pivot <= vertex` invariant and
    /// serves rank-space ids, so pairs route only to shards with
    /// `lo <= min(s, t)`. Always false in replica mode.
    rank_pruned: bool,
    slots: Vec<BackendSlot>,
}

/// Hooks `begin_stop` uses to reach the running reactor.
struct RouterCtl {
    wake: Arc<WakeFd>,
    batcher: Arc<Batcher>,
}

struct RouterShared {
    config: RouterConfig,
    topology: Topology,
    local_addr: SocketAddr,
    stop: AtomicBool,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    /// Batches answered by a replica other than the first pick, plus
    /// shard-part retries — the kill-one-replica observable.
    failovers: AtomicU64,
    ctl: OnceLock<RouterCtl>,
}

impl RouterShared {
    fn begin_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(ctl) = self.ctl.get() {
            ctl.batcher.stop();
            ctl.wake.wake();
        }
    }
}

/// A running router. Dropping the handle does not stop it; call
/// [`RouterHandle::shutdown`].
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    workers: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address the listener actually bound (resolves `:0` ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Batches that failed over to another replica (or retried a shard
    /// backend) because of a transport failure.
    pub fn failovers(&self) -> u64 {
        self.shared.failovers.load(Ordering::Relaxed)
    }

    /// Ask the router to stop and wait for every thread to exit.
    /// Backends keep running.
    pub fn shutdown(mut self) {
        self.shared.begin_stop();
        self.join_all();
    }

    /// Block until the router stops (e.g. a remote shutdown frame).
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn other(msg: String) -> std::io::Error {
    std::io::Error::other(msg)
}

fn error(id: u64, msg: &str) -> Response {
    Response { id, body: ResponseBody::Error(msg.to_string()) }
}

/// Bind `addr`, probe and validate the backend topology, and start
/// routing. Returns once the listener is bound and every backend
/// answered the `route_info` probe.
pub fn serve_router(
    addr: impl ToSocketAddrs,
    config: RouterConfig,
) -> std::io::Result<RouterHandle> {
    if config.backends.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a router needs at least one --backends address",
        ));
    }
    let topology = probe_topology(&config)?;
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let poller = Poller::new(256)?;
    let wake = Arc::new(WakeFd::new()?);
    let batcher = Arc::new(Batcher::new());
    let completions = Arc::new(Completions::new(Arc::clone(&wake)));
    poller.register(&listener, EV_READ, TOKEN_LISTENER)?;
    poller.register(&*wake, EV_READ, TOKEN_WAKER)?;
    let shared = Arc::new(RouterShared {
        config,
        topology,
        local_addr,
        stop: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        ctl: OnceLock::new(),
    });
    let _ = shared.ctl.set(RouterCtl { wake: Arc::clone(&wake), batcher: Arc::clone(&batcher) });

    let mut workers = Vec::new();
    let mut ports = Vec::new();
    for index in 0..shared.topology.slots.len() {
        let (tx, rx) = mpsc::channel::<WorkItem>();
        let depth = Arc::new(AtomicUsize::new(0));
        ports.push(WorkerPort { tx, depth: Arc::clone(&depth) });
        let (shared, completions) = (Arc::clone(&shared), Arc::clone(&completions));
        workers.push(std::thread::spawn(move || {
            worker_loop(&shared, &completions, index, &depth, &rx)
        }));
    }
    let dispatcher = {
        let (shared, batcher, completions) =
            (Arc::clone(&shared), Arc::clone(&batcher), Arc::clone(&completions));
        std::thread::spawn(move || dispatcher_loop(&shared, &batcher, &completions, ports))
    };
    let reactor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            Reactor {
                shared,
                poller,
                wake,
                batcher,
                completions,
                listener,
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                draining_since: None,
            }
            .run()
        })
    };
    let mut all = vec![reactor, dispatcher];
    all.extend(workers);
    Ok(RouterHandle { shared, workers: all })
}

/// Connect to every backend, fetch its `route_info`, and validate that
/// the set forms a coherent serving topology for the requested mode.
fn probe_topology(config: &RouterConfig) -> std::io::Result<Topology> {
    let mut infos: Vec<RouteReply> = Vec::new();
    for addr in &config.backends {
        let mut client =
            Client::connect_retry(addr, Some(config.connect_timeout), config.connect_retries)
                .map_err(|e| other(format!("backend {addr}: connect: {e}")))?;
        let info =
            client.route_info().map_err(|e| other(format!("backend {addr}: route_info: {e}")))?;
        if info.mode != ROUTE_SINGLE {
            return Err(other(format!(
                "backend {addr} is itself a router (mode {}); routers do not stack",
                info.mode
            )));
        }
        infos.push(info);
    }
    let first = infos[0];
    for (addr, info) in config.backends.iter().zip(&infos) {
        if info.vertices != first.vertices || info.directed != first.directed {
            return Err(other(format!(
                "backend {addr} serves {} vertices (directed={}) but backend {} serves {} \
                 (directed={}) — every backend must come from the same image",
                info.vertices, info.directed, config.backends[0], first.vertices, first.directed
            )));
        }
    }
    let slots = match config.mode {
        RouteMode::Replica => {
            for (addr, info) in config.backends.iter().zip(&infos) {
                if info.shard_count != 0 {
                    return Err(other(format!(
                        "backend {addr} serves shard {}/{} — use --route shard",
                        info.shard_index, info.shard_count
                    )));
                }
            }
            config.backends.iter().map(|&addr| BackendSlot { addr, lo: 0, hi: 0 }).collect()
        }
        RouteMode::Shard => {
            let k = config.backends.len() as u32;
            let mut seen = vec![false; k as usize];
            for (addr, info) in config.backends.iter().zip(&infos) {
                if info.shard_count != k {
                    return Err(other(format!(
                        "backend {addr} carries a {}-way shard map but {k} backends were given",
                        info.shard_count
                    )));
                }
                if info.shard_index >= k || seen[info.shard_index as usize] {
                    return Err(other(format!(
                        "backend {addr} claims shard slot {} twice or out of range",
                        info.shard_index
                    )));
                }
                seen[info.shard_index as usize] = true;
            }
            let mut ranges: Vec<(u32, u32)> =
                infos.iter().map(|i| (i.shard_lo, i.shard_hi)).collect();
            ranges.sort_unstable();
            let mut expect = 0u32;
            for &(lo, hi) in &ranges {
                if lo != expect {
                    return Err(other(format!(
                        "shard ranges do not tile the pivot space: \
                         range starts at {lo}, expected {expect}"
                    )));
                }
                expect = hi;
            }
            if u64::from(expect) != first.vertices {
                return Err(other(format!(
                    "shard ranges stop at pivot {expect} but the image has {} vertices",
                    first.vertices
                )));
            }
            config
                .backends
                .iter()
                .zip(&infos)
                .map(|(&addr, info)| BackendSlot { addr, lo: info.shard_lo, hi: info.shard_hi })
                .collect()
        }
    };
    let rank_pruned = config.mode == RouteMode::Shard && infos.iter().all(|i| i.rank_pruned);
    Ok(Topology {
        vertices: first.vertices,
        directed: first.directed,
        generation: infos.iter().map(|i| i.generation).max().unwrap_or(0),
        rank_pruned,
        slots,
    })
}

// ---------------------------------------------------------------------
// Dispatcher + workers
// ---------------------------------------------------------------------

/// One executable query job: (connection token, response encoding,
/// query pairs).
type QueryJob = (u64, RespondAs, Vec<(u32, u32)>);

/// A coalesced batch ready to fan out: per-job plan entries index into
/// the combined pair vector, exactly like the single-node executor.
struct BatchWork {
    jobs: Vec<QueryJob>,
    /// `(job index, offset into combined, pair count)`.
    plan: Vec<(usize, usize, usize)>,
    combined: Vec<(u32, u32)>,
}

/// Work handed from the dispatcher to a backend worker.
enum WorkItem {
    /// Replica mode: answer the whole batch on this worker's backend,
    /// failing over to the others on transport errors.
    Replica(BatchWork),
    /// Shard mode: query this worker's pair slice and fold it into the
    /// shared merge.
    Shard { pairs: Vec<(u32, u32)>, positions: Vec<usize>, merge: Arc<ShardMerge> },
    /// Replica mode: apply an update batch to this worker's backend.
    Update { edges: Arc<Vec<(u32, u32, u32)>>, done: mpsc::Sender<Result<(u64, u64), String>> },
}

struct WorkerPort {
    tx: mpsc::Sender<WorkItem>,
    /// Queued-but-unfinished items: the least-inflight routing signal.
    depth: Arc<AtomicUsize>,
}

fn send(port: &WorkerPort, item: WorkItem) {
    port.depth.fetch_add(1, Ordering::Relaxed);
    if port.tx.send(item).is_err() {
        port.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Cross-shard min-merge state for one batch: the last part to land
/// completes every job (or fails them all if any shard was unreachable).
struct ShardMerge {
    work: BatchWork,
    completions: Arc<Completions>,
    acc: Mutex<MergeAcc>,
}

struct MergeAcc {
    dists: Vec<Dist>,
    pending: usize,
    failed: Option<String>,
}

impl ShardMerge {
    fn fold(&self, part: Result<(Vec<usize>, Vec<Dist>), String>) {
        let mut acc = match self.acc.lock() {
            Ok(acc) => acc,
            Err(poisoned) => poisoned.into_inner(),
        };
        match part {
            Ok((positions, dists)) => {
                for (&pos, &d) in positions.iter().zip(&dists) {
                    if d < acc.dists[pos] {
                        acc.dists[pos] = d;
                    }
                }
            }
            Err(e) => {
                if acc.failed.is_none() {
                    acc.failed = Some(e);
                }
            }
        }
        acc.pending -= 1;
        if acc.pending == 0 {
            let failed = acc.failed.take();
            let dists = std::mem::take(&mut acc.dists);
            drop(acc);
            match failed {
                None => complete_queries(&self.completions, &self.work, &dists),
                Some(e) => fail_queries(&self.completions, &self.work, &e),
            }
        }
    }
}

fn dispatcher_loop(
    shared: &Arc<RouterShared>,
    batcher: &Batcher,
    completions: &Arc<Completions>,
    ports: Vec<WorkerPort>,
) {
    let flush_after = Duration::from_micros(shared.config.flush_us.max(1));
    let coalesce = shared.config.coalesce_pairs.max(1);
    let mut rr = 0usize;
    while let Some(jobs) = batcher.next_batch(coalesce, flush_after) {
        let mut queries: Vec<QueryJob> = Vec::new();
        for job in jobs {
            match job {
                Job::Query { conn, respond, pairs } => queries.push((conn, respond, pairs)),
                Job::Update { conn, respond, edges } => {
                    // Queries queued before the update answer on the
                    // pre-update overlay of whichever replica holds
                    // them; the barrier below orders everything later.
                    dispatch_queries(
                        shared,
                        completions,
                        &ports,
                        &mut rr,
                        std::mem::take(&mut queries),
                    );
                    dispatch_update(shared, completions, &ports, conn, respond, edges);
                }
                Job::Swap { conn, id } => {
                    // The reactor answers swaps inline; defensive only.
                    completions.push(Completion {
                        conn,
                        bytes: error(id, MSG_SWAP_NOT_ROUTED).encode(),
                        answered: 1,
                        close_after: false,
                    });
                }
            }
        }
        dispatch_queries(shared, completions, &ports, &mut rr, queries);
    }
}

fn dispatch_queries(
    shared: &RouterShared,
    completions: &Arc<Completions>,
    ports: &[WorkerPort],
    rr: &mut usize,
    jobs: Vec<QueryJob>,
) {
    if jobs.is_empty() {
        return;
    }
    let n = shared.topology.vertices;
    // Range-check per job so one bad frame can't fail its batchmates.
    let mut combined: Vec<(u32, u32)> = Vec::new();
    let mut plan: Vec<(usize, usize, usize)> = Vec::new();
    for (i, (conn, respond, pairs)) in jobs.iter().enumerate() {
        match pairs.iter().find(|&&(s, t)| u64::from(s) >= n || u64::from(t) >= n) {
            Some(&(s, t)) => {
                let msg = format!("vertex out of range: ({s}, {t}) on a {n}-vertex index");
                push_error(completions, *conn, *respond, &msg);
            }
            None => {
                plan.push((i, combined.len(), pairs.len()));
                combined.extend_from_slice(pairs);
            }
        }
    }
    if plan.is_empty() {
        return;
    }
    let work = BatchWork { jobs, plan, combined };
    if work.combined.is_empty() {
        // Zero-pair jobs: answer without a backend round-trip.
        complete_queries(completions, &work, &[]);
        return;
    }
    match shared.config.mode {
        RouteMode::Replica => {
            // Least-inflight pick with a round-robin tiebreak.
            let (mut best, mut best_depth) = (0usize, usize::MAX);
            for off in 0..ports.len() {
                let b = (*rr + off) % ports.len();
                let d = ports[b].depth.load(Ordering::Relaxed);
                if d < best_depth {
                    (best, best_depth) = (b, d);
                }
            }
            *rr = (best + 1) % ports.len();
            send(&ports[best], WorkItem::Replica(work));
        }
        RouteMode::Shard => {
            let k = ports.len();
            let mut pairs_by: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
            let mut pos_by: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (pos, &(s, t)) in work.combined.iter().enumerate() {
                let cutoff = s.min(t);
                for (b, slot) in shared.topology.slots.iter().enumerate() {
                    // The winning pivot of a rank-pruned 2-hop answer
                    // is <= min(s, t), so higher shards can't improve
                    // the merge and are skipped. Exact either way.
                    if shared.topology.rank_pruned && slot.lo > cutoff {
                        continue;
                    }
                    pairs_by[b].push((s, t));
                    pos_by[b].push(pos);
                }
            }
            let parts: Vec<usize> = (0..k).filter(|&b| !pairs_by[b].is_empty()).collect();
            let merge = Arc::new(ShardMerge {
                acc: Mutex::new(MergeAcc {
                    dists: vec![INF_DIST; work.combined.len()],
                    pending: parts.len(),
                    failed: None,
                }),
                work,
                completions: Arc::clone(completions),
            });
            for b in parts {
                send(
                    &ports[b],
                    WorkItem::Shard {
                        pairs: std::mem::take(&mut pairs_by[b]),
                        positions: std::mem::take(&mut pos_by[b]),
                        merge: Arc::clone(&merge),
                    },
                );
            }
        }
    }
}

fn dispatch_update(
    shared: &RouterShared,
    completions: &Completions,
    ports: &[WorkerPort],
    conn: u64,
    respond: UpdateRespond,
    edges: Vec<(u32, u32, u32)>,
) {
    // Validate once at the router, before any backend sees the batch:
    // a batch that would be nacked must be nacked *everywhere or
    // nowhere*, never half-applied across replicas.
    if let Err(msg) = validate_update_edges(&edges) {
        push_update_result(completions, conn, respond, Err(msg));
        return;
    }
    let n = shared.topology.vertices;
    if let Some(&(s, t, _)) =
        edges.iter().find(|&&(s, t, _)| u64::from(s) >= n || u64::from(t) >= n)
    {
        let msg = format!("vertex out of range: ({s}, {t}) on a {n}-vertex index");
        push_update_result(completions, conn, respond, Err(msg));
        return;
    }
    let edges = Arc::new(edges);
    let (tx, rx) = mpsc::channel();
    for port in ports {
        send(port, WorkItem::Update { edges: Arc::clone(&edges), done: tx.clone() });
    }
    drop(tx);
    // Barrier: every replica acks (or fails) before any later job is
    // dispatched, so queries submitted after this batch observe it on
    // whichever replica answers them.
    let mut applied: Option<(u64, u64)> = None;
    let mut failed: Vec<String> = Vec::new();
    for _ in 0..ports.len() {
        match rx.recv() {
            Ok(Ok((generation, overlay))) => {
                applied = Some(match applied {
                    None => (generation, overlay),
                    Some((g, o)) => (g.max(generation), o.max(overlay)),
                });
            }
            Ok(Err(e)) => failed.push(e),
            Err(_) => failed.push("worker exited".to_string()),
        }
    }
    let result = if failed.is_empty() {
        applied.ok_or_else(|| "no replica applied the update".to_string())
    } else if applied.is_some() {
        Err(format!(
            "update applied on some replicas but failed on: {} — \
             restart the failed backend(s) before further updates",
            failed.join("; ")
        ))
    } else {
        Err(failed.join("; "))
    };
    push_update_result(completions, conn, respond, result);
}

fn worker_loop(
    shared: &Arc<RouterShared>,
    completions: &Arc<Completions>,
    index: usize,
    depth: &AtomicUsize,
    rx: &mpsc::Receiver<WorkItem>,
) {
    let mut clients: Vec<Option<Client>> = (0..shared.topology.slots.len()).map(|_| None).collect();
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Replica(work) => {
                run_replica_batch(shared, completions, &mut clients, index, &work)
            }
            WorkItem::Shard { pairs, positions, merge } => {
                run_shard_part(shared, &mut clients, index, pairs, positions, &merge)
            }
            WorkItem::Update { edges, done } => {
                let _ = done.send(run_update(shared, &mut clients, index, &edges));
            }
        }
        depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Server-reported errors come back as `InvalidData` (the stream stays
/// frame-aligned); anything else is a transport failure worth a
/// failover or reconnect.
fn is_transport(e: &std::io::Error) -> bool {
    e.kind() != std::io::ErrorKind::InvalidData
}

fn client_for<'a>(
    shared: &RouterShared,
    clients: &'a mut [Option<Client>],
    b: usize,
) -> std::io::Result<&'a mut Client> {
    if clients[b].is_none() {
        clients[b] = Some(Client::connect_timeout(
            &shared.topology.slots[b].addr,
            shared.config.connect_timeout,
        )?);
    }
    Ok(clients[b].as_mut().expect("just connected"))
}

fn query_on(
    shared: &RouterShared,
    clients: &mut [Option<Client>],
    b: usize,
    pairs: &[(u32, u32)],
) -> std::io::Result<Vec<Dist>> {
    let result = client_for(shared, clients, b).and_then(|c| c.query(pairs));
    if matches!(&result, Err(e) if is_transport(e)) {
        clients[b] = None;
    }
    result
}

fn run_replica_batch(
    shared: &RouterShared,
    completions: &Completions,
    clients: &mut [Option<Client>],
    own: usize,
    work: &BatchWork,
) {
    let k = clients.len();
    let mut last = String::new();
    for attempt in 0..k {
        let b = (own + attempt) % k;
        if attempt > 0 {
            shared.failovers.fetch_add(1, Ordering::Relaxed);
        }
        match query_on(shared, clients, b, &work.combined) {
            Ok(dists) => {
                complete_queries(completions, work, &dists);
                return;
            }
            // Server-reported: relay to the whole batch, no failover.
            Err(e) if !is_transport(&e) => {
                fail_queries(completions, work, &e.to_string());
                return;
            }
            Err(e) => last = format!("{}: {e}", shared.topology.slots[b].addr),
        }
    }
    fail_queries(completions, work, &format!("no replica reachable (last: {last})"));
}

fn run_shard_part(
    shared: &RouterShared,
    clients: &mut [Option<Client>],
    own: usize,
    pairs: Vec<(u32, u32)>,
    positions: Vec<usize>,
    merge: &ShardMerge,
) {
    // This worker's backend is the only holder of its shard: retry once
    // through a fresh connection, then fail the merge.
    let mut result = query_on(shared, clients, own, &pairs);
    if matches!(&result, Err(e) if is_transport(e)) {
        shared.failovers.fetch_add(1, Ordering::Relaxed);
        result = query_on(shared, clients, own, &pairs);
    }
    merge.fold(match result {
        Ok(dists) => Ok((positions, dists)),
        Err(e) => Err(format!("shard {own} ({}): {e}", shared.topology.slots[own].addr)),
    });
}

fn run_update(
    shared: &RouterShared,
    clients: &mut [Option<Client>],
    own: usize,
    edges: &[(u32, u32, u32)],
) -> Result<(u64, u64), String> {
    let addr = shared.topology.slots[own].addr;
    let apply = |clients: &mut [Option<Client>]| {
        let result = client_for(shared, clients, own).and_then(|c| c.update(edges));
        if matches!(&result, Err(e) if is_transport(e)) {
            clients[own] = None;
        }
        result
    };
    let mut result = apply(clients);
    if matches!(&result, Err(e) if is_transport(e)) {
        // Overlay insertion dedupes to the minimum weight per pair, so
        // re-sending a possibly-applied batch is idempotent.
        result = apply(clients);
    }
    result.map_err(|e| format!("backend {addr}: {e}"))
}

fn complete_queries(completions: &Completions, work: &BatchWork, dists: &[Dist]) {
    for &(i, offset, len) in &work.plan {
        let (conn, respond, pairs) = &work.jobs[i];
        let slice = &dists[offset..offset + len];
        let (bytes, close_after) = match *respond {
            RespondAs::Hopq { id } => {
                (Response { id, body: ResponseBody::Distances(slice.to_vec()) }.encode(), false)
            }
            RespondAs::HttpOne { close } => {
                (http::render_query_one(pairs[0].0, pairs[0].1, slice[0], close), close)
            }
            RespondAs::HttpMany { close } => (http::render_query_many(slice, close), close),
        };
        completions.push(Completion { conn: *conn, bytes, answered: 1, close_after });
    }
}

fn fail_queries(completions: &Completions, work: &BatchWork, msg: &str) {
    for &(i, _, _) in &work.plan {
        let (conn, respond, _) = &work.jobs[i];
        push_error(completions, *conn, *respond, msg);
    }
}

fn push_error(completions: &Completions, conn: u64, respond: RespondAs, msg: &str) {
    let (bytes, close_after) = match respond {
        RespondAs::Hopq { id } => (error(id, msg).encode(), false),
        RespondAs::HttpOne { .. } | RespondAs::HttpMany { .. } => {
            (http::render_error(400, msg), true)
        }
    };
    completions.push(Completion { conn, bytes, answered: 1, close_after });
}

fn push_update_result(
    completions: &Completions,
    conn: u64,
    respond: UpdateRespond,
    result: Result<(u64, u64), String>,
) {
    let (bytes, close_after) = match respond {
        UpdateRespond::Hopq { id } => {
            let body = match result {
                Ok((generation, overlay_edges)) => {
                    ResponseBody::Updated { generation, overlay_edges }
                }
                Err(e) => ResponseBody::Error(format!("update failed: {e}")),
            };
            (Response { id, body }.encode(), false)
        }
        UpdateRespond::Http { close } => match result {
            Ok((generation, overlay)) => (http::render_update(generation, overlay, close), close),
            Err(e) => (http::render_error(400, &format!("update failed: {e}")), true),
        },
    };
    completions.push(Completion { conn, bytes, answered: 1, close_after });
}

// ---------------------------------------------------------------------
// Reactor (front end)
// ---------------------------------------------------------------------

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const POLL_TICK_MS: i32 = 25;
const DRAIN_DEADLINE: Duration = Duration::from_secs(3);
const DISCARD_BUDGET: usize = 1 << 20;
const DISCARD_TIMEOUT: Duration = Duration::from_secs(2);

const MSG_SWAP_NOT_ROUTED: &str =
    "swap is not routed: point `admin swap` at each backend in turn (rolling swap)";
const MSG_COMPACT_NOT_ROUTED: &str =
    "compact is not routed: point `admin compact` at each backend in turn";
const MSG_INFO_NOT_ROUTED: &str =
    "info is not routed: point `admin info` at a backend, or use stats/route_info here";
const MSG_SHARD_NO_UPDATES: &str =
    "a shard router does not take updates: rebuild and re-shard the image, or use --route replica";

struct Reactor {
    shared: Arc<RouterShared>,
    poller: Poller,
    wake: Arc<WakeFd>,
    batcher: Arc<Batcher>,
    completions: Arc<Completions>,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining_since: Option<Instant>,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.stop.load(Ordering::SeqCst) && self.draining_since.is_none() {
                self.begin_drain();
            }
            if let Some(since) = self.draining_since {
                let owed =
                    self.conns.values().any(|c| c.inflight > 0 || c.pending_write_bytes() > 0);
                if !owed || since.elapsed() > DRAIN_DEADLINE {
                    break;
                }
            }
            events.clear();
            if self.poller.wait(Some(POLL_TICK_MS), |ev| events.push(ev)).is_err() {
                break;
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.wake.drain(),
                    token => {
                        if ev.readable() {
                            self.conn_readable(token);
                        }
                        if ev.writable() {
                            self.conn_writable(token);
                        }
                    }
                }
            }
            self.apply_completions();
            self.advance_all();
        }
    }

    fn begin_drain(&mut self) {
        self.draining_since = Some(Instant::now());
        let _ = self.poller.deregister(&self.listener);
        for conn in self.conns.values_mut() {
            if conn.state == ConnState::Open {
                conn.state = ConnState::CloseAfterFlush;
            }
        }
    }

    fn accept_ready(&mut self) {
        if self.draining_since.is_some() {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.register(&stream, EV_READ, token).is_ok() {
                        let mut conn = Conn::new(stream, Instant::now());
                        conn.registered = EV_READ;
                        self.conns.insert(token, conn);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// HTTP answers must stay in order, so HTTP connections run one
    /// request at a time.
    fn inflight_cap(&self, mode: Mode) -> usize {
        if mode == Mode::Http {
            1
        } else {
            self.shared.config.max_inflight.max(1)
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let cap = match self.conns.get(&token) {
            Some(conn) => self.inflight_cap(conn.mode),
            None => return,
        };
        let Some(conn) = self.conns.get_mut(&token) else { return };
        match conn.state {
            ConnState::Open => {
                if conn.inflight >= cap || conn.write_backed_up() {
                    return;
                }
                if conn.fill(Instant::now()).is_err() {
                    conn.state = ConnState::Dead;
                    return;
                }
                self.parse_conn(token);
            }
            ConnState::Draining { budget } => {
                let mut left = budget;
                let mut chunk = [0u8; 4096];
                loop {
                    if left == 0 {
                        conn.state = ConnState::Dead;
                        break;
                    }
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.state = ConnState::Dead;
                            break;
                        }
                        Ok(n) => left = left.saturating_sub(n),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            conn.state = ConnState::Draining { budget: left };
                            break;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.state = ConnState::Dead;
                            break;
                        }
                    }
                }
            }
            ConnState::CloseAfterFlush | ConnState::Dead => {}
        }
    }

    fn conn_writable(&mut self, token: u64) {
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.pending_write_bytes() > 0 && conn.flush().is_err() {
                conn.state = ConnState::Dead;
            }
        }
    }

    fn parse_conn(&mut self, token: u64) {
        loop {
            let request = {
                let cap = match self.conns.get(&token) {
                    Some(conn) => self.inflight_cap(conn.mode),
                    None => return,
                };
                let Some(conn) = self.conns.get_mut(&token) else { return };
                if conn.state != ConnState::Open {
                    return;
                }
                if conn.inflight >= cap || conn.write_backed_up() {
                    return;
                }
                match conn.next_request(self.shared.config.max_batch) {
                    Some(request) => request,
                    None => {
                        if conn.peer_eof && conn.pending_read_bytes() > 0 {
                            self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let bye = Response {
                                id: 0,
                                body: ResponseBody::Error("truncated frame".into()),
                            };
                            conn.queue_write(&bye.encode(), Instant::now());
                            conn.state = ConnState::CloseAfterFlush;
                        }
                        return;
                    }
                }
            };
            self.dispatch(token, request);
        }
    }

    fn dispatch(&mut self, token: u64, request: ConnRequest) {
        match request {
            ConnRequest::Hopq(req) => {
                self.shared.requests.fetch_add(1, Ordering::Relaxed);
                let id = req.id;
                match req.body {
                    RequestBody::Query(pairs) => {
                        self.submit_query(token, RespondAs::Hopq { id }, pairs);
                    }
                    RequestBody::Update(edges) => {
                        if self.shared.config.mode == RouteMode::Shard {
                            self.queue_response(token, error(id, MSG_SHARD_NO_UPDATES), false);
                        } else {
                            self.submit_update(token, UpdateRespond::Hopq { id }, edges);
                        }
                    }
                    RequestBody::Swap => {
                        self.queue_response(token, error(id, MSG_SWAP_NOT_ROUTED), false);
                    }
                    RequestBody::Compact => {
                        self.queue_response(token, error(id, MSG_COMPACT_NOT_ROUTED), false);
                    }
                    RequestBody::Info => {
                        self.queue_response(token, error(id, MSG_INFO_NOT_ROUTED), false);
                    }
                    RequestBody::RouteInfo => {
                        let body = ResponseBody::RouteInfo(route_reply(&self.shared));
                        self.queue_response(token, Response { id, body }, false);
                    }
                    RequestBody::Stats => {
                        let body = ResponseBody::Stats(self.stats_reply());
                        self.queue_response(token, Response { id, body }, false);
                    }
                    RequestBody::Shutdown => {
                        if self.shared.config.allow_shutdown {
                            self.queue_response(
                                token,
                                Response { id, body: ResponseBody::Bye },
                                false,
                            );
                            self.shared.begin_stop();
                        } else {
                            let resp = error(id, "remote shutdown is disabled on this router");
                            self.queue_response(token, resp, false);
                        }
                    }
                }
            }
            ConnRequest::HopqBad { id, msg } => {
                self.shared.requests.fetch_add(1, Ordering::Relaxed);
                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                self.queue_response(token, error(id, &msg), false);
            }
            ConnRequest::HopqFatal(msg) => {
                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                self.queue_response(token, error(0, &msg), true);
            }
            ConnRequest::Http { request, close } => {
                self.shared.requests.fetch_add(1, Ordering::Relaxed);
                match request {
                    HttpRequest::QueryOne { s, t } => {
                        self.submit_query(token, RespondAs::HttpOne { close }, vec![(s, t)]);
                    }
                    HttpRequest::QueryMany(pairs) => {
                        self.submit_query(token, RespondAs::HttpMany { close }, pairs);
                    }
                    HttpRequest::Update(edges) => {
                        if self.shared.config.mode == RouteMode::Shard {
                            let bytes = http::render_error(400, MSG_SHARD_NO_UPDATES);
                            self.queue_bytes(token, &bytes, true);
                        } else {
                            self.submit_update(token, UpdateRespond::Http { close }, edges);
                        }
                    }
                    HttpRequest::Stats => {
                        let body = self.stats_json();
                        let bytes = http::render_response(200, &body, close);
                        self.queue_bytes(token, &bytes, close);
                    }
                }
            }
            ConnRequest::HttpError(resp) => {
                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                self.queue_bytes(token, &resp, true);
            }
        }
    }

    fn submit_query(&mut self, token: u64, respond: RespondAs, pairs: Vec<(u32, u32)>) {
        if self.batcher.submit(Job::Query { conn: token, respond, pairs }) {
            if let Some(c) = self.conns.get_mut(&token) {
                c.inflight += 1;
            }
        } else {
            let (bytes, close) = match respond {
                RespondAs::Hopq { id } => (error(id, "router is stopping").encode(), false),
                RespondAs::HttpOne { .. } | RespondAs::HttpMany { .. } => {
                    (http::render_error(503, "router is stopping"), true)
                }
            };
            self.queue_bytes(token, &bytes, close);
        }
    }

    fn submit_update(&mut self, token: u64, respond: UpdateRespond, edges: Vec<(u32, u32, u32)>) {
        if self.batcher.submit(Job::Update { conn: token, respond, edges }) {
            if let Some(c) = self.conns.get_mut(&token) {
                c.inflight += 1;
            }
        } else {
            let (bytes, close) = match respond {
                UpdateRespond::Hopq { id } => (error(id, "router is stopping").encode(), false),
                UpdateRespond::Http { .. } => (http::render_error(503, "router is stopping"), true),
            };
            self.queue_bytes(token, &bytes, close);
        }
    }

    fn queue_response(&mut self, token: u64, resp: Response, close_after: bool) {
        self.queue_bytes(token, &resp.encode(), close_after);
    }

    fn queue_bytes(&mut self, token: u64, bytes: &[u8], close_after: bool) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.queue_write(bytes, Instant::now());
            if close_after && conn.state == ConnState::Open {
                conn.state = ConnState::CloseAfterFlush;
            }
        }
    }

    fn apply_completions(&mut self) {
        for done in self.completions.drain() {
            if let Some(conn) = self.conns.get_mut(&done.conn) {
                conn.inflight = conn.inflight.saturating_sub(done.answered);
                conn.queue_write(&done.bytes, Instant::now());
                if done.close_after && conn.state == ConnState::Open {
                    conn.state = ConnState::CloseAfterFlush;
                }
            }
        }
    }

    fn advance_all(&mut self) {
        let now = Instant::now();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.advance_conn(token, now);
        }
    }

    fn advance_conn(&mut self, token: u64, now: Instant) {
        self.parse_conn(token);
        let idle = match self.shared.config.idle_timeout_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        };
        let cap = {
            let Some(conn) = self.conns.get(&token) else { return };
            self.inflight_cap(conn.mode)
        };
        let drain_mode = self.draining_since.is_some();
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.pending_write_bytes() > 0 && conn.flush().is_err() {
            conn.state = ConnState::Dead;
        }
        match conn.state {
            ConnState::Open => {
                if conn.peer_eof
                    && conn.inflight == 0
                    && conn.pending_write_bytes() == 0
                    && conn.pending_read_bytes() == 0
                {
                    conn.state = ConnState::Dead;
                } else if let Some(idle) = idle {
                    if conn.inflight == 0
                        && conn.pending_write_bytes() == 0
                        && now.duration_since(conn.last_activity) >= idle
                    {
                        conn.state = ConnState::Dead;
                    }
                }
            }
            ConnState::CloseAfterFlush => {
                if conn.inflight == 0 && conn.pending_write_bytes() == 0 {
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    conn.state = if conn.peer_eof {
                        ConnState::Dead
                    } else {
                        ConnState::Draining { budget: DISCARD_BUDGET }
                    };
                    conn.last_activity = now;
                }
            }
            ConnState::Draining { .. } => {
                if conn.peer_eof || now.duration_since(conn.last_activity) > DISCARD_TIMEOUT {
                    conn.state = ConnState::Dead;
                }
            }
            ConnState::Dead => {}
        }
        let mut dead = conn.state == ConnState::Dead;
        if !dead {
            let desired = desired_interest(conn, cap, drain_mode);
            if desired != conn.registered {
                match self.poller.rearm(&conn.stream, desired, token) {
                    Ok(()) => conn.registered = desired,
                    Err(_) => dead = true,
                }
            }
        }
        if dead {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.deregister(&conn.stream);
            }
        }
    }

    fn stats_reply(&self) -> StatsReply {
        let t = &self.shared.topology;
        StatsReply {
            generation: t.generation,
            vertices: t.vertices,
            directed: t.directed,
            resident: true,
            requests: self.shared.requests.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
        }
    }

    fn stats_json(&self) -> String {
        let t = &self.shared.topology;
        let mode = match self.shared.config.mode {
            RouteMode::Replica => "replica",
            RouteMode::Shard => "shard",
        };
        format!(
            "{{\"mode\":\"{mode}\",\"backends\":{},\"vertices\":{},\"directed\":{},\
             \"generation\":{},\"rank_pruned\":{},\"requests\":{},\"protocol_errors\":{},\
             \"failovers\":{}}}",
            t.slots.len(),
            t.vertices,
            t.directed,
            t.generation,
            t.rank_pruned,
            self.shared.requests.load(Ordering::Relaxed),
            self.shared.protocol_errors.load(Ordering::Relaxed),
            self.shared.failovers.load(Ordering::Relaxed),
        )
    }
}

/// The protocol-v4 topology snapshot a router reports for itself.
fn route_reply(shared: &RouterShared) -> RouteReply {
    let t = &shared.topology;
    match shared.config.mode {
        RouteMode::Replica => RouteReply {
            mode: ROUTE_REPLICA,
            vertices: t.vertices,
            directed: t.directed,
            generation: t.generation,
            shard_lo: 0,
            shard_hi: 0,
            shard_index: 0,
            shard_count: 0,
            rank_pruned: false,
        },
        RouteMode::Shard => RouteReply {
            mode: ROUTE_SHARD,
            vertices: t.vertices,
            directed: t.directed,
            generation: t.generation,
            shard_lo: 0,
            shard_hi: t.vertices.min(u64::from(u32::MAX)) as u32,
            shard_index: 0,
            shard_count: t.slots.len() as u32,
            rank_pruned: t.rank_pruned,
        },
    }
}

/// The interest mask a connection's state calls for.
fn desired_interest(conn: &Conn, cap: usize, drain_mode: bool) -> u32 {
    let mut mask = 0;
    match conn.state {
        ConnState::Open => {
            let paused =
                conn.inflight >= cap || conn.write_backed_up() || conn.peer_eof || drain_mode;
            if !paused {
                mask |= EV_READ;
            }
            if conn.pending_write_bytes() > 0 {
                mask |= EV_WRITE;
            }
        }
        ConnState::CloseAfterFlush => mask |= EV_WRITE,
        ConnState::Draining { .. } => mask |= EV_READ,
        ConnState::Dead => {}
    }
    mask
}
