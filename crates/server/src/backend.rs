//! The serving backend behind one index *generation*.
//!
//! A [`LiveGeneration`] is everything the daemon needs to answer
//! queries from one published index state: the frozen index (fully
//! resident [`FlatIndex`], or the [`CachedDiskIndex`] LRU fallback when
//! the file exceeds the `--max-resident-bytes` admission budget)
//! wrapped together with a delta overlay in a
//! [`LiveIndex`], the optional `.rank`
//! sidecar translating original vertex ids to rank space, and a
//! monotone generation number so clients can observe promotions.
//!
//! Generations are immutable once published; the server keeps them
//! behind an `Arc` and replaces the `Arc` atomically. That one
//! mechanism covers *both* mutation paths:
//!
//! * a **swap or compaction** publishes a new frozen index under a
//!   bumped generation number;
//! * an **update batch** publishes a copy-on-write successor sharing
//!   the same frozen index (same generation number) with a rebuilt
//!   overlay snapshot.
//!
//! Requests that pinned the old `Arc` finish on it untouched, so every
//! response is consistent with exactly one `(frozen, overlay)` state.
//!
//! # Lock order
//!
//! The serving core holds up to four locks at once. Deadlock freedom
//! rests on every path acquiring them in one global order, outermost
//! first:
//!
//! ```text
//! mutate_serial → update_log → durable → current
//! ```
//!
//! * `mutate_serial` — serializes whole mutations (update batches,
//!   swaps, compaction promotions) against each other;
//! * `update_log` — the replayable in-memory edge log;
//! * `durable` — the WAL handle and checkpoint directory;
//! * `current` — the published [`Generation`] `Arc` (read-mostly; the
//!   query path takes only this, briefly, and never the others).
//!
//! Never acquire an earlier lock while holding a later one — e.g. no
//! `update_log` acquisition under the `current` write lock. The
//! in-tree checker (`cargo run -p xtask -- tidy`, `locks` pass) scans
//! `backend.rs`/`server.rs` and flags violations of this order, citing
//! this section.

use std::path::Path;
use std::sync::Arc;

use extmem::device::CountedFile;
use extmem::stats::IoStats;
use hoplabels::disk::{CachedDiskIndex, DiskIndex};
use hoplabels::flat::FlatIndex;
use hoplabels::overlay::LiveIndex;
use hoplabels::shard::ShardSpec;
use hoplabels::QueryBackend;
use sfgraph::ranking::Ranking;
use sfgraph::{Dist, VertexId};

/// How many whole per-vertex labels the disk fallback's LRU cache
/// holds. Labels on scale-free graphs average tens of entries, so this
/// keeps the cache in the single-digit-MiB range regardless of index
/// size while still absorbing the hot-vertex skew of real workloads.
const DISK_CACHE_LABELS: usize = 4096;

/// Backwards-compatible name for [`LiveGeneration`].
pub type Generation = LiveGeneration;

/// One immutable, queryable index generation: a frozen backend plus an
/// overlay snapshot, dispatched through one [`QueryBackend`] object
/// (the [`LiveIndex`]); the generation adds id translation and range
/// checking on top.
pub struct LiveGeneration {
    index: LiveIndex,
    ranking: Option<Arc<Ranking>>,
    vertices: usize,
    directed: bool,
    /// The `<path>.shard` sidecar, when this generation serves one
    /// pivot-range shard of a split image (see `hoplabels::shard`).
    shard: Option<ShardSpec>,
}

impl LiveGeneration {
    /// Load the index at `path` as generation `generation`, with an
    /// empty overlay.
    ///
    /// When `max_resident_bytes` is set and the file is larger, the
    /// index is served from disk through [`CachedDiskIndex`] instead of
    /// being loaded resident. A `<path>.rank` sidecar (as written by
    /// `hopdb-cli build`) is picked up automatically so queries use
    /// original vertex ids; without one, queries are in rank space.
    pub fn load(
        path: &Path,
        max_resident_bytes: Option<u64>,
        generation: u64,
    ) -> std::io::Result<LiveGeneration> {
        let file_len = std::fs::metadata(path)?.len();
        let resident = max_resident_bytes.is_none_or(|budget| file_len <= budget);
        let index: Arc<dyn QueryBackend> = if resident {
            Arc::new(FlatIndex::load(path)?)
        } else {
            // Read-only: a serving index may live on read-only media,
            // and the daemon never writes it.
            let file = CountedFile::open_path_readonly(path, IoStats::shared())?;
            let disk = DiskIndex::open(file)?;
            Arc::new(CachedDiskIndex::new(disk, DISK_CACHE_LABELS))
        };
        let (vertices, directed) = (index.num_vertices(), index.is_directed());
        let ranking = load_ranking_sidecar(path, vertices)?.map(Arc::new);
        let shard = load_shard_sidecar(path)?;
        Ok(LiveGeneration {
            index: LiveIndex::new(index, generation),
            ranking,
            vertices,
            directed,
            shard,
        })
    }

    /// Build a generation from an already-frozen index (tests, or a
    /// compaction promoted without a round-trip through disk).
    pub fn from_flat(flat: FlatIndex, ranking: Option<Ranking>, generation: u64) -> LiveGeneration {
        let (vertices, directed) = (flat.num_vertices(), flat.is_directed());
        LiveGeneration {
            index: LiveIndex::new(Arc::new(flat), generation),
            ranking: ranking.map(Arc::new),
            vertices,
            directed,
            shard: None,
        }
    }

    /// A successor generation sharing this one's frozen index whose
    /// overlay covers `log` — the *complete* list of edge insertions
    /// `(s, t, w)` in original (public) id space accumulated since the
    /// frozen index was built. Self-loops are dropped and zero weights
    /// clamped to 1, matching `sfgraph::GraphBuilder`, so a later full
    /// rebuild of the mutated graph answers identically.
    pub fn with_updates(
        &self,
        log: &[(VertexId, VertexId, Dist)],
    ) -> Result<LiveGeneration, String> {
        let n = self.vertices as VertexId;
        for &(s, t, _) in log {
            if s >= n || t >= n {
                return Err(format!("vertex out of range: ({s}, {t}) on a {n}-vertex index"));
            }
        }
        let ranked: Vec<(VertexId, VertexId, Dist)> = match &self.ranking {
            Some(r) => log.iter().map(|&(s, t, w)| (r.rank_of(s), r.rank_of(t), w)).collect(),
            None => log.to_vec(),
        };
        let index =
            self.index.rebuild_overlay(&ranked).map_err(|e| format!("overlay rebuild: {e}"))?;
        Ok(LiveGeneration {
            index,
            ranking: self.ranking.clone(),
            vertices: self.vertices,
            directed: self.directed,
            shard: self.shard,
        })
    }

    /// Monotone generation number, reported uniformly through
    /// [`QueryBackend::generation_id`].
    pub fn generation(&self) -> u64 {
        self.index.generation_id()
    }

    /// Vertices covered by this generation.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Whether the underlying index is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// This generation's pivot-range shard slot, when it serves a split
    /// image (`<path>.shard` sidecar was present at load).
    pub fn shard(&self) -> Option<ShardSpec> {
        self.shard
    }

    /// Whether a router may apply the rank-space shard filter against
    /// this endpoint: the split verified the pruning invariant *and*
    /// queries arrive in rank ids (no `.rank` translation sidecar).
    pub fn shard_rank_pruned(&self) -> bool {
        self.shard.is_some_and(|s| s.rank_pruned) && self.ranking.is_none()
    }

    /// Whether this generation serves from memory (as opposed to the
    /// disk-backed admission fallback).
    pub fn is_resident(&self) -> bool {
        self.index.is_resident()
    }

    /// Bytes the serving generation holds resident (frozen + overlay).
    pub fn resident_bytes(&self) -> usize {
        self.index.resident_bytes()
    }

    /// Deduplicated edges in the overlay (0 = frozen-only serving).
    pub fn overlay_edges(&self) -> usize {
        self.index.overlay().num_edges()
    }

    /// Distinct vertices touched by overlay edges.
    pub fn overlay_affected(&self) -> usize {
        self.index.overlay().affected()
    }

    /// Answer a batch of pairs, fanning resident batches across up to
    /// `threads` scoped workers via [`FlatIndex::query_many`]. Errors
    /// (out-of-range vertex, disk I/O failure) fail the whole batch —
    /// partial answers would be ambiguous on the wire.
    pub fn query_many(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
    ) -> Result<Vec<Dist>, String> {
        let mut out = Vec::with_capacity(pairs.len());
        self.query_many_into(pairs, threads, &mut out)?;
        Ok(out)
    }

    /// [`LiveGeneration::query_many`] appending into a caller-owned
    /// buffer — the reactor's micro-batcher answers many coalesced
    /// frames into one result vector. On error nothing is appended.
    pub fn query_many_into(
        &self,
        pairs: &[(VertexId, VertexId)],
        threads: usize,
        out: &mut Vec<Dist>,
    ) -> Result<(), String> {
        let n = self.vertices as VertexId;
        for &(s, t) in pairs {
            if s >= n || t >= n {
                return Err(format!("vertex out of range: ({s}, {t}) on a {n}-vertex index"));
            }
        }
        // Translate ids only when a sidecar is loaded — the common
        // rank-space serving path must not copy the batch per request.
        let translated: Vec<(VertexId, VertexId)>;
        let ranked: &[(VertexId, VertexId)] = match &self.ranking {
            Some(r) => {
                translated = pairs.iter().map(|&(s, t)| (r.rank_of(s), r.rank_of(t))).collect();
                &translated
            }
            None => pairs,
        };
        self.index.query_many_into(ranked, threads, out).map_err(|e| format!("index query: {e}"))
    }
}

/// Read the `<path>.rank` sidecar if present. `Ok(None)` when the file
/// does not exist; a present-but-invalid sidecar is an error — serving
/// with silently wrong id translation would corrupt every answer.
/// Validation (magic, permutation, vertex count) lives in
/// [`Ranking::from_sidecar_bytes`], shared with `hopdb-cli`.
fn load_ranking_sidecar(path: &Path, n: usize) -> std::io::Result<Option<Ranking>> {
    let mut sidecar = path.as_os_str().to_os_string();
    sidecar.push(".rank");
    let bytes = match std::fs::read(&sidecar) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    Ranking::from_sidecar_bytes(&bytes, Some(n)).map(Some).map_err(|msg| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {msg}", sidecar.to_string_lossy()),
        )
    })
}

/// Read the `<path>.shard` sidecar if present. Same discipline as the
/// ranking sidecar: `Ok(None)` when absent, a hard error when present
/// but invalid — routing on a corrupt shard map would silently drop
/// label entries from answers.
fn load_shard_sidecar(path: &Path) -> std::io::Result<Option<ShardSpec>> {
    let mut sidecar = path.as_os_str().to_os_string();
    sidecar.push(".shard");
    let bytes = match std::fs::read(&sidecar) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    ShardSpec::decode(&bytes).map(Some).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {e}", sidecar.to_string_lossy()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hoplabels::{LabelEntry, LabelIndex};

    fn tiny_flat() -> FlatIndex {
        let mut idx = LabelIndex::new_undirected(3);
        if let LabelIndex::Undirected(u) = &mut idx {
            u.labels[1].insert_min(LabelEntry::new(0, 2));
            u.labels[2].insert_min(LabelEntry::new(0, 5));
        }
        FlatIndex::from_index(&idx)
    }

    #[test]
    fn from_flat_serves_and_range_checks() {
        let g = Generation::from_flat(tiny_flat(), None, 1);
        assert!(g.is_resident());
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.generation(), 1);
        assert_eq!(g.overlay_edges(), 0);
        assert_eq!(g.query_many(&[(1, 2), (2, 2)], 1).unwrap(), vec![7, 0]);
        let err = g.query_many(&[(0, 3)], 1).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn ranking_translates_original_ids() {
        // Ranking [2, 0, 1]: original vertex 2 is rank 0, etc.
        let ranking = Ranking::from_order(vec![2, 0, 1]);
        let g = Generation::from_flat(tiny_flat(), Some(ranking), 1);
        // original (0, 1) -> ranks (1, 2) -> 7.
        assert_eq!(g.query_many(&[(0, 1)], 1).unwrap(), vec![7]);
    }

    #[test]
    fn with_updates_improves_answers_and_translates_ids() {
        // Rank space: dist(1, 2) = 7 through pivot 0.
        let g = Generation::from_flat(tiny_flat(), None, 3);
        let live = g.with_updates(&[(1, 2, 3)]).unwrap();
        assert_eq!(live.generation(), 3, "updates do not bump the generation");
        assert_eq!(live.overlay_edges(), 1);
        assert_eq!(live.query_many(&[(1, 2), (0, 1)], 1).unwrap(), vec![3, 2]);
        // The original generation is untouched (copy-on-write).
        assert_eq!(g.query_many(&[(1, 2)], 1).unwrap(), vec![7]);
        // Range violations are rejected before anything is built.
        let err = live.with_updates(&[(1, 2, 3), (0, 9, 1)]).err().unwrap();
        assert!(err.contains("out of range"), "{err}");

        // With a sidecar, update edges arrive in original id space.
        let ranking = Ranking::from_order(vec![2, 0, 1]);
        let g = Generation::from_flat(tiny_flat(), Some(ranking), 1);
        // original (0, 1) -> ranks (1, 2): same improvement as above.
        let live = g.with_updates(&[(0, 1, 3)]).unwrap();
        assert_eq!(live.query_many(&[(0, 1)], 1).unwrap(), vec![3]);
    }

    #[test]
    fn missing_sidecar_is_none_invalid_is_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("hopdb-backend-test-{}.idx", std::process::id()));
        assert!(load_ranking_sidecar(&path, 3).unwrap().is_none());
        let sidecar = format!("{}.rank", path.to_string_lossy());
        // Wrong magic.
        std::fs::write(&sidecar, b"NOTRANK!").unwrap();
        assert!(load_ranking_sidecar(&path, 0).is_err());
        // Not a permutation.
        let mut bytes = b"HOPRANK1".to_vec();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&sidecar, &bytes).unwrap();
        assert!(load_ranking_sidecar(&path, 2).is_err());
        std::fs::remove_file(&sidecar).unwrap();
    }
}
