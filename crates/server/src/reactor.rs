//! A minimal readiness reactor: raw `epoll` + `eventfd` bindings.
//!
//! crates.io is unreachable in this build environment, so instead of
//! `mio`/`tokio` this module declares the four syscall wrappers the
//! epoll backend needs (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `eventfd`) as direct `extern "C"` bindings against the libc the
//! binary already links. Everything else — nonblocking sockets, raw
//! fds, close-on-drop — comes from `std`.
//!
//! The surface is deliberately tiny and level-triggered:
//!
//! * [`Poller`] — an epoll instance; register/rearm/deregister
//!   interest keyed by a caller-chosen `u64` token, wait for events.
//! * [`WakeFd`] — an `eventfd` other threads write to in order to wake
//!   a blocked [`Poller::wait`] (batch completions, shutdown).
//!
//! Level-triggered means the loop never needs to drain a socket to
//! exhaustion in one pass: unread bytes simply re-arm the event, which
//! keeps the per-connection state machines simple and makes
//! backpressure (deliberately *not* reading) natural.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};

use std::os::raw::{c_int, c_uint, c_void};

/// Readable interest (`EPOLLIN`).
pub const EV_READ: u32 = 0x001;
/// Writable interest (`EPOLLOUT`).
pub const EV_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EV_ERROR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const EV_HUP: u32 = 0x010;
/// Peer half-closed its write side (`EPOLLRDHUP`).
pub const EV_RDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EFD_CLOEXEC: c_int = 0x8_0000;
const EFD_NONBLOCK: c_int = 0x800;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it to 12
/// bytes; `repr(C, packed)` matches glibc's declaration on every
/// architecture glibc supports (it adds the attribute unconditionally
/// on x86-64 and the layout coincides elsewhere).
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness event: the token it was registered under and the
/// readiness mask (`EV_*` bits).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Caller-chosen registration token.
    pub token: u64,
    /// Readiness bits.
    pub mask: u32,
}

impl Event {
    /// Whether the source is readable (or has an error/hangup, which
    /// a read will surface as `Ok(0)`/`Err`).
    pub fn readable(&self) -> bool {
        self.mask & (EV_READ | EV_ERROR | EV_HUP | EV_RDHUP) != 0
    }

    /// Whether the source is writable.
    pub fn writable(&self) -> bool {
        self.mask & (EV_WRITE | EV_ERROR | EV_HUP) != 0
    }
}

/// An epoll instance (level-triggered).
pub struct Poller {
    epfd: OwnedFd,
    events: Vec<EpollEvent>,
}

impl Poller {
    /// Create an epoll instance sized for `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; it returns a new fd
        // or -1, which `cvt` turns into an error.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Poller { epfd, events: vec![EpollEvent { events: 0, data: 0 }; capacity.max(8)] })
    }

    fn ctl(&self, op: c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events: mask, data: token };
        // SAFETY: `ev` is a live, properly-aligned EpollEvent for the
        // duration of the call; the kernel only reads it. `epfd` is a
        // valid epoll fd owned by `self`.
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` for the `EV_*` bits in `mask` under `token`.
    pub fn register(&self, fd: &impl AsRawFd, mask: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), mask, token)
    }

    /// Change the interest mask of an already-registered `fd`.
    pub fn rearm(&self, fd: &impl AsRawFd, mask: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), mask, token)
    }

    /// Remove `fd` from the interest set. (Closing the fd does this
    /// implicitly; explicit removal keeps the bookkeeping honest.)
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        // The event argument is ignored for DEL but must be non-null on
        // pre-2.6.9 kernels; pass a dummy unconditionally.
        self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Wait up to `timeout_ms` (`None` = forever) and invoke `f` for
    /// each ready event. Returns the number of events delivered.
    /// `EINTR` is treated as "zero events", not an error.
    pub fn wait(&mut self, timeout_ms: Option<i32>, mut f: impl FnMut(Event)) -> io::Result<usize> {
        let timeout = timeout_ms.unwrap_or(-1);
        // SAFETY: the out-pointer and length describe `self.events`, a
        // live Vec the kernel writes at most `len` entries into; `epfd`
        // is a valid epoll fd owned by `self`.
        let n = match cvt(unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                self.events.as_mut_ptr(),
                self.events.len() as c_int,
                timeout,
            )
        }) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.events[..n] {
            f(Event { token: ev.data, mask: ev.events });
        }
        Ok(n)
    }
}

/// A wakeup channel for the reactor: an `eventfd` registered in the
/// [`Poller`]. Any thread calls [`WakeFd::wake`]; the reactor observes
/// the token readable and calls [`WakeFd::drain`].
pub struct WakeFd {
    fd: OwnedFd,
    /// Collapses redundant wakes: `wake` only writes when the flag was
    /// clear, so a storm of completions costs one syscall, not one per
    /// completion.
    armed: AtomicBool,
}

impl WakeFd {
    /// Create a nonblocking eventfd.
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: eventfd takes no pointers; it returns a new fd or
        // -1, which `cvt` turns into an error.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd we now own.
        Ok(WakeFd { fd: unsafe { OwnedFd::from_raw_fd(fd) }, armed: AtomicBool::new(false) })
    }

    /// Wake the poller this fd is registered with. Cheap and safe from
    /// any thread; redundant wakes coalesce.
    pub fn wake(&self) {
        if self.armed.swap(true, Ordering::AcqRel) {
            return; // a wake is already pending
        }
        let one: u64 = 1;
        // A full eventfd counter (EAGAIN) still wakes the poller; any
        // other failure means the reactor is gone and nobody is left to
        // wake — ignore both.
        // SAFETY: the pointer/length pair describes the 8 bytes of
        // `one`, which outlives the call; the kernel only reads them.
        let _ = unsafe { write(self.fd.as_raw_fd(), (&raw const one).cast::<c_void>(), 8) };
    }

    /// Consume pending wakes (called by the reactor when its token
    /// fires) so the level-triggered poller stops reporting them.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        let mut buf = 0u64;
        // SAFETY: the pointer/length pair describes the 8 writable
        // bytes of `buf`, which outlives the call; the eventfd read
        // writes at most 8 bytes.
        let _ = unsafe { read(self.fd.as_raw_fd(), (&raw mut buf).cast::<c_void>(), 8) };
    }
}

impl AsRawFd for WakeFd {
    fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_wakefd_and_socket_readiness() {
        let mut poller = Poller::new(8).unwrap();
        let wake = WakeFd::new().unwrap();
        poller.register(&wake, EV_READ, 1).unwrap();

        // Nothing ready: a zero-timeout wait delivers no events.
        let n = poller.wait(Some(0), |_| {}).unwrap();
        assert_eq!(n, 0);

        wake.wake();
        wake.wake(); // coalesces
        let mut seen = Vec::new();
        poller.wait(Some(1000), |ev| seen.push(ev.token)).unwrap();
        assert_eq!(seen, vec![1]);
        wake.drain();
        assert_eq!(poller.wait(Some(0), |_| {}).unwrap(), 0, "drained wake must not re-fire");

        // A connected socket with pending bytes reports EV_READ.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller.register(&server_side, EV_READ, 7).unwrap();
        client.write_all(b"ping").unwrap();
        let mut seen = Vec::new();
        poller.wait(Some(1000), |ev| seen.push((ev.token, ev.readable()))).unwrap();
        assert_eq!(seen, vec![(7, true)]);

        // Rearm to write interest: an idle socket is instantly writable.
        poller.rearm(&server_side, EV_WRITE, 7).unwrap();
        let mut writable = false;
        poller.wait(Some(1000), |ev| writable = ev.writable()).unwrap();
        assert!(writable);
        poller.deregister(&server_side).unwrap();
        assert_eq!(poller.wait(Some(0), |_| {}).unwrap(), 0);
    }
}
