//! Adaptive micro-batching for the epoll backend.
//!
//! The reactor thread never runs queries. It cuts query frames off
//! connections and [`Batcher::submit`]s them; a dedicated executor
//! thread pulls *batches* with [`Batcher::next_batch`], coalescing the
//! query pairs of many connections into one `FlatIndex::query_many`
//! call — the paper's query path is so cheap (sub-microsecond resident)
//! that per-request overheads dominate, and batching amortizes them.
//!
//! A batch is released when either
//!
//! * the queued pair count reaches the coalescing threshold
//!   (`coalesce_pairs`), or
//! * the oldest queued job has waited the flush deadline (`flush_us`) —
//!   the knob that bounds the latency a lonely request pays for the
//!   chance of company.
//!
//! `epoll_wait` has millisecond granularity, so sub-millisecond
//! deadlines live here instead: the executor parks on a condition
//! variable with `wait_timeout` against the oldest job's deadline.
//!
//! Results travel back through [`Completions`]: the executor pushes
//! encoded response bytes keyed by connection token and wakes the
//! reactor's eventfd; the reactor drains the pile and queues the bytes
//! onto the right connections.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::reactor::WakeFd;

/// How a job's answer should be encoded once the distances are known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RespondAs {
    /// A binary `HOPR` distances frame echoing this request id.
    Hopq {
        /// Client-chosen request id.
        id: u64,
    },
    /// A `GET /query` JSON object (single pair).
    HttpOne {
        /// Close the connection after this response.
        close: bool,
    },
    /// A `POST /query_many` JSON array.
    HttpMany {
        /// Close the connection after this response.
        close: bool,
    },
}

/// How an update job's ack should be encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateRespond {
    /// A binary `HOPR` updated frame echoing this request id.
    Hopq {
        /// Client-chosen request id.
        id: u64,
    },
    /// A `POST /update` JSON object.
    Http {
        /// Close the connection after this response.
        close: bool,
    },
}

/// One unit of work cut off a connection by the reactor.
#[derive(Debug)]
pub enum Job {
    /// A batch of distance queries from one request frame.
    Query {
        /// Connection token the answer goes back to.
        conn: u64,
        /// Response encoding.
        respond: RespondAs,
        /// The query pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// A hot-swap request (runs on the executor so the disk load never
    /// blocks the reactor).
    Swap {
        /// Connection token the answer goes back to.
        conn: u64,
        /// Client-chosen request id.
        id: u64,
    },
    /// A live edge-insertion batch. Runs on the executor, between query
    /// batches, so queries submitted before it see the old overlay and
    /// queries after it see the new one — per-connection pipelined
    /// ordering holds without any extra synchronization.
    Update {
        /// Connection token the ack goes back to.
        conn: u64,
        /// Ack encoding.
        respond: UpdateRespond,
        /// `(s, t, w)` edge insertions in original vertex ids.
        edges: Vec<(u32, u32, u32)>,
    },
}

impl Job {
    fn pairs(&self) -> usize {
        match self {
            Job::Query { pairs, .. } => pairs.len(),
            // Swaps and updates flush the queue on their own; weight
            // them like a full batch so they never linger behind the
            // deadline (and so queued queries keep their submission
            // ordering relative to the mutation).
            Job::Swap { .. } | Job::Update { .. } => usize::MAX,
        }
    }
}

struct Queue {
    jobs: Vec<Job>,
    pending_pairs: usize,
    oldest: Option<Instant>,
    stopped: bool,
}

/// The shared reactor→executor job queue with coalescing flush rules.
pub struct Batcher {
    queue: Mutex<Queue>,
    ready: Condvar,
}

impl Batcher {
    /// An empty queue.
    pub fn new() -> Batcher {
        Batcher {
            queue: Mutex::new(Queue {
                jobs: Vec::new(),
                pending_pairs: 0,
                oldest: None,
                stopped: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Queue a job. Returns `false` (job dropped) after [`Batcher::stop`].
    pub fn submit(&self, job: Job) -> bool {
        let Ok(mut q) = self.queue.lock() else { return false };
        if q.stopped {
            return false;
        }
        q.pending_pairs = q.pending_pairs.saturating_add(job.pairs());
        q.oldest.get_or_insert_with(Instant::now);
        q.jobs.push(job);
        self.ready.notify_one();
        true
    }

    /// Block until a batch is due, and take the whole queue.
    ///
    /// Returns `None` only when stopped *and* drained — pending jobs
    /// submitted before the stop are still delivered, so every accepted
    /// request gets its response during shutdown.
    pub fn next_batch(&self, coalesce_pairs: usize, flush_after: Duration) -> Option<Vec<Job>> {
        let mut q = self.queue.lock().ok()?;
        loop {
            if !q.jobs.is_empty() {
                let due = q.stopped
                    || q.pending_pairs >= coalesce_pairs
                    || q.oldest.is_some_and(|t| t.elapsed() >= flush_after);
                if due {
                    q.pending_pairs = 0;
                    q.oldest = None;
                    return Some(std::mem::take(&mut q.jobs));
                }
                // Not due yet: park until the oldest job's deadline.
                let remaining = q
                    .oldest
                    .map(|t| flush_after.saturating_sub(t.elapsed()))
                    .unwrap_or(flush_after);
                let (guard, _) = self.ready.wait_timeout(q, remaining).ok()?;
                q = guard;
            } else if q.stopped {
                return None;
            } else {
                q = self.ready.wait(q).ok()?;
            }
        }
    }

    /// Stop the queue: future submits are refused, queued jobs still
    /// drain through [`Batcher::next_batch`].
    pub fn stop(&self) {
        if let Ok(mut q) = self.queue.lock() {
            q.stopped = true;
        }
        self.ready.notify_all();
    }
}

impl Default for Batcher {
    fn default() -> Batcher {
        Batcher::new()
    }
}

/// One finished job: response bytes bound for a connection.
#[derive(Debug)]
pub struct Completion {
    /// Connection token.
    pub conn: u64,
    /// Encoded response (HOPR frame or HTTP response).
    pub bytes: Vec<u8>,
    /// How many in-flight requests this completes on that connection.
    pub answered: usize,
    /// Close the connection once these bytes flush.
    pub close_after: bool,
}

/// The executor→reactor completion pile, coupled to the reactor's
/// wakeup eventfd.
pub struct Completions {
    pile: Mutex<Vec<Completion>>,
    wake: Arc<WakeFd>,
}

impl Completions {
    /// An empty pile that wakes `wake` on every push.
    pub fn new(wake: Arc<WakeFd>) -> Completions {
        Completions { pile: Mutex::new(Vec::new()), wake }
    }

    /// Push one completion and wake the reactor.
    pub fn push(&self, completion: Completion) {
        if let Ok(mut pile) = self.pile.lock() {
            pile.push(completion);
        }
        self.wake.wake();
    }

    /// Take everything queued (reactor side).
    pub fn drain(&self) -> Vec<Completion> {
        self.pile.lock().map(|mut pile| std::mem::take(&mut *pile)).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(conn: u64, pairs: usize) -> Job {
        Job::Query { conn, respond: RespondAs::Hopq { id: conn }, pairs: vec![(0, 0); pairs] }
    }

    #[test]
    fn flushes_on_pair_threshold_without_waiting() {
        let b = Batcher::new();
        assert!(b.submit(query(1, 3)));
        assert!(b.submit(query(2, 5)));
        let start = Instant::now();
        let batch = b.next_batch(8, Duration::from_secs(60)).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(start.elapsed() < Duration::from_secs(5), "threshold flush must not wait");
    }

    #[test]
    fn flushes_on_deadline_when_below_threshold() {
        let b = Batcher::new();
        assert!(b.submit(query(1, 1)));
        let start = Instant::now();
        let batch = b.next_batch(1_000_000, Duration::from_millis(20)).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(start.elapsed() >= Duration::from_millis(15), "flushed before the deadline");
    }

    #[test]
    fn swap_jobs_flush_immediately_and_stop_drains() {
        let b = Batcher::new();
        assert!(b.submit(query(1, 1)));
        assert!(b.submit(Job::Swap { conn: 2, id: 9 }));
        let batch = b.next_batch(1_000_000, Duration::from_secs(60)).unwrap();
        assert_eq!(batch.len(), 2, "swap weight forces the flush");

        assert!(b.submit(query(3, 1)));
        b.stop();
        assert!(!b.submit(query(4, 1)), "submit after stop must refuse");
        let drained = b.next_batch(1_000_000, Duration::from_secs(60)).unwrap();
        assert_eq!(drained.len(), 1, "queued job still drains after stop");
        assert!(b.next_batch(8, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn completions_wake_the_reactor() {
        use crate::reactor::{Poller, EV_READ};
        let wake = Arc::new(WakeFd::new().unwrap());
        let mut poller = Poller::new(4).unwrap();
        poller.register(&*wake, EV_READ, 1).unwrap();
        let completions = Completions::new(Arc::clone(&wake));
        completions.push(Completion {
            conn: 7,
            bytes: vec![1, 2, 3],
            answered: 1,
            close_after: false,
        });
        let mut woke = false;
        poller.wait(Some(1000), |ev| woke = ev.token == 1).unwrap();
        assert!(woke);
        let drained = completions.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].conn, 7);
    }
}
