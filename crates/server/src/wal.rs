//! Write-ahead log, checkpoint manifest, and crash recovery plumbing.
//!
//! Every update batch the daemon accepts is appended here *before* the
//! new generation is published and the client sees an ack, so a crash
//! or restart can replay the log into the overlay and recover exactly
//! the acknowledged state. The format is deliberately dumb — length-
//! prefixed, CRC-framed, append-only — so the reader can walk arbitrary
//! bytes without trusting any of them:
//!
//! ```text
//! file   := header record*
//! header := magic "HOPWAL01" (8B) | epoch u64 LE          (16 bytes)
//! record := len u32 LE | crc32 u32 LE | payload           (8B + len)
//! payload:= count u32 LE | count × (src u32, dst u32, w u32) LE
//! ```
//!
//! `len` covers the payload only; `crc32` (IEEE, reflected — the
//! zlib/ethernet polynomial) covers the payload only. A record is valid
//! iff its full `8 + len` bytes are present, `len` is structurally
//! plausible (`len = 4 + 12·count ≤` [`MAX_RECORD_LEN`]), and the CRC
//! matches — so a torn tail, a flipped length field, or a corrupted
//! body all stop the replay at the last good record instead of
//! panicking or over-reading ([`read_wal`] truncates-at-first-bad).
//!
//! The `epoch` ties the log to a checkpoint generation recorded in the
//! sibling `CURRENT` manifest (see [`Manifest`]). Logs are named per
//! epoch ([`wal_file_name`]): a checkpoint or swap writes the next
//! epoch's complete log *first*, then atomically flips `CURRENT`, so
//! the manifest rename is the single commit point and recovery always
//! finds a complete log for whichever epoch survived. The header epoch
//! must match the manifest's — a mismatch means the directory mixes
//! files from different lineages and recovery refuses to guess.
//!
//! Fsync policy is a runtime knob ([`Durability`]): `always` syncs
//! every append before the ack (no acknowledged batch is ever lost,
//! even to power failure), `batch` group-commits at most every
//! [`BATCH_SYNC_INTERVAL`] (bounded loss window, much cheaper under
//! write bursts), `off` leaves syncing to the OS (a process crash
//! still loses nothing — the page cache survives SIGKILL — but a power
//! cut may cost the tail).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use extmem::device::CountedFile;
use extmem::stats::IoStats;
use extmem::wire;

/// One logged update edge: `(src, dst, weight)` in original vertex ids.
pub type WalEdge = (u32, u32, u32);

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"HOPWAL01";
/// WAL file header length: magic + epoch.
pub const WAL_HEADER_LEN: u64 = 16;
/// Per-record frame overhead: length + CRC.
pub const RECORD_HEADER_LEN: u64 = 8;
/// Upper bound on one record's payload (a flipped length field must
/// never drive an over-read). 32 MiB comfortably exceeds the largest
/// update batch the wire protocol admits (16 MiB payload cap).
pub const MAX_RECORD_LEN: u32 = 1 << 25;
/// Group-commit window for [`Durability::Batch`].
pub const BATCH_SYNC_INTERVAL: Duration = Duration::from_millis(2);

/// File name of the checkpoint manifest inside a WAL directory.
pub const MANIFEST_FILE: &str = "CURRENT";

/// Name of the log file carrying `epoch`'s update tail. One log file
/// per epoch makes the manifest rename the *single* commit point of a
/// checkpoint or swap: the next epoch's log is fully written before
/// `CURRENT` flips, and whichever log the surviving manifest names is
/// complete.
pub fn wal_file_name(epoch: u64) -> String {
    format!("wal-{epoch}.log")
}

/// Name of `epoch`'s checkpoint image inside the WAL directory (its
/// `.rank` sidecar sits at `<name>.rank`, matching the boot loader).
pub fn checkpoint_image_name(epoch: u64) -> String {
    format!("ckpt-{epoch}.idx")
}

/// Best-effort garbage collection of a WAL directory: delete log
/// files, checkpoint images, and stale temp files from every epoch but
/// `keep`. Runs after boot recovery and after each manifest flip;
/// failures are ignored (a leftover file is re-collected next time).
pub fn gc_dir(dir: &Path, keep: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let keep_wal = wal_file_name(keep);
    let keep_img = checkpoint_image_name(keep);
    let keep_rank = format!("{keep_img}.rank");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == keep_wal || name == keep_img || name == keep_rank || name == MANIFEST_FILE {
            continue;
        }
        let stale_wal = name.starts_with("wal-") && name.ends_with(".log");
        let stale_ckpt = name.starts_with("ckpt-");
        let stale_tmp = name.ends_with(".tmp");
        if stale_wal || stale_ckpt || stale_tmp {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// When (if ever) an appended batch is fsynced relative to its ack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Durability {
    /// Never fsync from the hot path; rely on the OS page cache.
    Off,
    /// Group-commit: fsync at most once per [`BATCH_SYNC_INTERVAL`].
    Batch,
    /// Fsync every appended batch before it is acknowledged.
    Always,
}

impl std::str::FromStr for Durability {
    type Err = String;
    fn from_str(s: &str) -> Result<Durability, String> {
        match s {
            "off" => Ok(Durability::Off),
            "batch" => Ok(Durability::Batch),
            "always" => Ok(Durability::Always),
            other => Err(format!("unknown durability '{other}' (expected off|batch|always)")),
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Durability::Off => "off",
            Durability::Batch => "batch",
            Durability::Always => "always",
        })
    }
}

impl Durability {
    /// Wire encoding used by the `info` response (see
    /// [`crate::proto::InfoReply::durability`]).
    pub fn as_u8(self) -> u8 {
        match self {
            Durability::Off => 0,
            Durability::Batch => 1,
            Durability::Always => 2,
        }
    }
}

/// CRC32 (IEEE reflected polynomial 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

fn encode_payload(batch: &[WalEdge]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + batch.len() * 12);
    payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for &(s, t, w) in batch {
        payload.extend_from_slice(&s.to_le_bytes());
        payload.extend_from_slice(&t.to_le_bytes());
        payload.extend_from_slice(&w.to_le_bytes());
    }
    payload
}

fn encode_record(batch: &[WalEdge]) -> Vec<u8> {
    let payload = encode_payload(batch);
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// The result of walking a WAL file with [`read_wal`].
#[derive(Debug)]
pub struct Replay {
    /// Epoch from the file header; `None` when the file is missing,
    /// shorter than a header, or opens with the wrong magic (recovery
    /// then treats the log as absent and starts a fresh one).
    pub epoch: Option<u64>,
    /// Every structurally valid, CRC-clean batch, in append order.
    pub batches: Vec<Vec<WalEdge>>,
    /// Byte length of the valid prefix (header + whole good records).
    /// The recovered writer truncates the file here before appending.
    pub valid_len: u64,
    /// Bytes past the valid prefix that were discarded (torn tail,
    /// corrupt record, or trailing garbage).
    pub dropped_bytes: u64,
}

impl Replay {
    /// An empty replay for a missing log file.
    fn absent() -> Replay {
        Replay { epoch: None, batches: Vec::new(), valid_len: 0, dropped_bytes: 0 }
    }
}

/// Walk `path`, returning the longest valid prefix. Never panics on
/// arbitrary bytes; never reads past a declared length without
/// validating it first. A missing file is an empty replay, not an
/// error — only real I/O failures surface as `Err`.
pub fn read_wal(path: &Path, stats: Arc<IoStats>) -> std::io::Result<Replay> {
    if !path.exists() {
        return Ok(Replay::absent());
    }
    let mut file = CountedFile::open_path_readonly(path, stats)?;
    let len = file.len()?;
    let mut bytes = vec![0u8; len as usize];
    if len > 0 {
        file.read_exact_at(0, &mut bytes)?;
    }
    let (Some(magic), Some(epoch)) = (bytes.first_chunk::<8>(), wire::u64_at(&bytes, 8)) else {
        return Ok(Replay { dropped_bytes: len, ..Replay::absent() });
    };
    if magic != WAL_MAGIC {
        return Ok(Replay { dropped_bytes: len, ..Replay::absent() });
    }
    let mut batches = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    while let (Some(rec_len), Some(crc)) =
        (wire::u32_at(&bytes, pos), wire::u32_at(&bytes, pos + 4))
    {
        if !(4..=MAX_RECORD_LEN).contains(&rec_len) || !(rec_len - 4).is_multiple_of(12) {
            break; // implausible length: flipped field or garbage
        }
        let start = pos + RECORD_HEADER_LEN as usize;
        let Some(payload) = bytes.get(start..start + rec_len as usize) else { break };
        if crc32(payload) != crc {
            break; // torn or bit-flipped body
        }
        let Some(count) = wire::u32_at(payload, 0).map(|c| c as usize) else { break };
        if 4 + count * 12 != rec_len as usize {
            break; // count disagrees with the frame length
        }
        let mut words = wire::u32s(payload.get(4..).unwrap_or_default());
        let mut batch = Vec::with_capacity(count);
        while let (Some(s), Some(t), Some(w)) = (words.next(), words.next(), words.next()) {
            batch.push((s, t, w));
        }
        batches.push(batch);
        pos = start + rec_len as usize;
    }
    Ok(Replay {
        epoch: Some(epoch),
        batches,
        valid_len: pos as u64,
        dropped_bytes: len - pos as u64,
    })
}

/// Append handle over a WAL file, owning the fsync policy.
pub struct Wal {
    file: CountedFile,
    path: PathBuf,
    epoch: u64,
    durability: Durability,
    last_sync: Instant,
    records: u64,
    bytes: u64,
}

impl Wal {
    /// Create (or truncate) a fresh log at `path` for `epoch`. The
    /// header is written and synced before this returns.
    pub fn create(
        path: &Path,
        epoch: u64,
        durability: Durability,
        stats: Arc<IoStats>,
    ) -> std::io::Result<Wal> {
        let mut file = CountedFile::create_path(path, stats)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&epoch.to_le_bytes());
        file.write_all(&header)?;
        if durability != Durability::Off {
            file.sync_data()?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            epoch,
            durability,
            last_sync: Instant::now(),
            records: 0,
            bytes: WAL_HEADER_LEN,
        })
    }

    /// Reopen an existing log after [`read_wal`], truncating the torn
    /// tail (everything past `replay.valid_len`) and positioning for
    /// append. The replay must have a valid header.
    pub fn open_after_replay(
        path: &Path,
        replay: &Replay,
        durability: Durability,
        stats: Arc<IoStats>,
    ) -> std::io::Result<Wal> {
        let epoch = replay
            .epoch
            .ok_or_else(|| std::io::Error::other("cannot reopen a WAL without a valid header"))?;
        let mut file = CountedFile::open_path(path, stats)?;
        if replay.dropped_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        file.seek_to(replay.valid_len)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            epoch,
            durability,
            last_sync: Instant::now(),
            records: replay.batches.len() as u64,
            bytes: replay.valid_len,
        })
    }

    /// Append one batch, honoring the fsync policy. On return under
    /// [`Durability::Always`] the record is on stable storage. On ANY
    /// error — short write *or* failed fsync — the file is cut back to
    /// the previous record boundary best-effort: the caller will nack
    /// the batch, so leaving its record behind would resurrect a
    /// rejected update at the next recovery.
    pub fn append(&mut self, batch: &[WalEdge]) -> std::io::Result<()> {
        let rec = encode_record(batch);
        let mut result = self.file.write_all(&rec);
        let mut synced = false;
        if result.is_ok() {
            let want_sync = match self.durability {
                Durability::Off => false,
                Durability::Always => true,
                Durability::Batch => self.last_sync.elapsed() >= BATCH_SYNC_INTERVAL,
            };
            if want_sync {
                result = self.file.sync_data();
                synced = result.is_ok();
            }
        }
        match result {
            Ok(()) => {
                self.records += 1;
                self.bytes += rec.len() as u64;
                if synced {
                    self.last_sync = Instant::now();
                }
                Ok(())
            }
            Err(e) => {
                let _ = self.file.set_len(self.bytes);
                let _ = self.file.seek_to(self.bytes);
                Err(e)
            }
        }
    }

    /// Force an fsync regardless of policy.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Epoch stamped in the file header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records currently in the log (post-truncation, post-replace).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Byte length of the log, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Best-effort parent-directory fsync so a rename is durable. Errors
/// are ignored: not all platforms/filesystems support opening and
/// syncing directories, and the rename itself already happened.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// The `CURRENT` checkpoint manifest: which epoch the serving lineage
/// is at and which index image that epoch boots from.
///
/// Each epoch owns its own log (`wal-<epoch>.log`) and image
/// (`ckpt-<epoch>.idx`). A checkpoint writes the *next* epoch's
/// complete files first and flips `CURRENT` last (temp file, fsync,
/// rename) — the rename is the single commit point, so every crash
/// recovers cleanly:
///
/// * crash before the flip → old manifest: recovery boots the old
///   image and replays the old epoch's log in full; the half-staged
///   next epoch is garbage-collected;
/// * crash after the flip → new manifest: the new epoch's image and
///   log were complete and synced before the rename, so recovery boots
///   them directly; the old epoch's leftovers are garbage-collected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint epoch; a fresh lineage starts at 0.
    pub epoch: u64,
    /// Index image (`HOPIDX01`) this epoch boots from; a `.rank`
    /// sidecar next to it is honored exactly like at first boot.
    pub index_path: PathBuf,
}

/// Read `dir/CURRENT`; `Ok(None)` when absent or unparsable (a torn
/// manifest write leaves the old complete file in place thanks to the
/// rename, so "unparsable" only happens to hand-edited files — recovery
/// then falls back to the boot image like on first start).
pub fn read_manifest(dir: &Path) -> std::io::Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_FILE);
    if !path.exists() {
        return Ok(None);
    }
    let bytes = std::fs::read(&path)?;
    let Ok(text) = std::str::from_utf8(&bytes) else {
        return Ok(None);
    };
    let mut lines = text.lines();
    if lines.next() != Some("HOPCUR01") {
        return Ok(None);
    }
    let Some(epoch) = lines.next().and_then(|l| l.parse::<u64>().ok()) else {
        return Ok(None);
    };
    let Some(index_path) = lines.next() else {
        return Ok(None);
    };
    Ok(Some(Manifest { epoch, index_path: PathBuf::from(index_path) }))
}

/// Atomically publish `dir/CURRENT` (temp file, fsync, rename,
/// best-effort directory sync).
pub fn write_manifest(dir: &Path, manifest: &Manifest, stats: Arc<IoStats>) -> std::io::Result<()> {
    let tmp_path = dir.join("CURRENT.tmp");
    let final_path = dir.join(MANIFEST_FILE);
    let mut tmp = CountedFile::create_path(&tmp_path, stats)?;
    let body = format!("HOPCUR01\n{}\n{}\n", manifest.epoch, manifest.index_path.to_string_lossy());
    tmp.write_all(body.as_bytes())?;
    tmp.sync_data()?;
    std::fs::rename(&tmp_path, &final_path)?;
    sync_parent_dir(&final_path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::device::TempStore;

    fn batches() -> Vec<Vec<WalEdge>> {
        vec![vec![(0, 1, 5), (2, 3, 7)], vec![(4, 5, 1)], vec![(6, 7, 9), (8, 9, 2), (10, 11, 3)]]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn durability_parses_and_displays() {
        for (s, d) in
            [("off", Durability::Off), ("batch", Durability::Batch), ("always", Durability::Always)]
        {
            assert_eq!(s.parse::<Durability>().unwrap(), d);
            assert_eq!(d.to_string(), s);
        }
        assert!("fsync".parse::<Durability>().is_err());
    }

    #[test]
    fn append_replay_roundtrip() {
        let store = TempStore::new().unwrap();
        let path = store.create("wal").unwrap().path().to_path_buf();
        let mut wal = Wal::create(&path, 42, Durability::Always, IoStats::shared()).unwrap();
        for b in batches() {
            wal.append(&b).unwrap();
        }
        assert_eq!(wal.records(), 3);
        let replay = read_wal(&path, IoStats::shared()).unwrap();
        assert_eq!(replay.epoch, Some(42));
        assert_eq!(replay.batches, batches());
        assert_eq!(replay.dropped_bytes, 0);
        assert_eq!(replay.valid_len, wal.bytes());
    }

    #[test]
    fn missing_file_is_an_empty_replay() {
        let store = TempStore::new().unwrap();
        let path = store.create("never").unwrap().path().with_extension("absent");
        let replay = read_wal(&path, IoStats::shared()).unwrap();
        assert_eq!(replay.epoch, None);
        assert!(replay.batches.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_reopen_appends_cleanly() {
        let store = TempStore::new().unwrap();
        let path = store.create("wal").unwrap().path().to_path_buf();
        let mut wal = Wal::create(&path, 7, Durability::Off, IoStats::shared()).unwrap();
        for b in batches() {
            wal.append(&b).unwrap();
        }
        let full = wal.bytes();
        drop(wal);
        // Tear 5 bytes off the final record.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);
        let replay = read_wal(&path, IoStats::shared()).unwrap();
        assert_eq!(replay.epoch, Some(7));
        assert_eq!(replay.batches, batches()[..2].to_vec());
        assert_eq!(replay.dropped_bytes, (full - 5) - replay.valid_len);
        // Reopen truncates the tear and appends a new record cleanly.
        let mut wal =
            Wal::open_after_replay(&path, &replay, Durability::Always, IoStats::shared()).unwrap();
        wal.append(&[(9, 9, 9)]).unwrap();
        let replay2 = read_wal(&path, IoStats::shared()).unwrap();
        let mut expect = batches()[..2].to_vec();
        expect.push(vec![(9, 9, 9)]);
        assert_eq!(replay2.batches, expect);
        assert_eq!(replay2.dropped_bytes, 0);
    }

    #[test]
    fn torn_append_is_healed_in_place() {
        use extmem::device::faults;
        let store = TempStore::new().unwrap();
        let path = store.create("wal-heal-target").unwrap().path().to_path_buf();
        let mut wal = Wal::create(&path, 3, Durability::Off, IoStats::shared()).unwrap();
        wal.append(&[(1, 2, 3)]).unwrap();
        faults::set_path_filter(Some("wal-heal-target"));
        faults::short_write_after(0);
        assert!(wal.append(&[(4, 5, 6)]).is_err());
        faults::reset();
        // The torn bytes were cut back; the next append stays readable.
        wal.append(&[(7, 8, 9)]).unwrap();
        let replay = read_wal(&path, IoStats::shared()).unwrap();
        assert_eq!(replay.batches, vec![vec![(1, 2, 3)], vec![(7, 8, 9)]]);
        assert_eq!(replay.dropped_bytes, 0);
    }

    #[test]
    fn epoch_file_names_and_gc() {
        let store = TempStore::new().unwrap();
        let dir = store.create("probe").unwrap().path().parent().unwrap().to_path_buf();
        for name in
            [wal_file_name(3), wal_file_name(4), checkpoint_image_name(3), "ckpt-3.idx.rank".into()]
        {
            std::fs::write(dir.join(&name), b"x").unwrap();
        }
        std::fs::write(dir.join("ckpt-4.idx.tmp"), b"x").unwrap();
        write_manifest(
            &dir,
            &Manifest { epoch: 4, index_path: dir.join(checkpoint_image_name(4)) },
            IoStats::shared(),
        )
        .unwrap();
        gc_dir(&dir, 4);
        assert!(dir.join(wal_file_name(4)).exists());
        assert!(dir.join(MANIFEST_FILE).exists());
        assert!(!dir.join(wal_file_name(3)).exists());
        assert!(!dir.join(checkpoint_image_name(3)).exists());
        assert!(!dir.join("ckpt-3.idx.rank").exists());
        assert!(!dir.join("ckpt-4.idx.tmp").exists());
    }

    #[test]
    fn bad_header_reads_as_absent() {
        let store = TempStore::new().unwrap();
        let path = store.create("wal").unwrap().path().to_path_buf();
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        let replay = read_wal(&path, IoStats::shared()).unwrap();
        assert_eq!(replay.epoch, None);
        assert_eq!(replay.dropped_bytes, 8);
        assert!(Wal::open_after_replay(&path, &replay, Durability::Off, IoStats::shared()).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_absence() {
        let store = TempStore::new().unwrap();
        let dir = store.create("probe").unwrap().path().parent().unwrap().to_path_buf();
        assert_eq!(read_manifest(&dir).unwrap(), None);
        let m = Manifest { epoch: 9, index_path: PathBuf::from("/tmp/idx.bin") };
        write_manifest(&dir, &m, IoStats::shared()).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(m.clone()));
        let m2 = Manifest { epoch: 10, index_path: PathBuf::from("/elsewhere/ckpt-10.idx") };
        write_manifest(&dir, &m2, IoStats::shared()).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(m2));
        // Garbage manifests read as absent, never panic.
        std::fs::write(dir.join(MANIFEST_FILE), b"\xFF\xFE\x00garbage").unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
    }
}
