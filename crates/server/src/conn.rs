//! Per-connection state for the epoll backend.
//!
//! A [`Conn`] owns one nonblocking `TcpStream` plus the read and write
//! buffers that turn readiness events into whole protocol requests:
//!
//! * the **read buffer** accumulates bytes until [`Conn::next_request`]
//!   can cut a complete frame (HOPQ binary or HTTP), at arbitrary byte
//!   boundaries — a frame may arrive in one segment or one byte at a
//!   time;
//! * the **write buffer** holds encoded responses the socket was not
//!   ready to take; a cursor tracks the flushed prefix and the buffer
//!   compacts lazily.
//!
//! The protocol spoken is detected from the first bytes: `"HOPQ"` magic
//! selects the binary protocol, an HTTP method selects the HTTP/JSON
//! front, anything else is handed to the binary decoder whose bad-magic
//! path produces the fatal error frame. Detection is per-connection and
//! permanent.
//!
//! The connection itself never decides *policy* — in-flight caps, write
//! high-water backpressure, and idle timeouts are judged by the reactor
//! loop reading [`Conn`] fields; this module only does mechanics.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{self, HttpDecoded};
use crate::proto::{decode_request, Decoded, Request};

/// Bytes read from a socket per readiness pass. Level-triggered epoll
/// re-reports a socket with leftover bytes, so a bounded pass keeps one
/// fire-hose connection from starving the rest.
const READ_PASS_BUDGET: usize = 256 << 10;

/// Pause reading from a connection whose write buffer backs up past
/// this many bytes (a peer that sends queries but never reads answers).
pub const WRITE_HIGH_WATER: usize = 1 << 20;

/// Which protocol the peer speaks, detected from its first bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Not enough bytes yet to tell.
    Unknown,
    /// Binary `HOPQ` frames.
    Hopq,
    /// The HTTP/1.1 JSON front.
    Http,
}

/// A whole request cut from the read buffer, or a stream-level event.
#[derive(Debug)]
pub enum ConnRequest {
    /// A well-formed binary request.
    Hopq(Request),
    /// A frame-aligned binary violation: answer with an error response
    /// carrying `id`, keep the connection.
    HopqBad {
        /// Request id from the offending frame's header.
        id: u64,
        /// What was wrong.
        msg: String,
    },
    /// Stream corruption: send a final error frame and close.
    HopqFatal(String),
    /// A well-formed HTTP request (`close` = client asked to close
    /// after the response).
    Http {
        /// The parsed request.
        request: http::HttpRequest,
        /// Whether to close once the response is flushed.
        close: bool,
    },
    /// An HTTP-level refusal: queue the pre-rendered response, close.
    HttpError(Vec<u8>),
}

/// Lifecycle of one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Serving normally.
    Open,
    /// A close was decided (fatal error, HTTP `Connection: close`,
    /// server drain); finish flushing the write buffer, then close.
    /// No further requests are read.
    CloseAfterFlush,
    /// The write side was shut down; discard whatever the peer still
    /// sends (bounded) so the close doesn't RST away the final frames.
    Draining {
        /// Remaining discard budget in bytes.
        budget: usize,
    },
    /// Fully done — the reactor should deregister and drop it.
    Dead,
}

/// One nonblocking connection with its buffers and protocol state.
pub struct Conn {
    /// The socket (nonblocking).
    pub stream: TcpStream,
    /// Detected protocol.
    pub mode: Mode,
    /// Lifecycle state.
    pub state: ConnState,
    /// Unanswered requests handed to the batcher. The reactor stops
    /// *reading* (not answering) past its cap.
    pub inflight: usize,
    /// Peer closed its write side (EOF seen); finish in-flight work,
    /// flush, then close.
    pub peer_eof: bool,
    /// Last moment bytes arrived or a response was queued — the idle
    /// sweep evicts connections stale past the timeout.
    pub last_activity: Instant,
    /// Interest mask currently registered with the poller (`EV_*`).
    pub registered: u32,
    rbuf: Vec<u8>,
    rpos: usize,
    wbuf: Vec<u8>,
    wpos: usize,
}

impl Conn {
    /// Wrap an accepted stream (caller has already set nonblocking).
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            mode: Mode::Unknown,
            state: ConnState::Open,
            inflight: 0,
            peer_eof: false,
            last_activity: now,
            registered: 0,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
        }
    }

    /// Unparsed bytes currently buffered.
    pub fn pending_read_bytes(&self) -> usize {
        self.rbuf.len() - self.rpos
    }

    /// Unflushed response bytes currently buffered.
    pub fn pending_write_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether the write buffer is past the backpressure high-water
    /// mark (reading should pause until it drains).
    pub fn write_backed_up(&self) -> bool {
        self.pending_write_bytes() > WRITE_HIGH_WATER
    }

    /// Read whatever the socket has, up to the per-pass budget.
    /// Returns the bytes read this pass; sets [`Conn::peer_eof`] on a
    /// clean EOF. `WouldBlock` is "done for now", other errors kill the
    /// connection.
    pub fn fill(&mut self, now: Instant) -> std::io::Result<usize> {
        let mut total = 0usize;
        let mut chunk = [0u8; 16 << 10];
        while total < READ_PASS_BUDGET {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if total > 0 {
            self.last_activity = now;
        }
        Ok(total)
    }

    /// Cut the next whole request off the read buffer, detecting the
    /// protocol on first contact. `None` = need more bytes (or the
    /// connection is past reading).
    pub fn next_request(&mut self, max_batch: usize) -> Option<ConnRequest> {
        if self.state != ConnState::Open {
            return None;
        }
        self.compact_read();
        let buf = &self.rbuf[self.rpos..];
        if self.mode == Mode::Unknown {
            if buf.len() < 4 {
                // A closed peer that never sent 4 bytes can't be classified
                // and never will be; nothing to cut either way.
                return None;
            }
            self.mode = if http::looks_like_http(buf) { Mode::Http } else { Mode::Hopq };
        }
        let buf = &self.rbuf[self.rpos..];
        match self.mode {
            Mode::Unknown => unreachable!("mode settled above"),
            Mode::Hopq => match decode_request(buf, max_batch) {
                Decoded::Incomplete => None,
                Decoded::Request { request, used } => {
                    self.rpos += used;
                    Some(ConnRequest::Hopq(request))
                }
                Decoded::Bad { id, msg, used } => {
                    self.rpos += used;
                    Some(ConnRequest::HopqBad { id, msg })
                }
                Decoded::Fatal(msg) => Some(ConnRequest::HopqFatal(msg)),
            },
            Mode::Http => match http::decode_http(buf) {
                HttpDecoded::Incomplete => None,
                HttpDecoded::Request { request, close, used } => {
                    self.rpos += used;
                    Some(ConnRequest::Http { request, close })
                }
                HttpDecoded::Error(resp) => Some(ConnRequest::HttpError(resp)),
            },
        }
    }

    fn compact_read(&mut self) {
        if self.rpos > 0 && (self.rpos == self.rbuf.len() || self.rpos >= 32 << 10) {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }

    /// Queue encoded response bytes for writing.
    pub fn queue_write(&mut self, bytes: &[u8], now: Instant) {
        // Compact before growing: flushed prefixes of earlier responses
        // must not accumulate under a slow reader.
        if self.wpos > 0 && (self.wpos == self.wbuf.len() || self.wpos >= 32 << 10) {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        self.wbuf.extend_from_slice(bytes);
        self.last_activity = now;
    }

    /// Write as much buffered response data as the socket takes.
    /// Returns `true` when the buffer fully drained. `WouldBlock` is
    /// "socket full", other errors kill the connection.
    pub fn flush(&mut self) -> std::io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::RequestBody;
    use std::net::TcpListener;

    fn pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        (Conn::new(server_side, Instant::now()), peer)
    }

    #[test]
    fn detects_protocol_and_cuts_frames_across_boundaries() {
        let (mut conn, mut peer) = pair();
        let frame = Request { id: 5, body: RequestBody::Query(vec![(1, 2)]) }.encode();
        // Drip the frame one byte at a time: never a spurious request,
        // exactly one at the end.
        for (i, b) in frame.iter().enumerate() {
            peer.write_all(std::slice::from_ref(b)).unwrap();
            loop {
                if conn.fill(Instant::now()).unwrap() > 0 {
                    break;
                }
            }
            let got = conn.next_request(1 << 16);
            if i + 1 < frame.len() {
                assert!(got.is_none(), "byte {i}: {got:?}");
            } else {
                match got {
                    Some(ConnRequest::Hopq(req)) => assert_eq!(req.id, 5),
                    other => panic!("want request, got {other:?}"),
                }
            }
        }
        assert_eq!(conn.mode, Mode::Hopq);
        assert_eq!(conn.pending_read_bytes(), 0);

        // A second conn speaking HTTP classifies as HTTP.
        let (mut conn2, mut peer2) = pair();
        peer2.write_all(b"GET /stats HTTP/1.1\r\n\r\n").unwrap();
        while conn2.fill(Instant::now()).unwrap() == 0 {}
        match conn2.next_request(16) {
            Some(ConnRequest::Http { request: http::HttpRequest::Stats, close: false }) => {}
            other => panic!("want stats, got {other:?}"),
        }
        assert_eq!(conn2.mode, Mode::Http);
    }

    #[test]
    fn pipelined_frames_cut_in_order_and_garbage_is_fatal() {
        let (mut conn, mut peer) = pair();
        let mut bytes = Vec::new();
        for id in [10u64, 11, 12] {
            bytes.extend_from_slice(&Request { id, body: RequestBody::Stats }.encode());
        }
        peer.write_all(&bytes).unwrap();
        while conn.fill(Instant::now()).unwrap() == 0 {}
        for want in [10u64, 11, 12] {
            match conn.next_request(16) {
                Some(ConnRequest::Hopq(req)) => assert_eq!(req.id, want),
                other => panic!("want {want}, got {other:?}"),
            }
        }
        assert!(conn.next_request(16).is_none());

        let (mut garbage, mut peer3) = pair();
        peer3.write_all(b"XXXXXXXX").unwrap();
        while garbage.fill(Instant::now()).unwrap() == 0 {}
        assert!(matches!(garbage.next_request(16), Some(ConnRequest::HopqFatal(_))));
    }

    #[test]
    fn flush_reports_drained_and_eof_is_flagged() {
        let (mut conn, mut peer) = pair();
        conn.queue_write(b"hello", Instant::now());
        assert_eq!(conn.pending_write_bytes(), 5);
        assert!(conn.flush().unwrap());
        assert_eq!(conn.pending_write_bytes(), 0);
        let mut got = [0u8; 5];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");

        drop(peer);
        while !conn.peer_eof {
            conn.fill(Instant::now()).unwrap();
        }
    }
}
