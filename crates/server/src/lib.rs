#![warn(missing_docs)]

//! # hopdb-server — a long-running query daemon over `FlatIndex`
//!
//! The serving process the paper's sub-microsecond query path deserves:
//! a TCP daemon speaking a small length-prefixed binary protocol
//! ([`proto`]), booting straight from a serialized `HOPIDX01` index
//! into the frozen [`hoplabels::flat::FlatIndex`] layout (falling back
//! to the disk-resident LRU path when the file exceeds an admission
//! budget), fanning request batches across `FlatIndex::query_many`'s
//! scoped worker pool, and supporting *hot index swap*: an
//! admin-frame-triggered atomic `Arc<Generation>` promotion so a
//! parallel rebuild can replace the serving index without dropping a
//! single connection.
//!
//! * [`proto`] — the `HOPQ`/`HOPR` wire format and its codec;
//! * [`backend`] — one immutable index generation (resident or
//!   disk-cached) plus optional `.rank` id translation;
//! * [`server`] — accept loop, connection worker pool, dispatch, swap;
//! * [`client`] — a blocking client used by `hopdb-cli admin`, the
//!   `serverperf` harness, and the end-to-end tests.
//!
//! ```
//! use extmem::device::TempStore;
//! use hoplabels::disk::DiskIndex;
//! use hoplabels::{LabelEntry, LabelIndex};
//! use hopdb_server::{serve, Client, ServerConfig};
//!
//! // A 3-vertex path 1 –2– 0 –5– 2, serialized to disk.
//! let mut idx = LabelIndex::new_undirected(3);
//! if let LabelIndex::Undirected(u) = &mut idx {
//!     u.labels[1].insert_min(LabelEntry::new(0, 2));
//!     u.labels[2].insert_min(LabelEntry::new(0, 5));
//! }
//! let store = TempStore::new().unwrap();
//! let path = DiskIndex::create(&idx, &store, "doc").unwrap().persist();
//!
//! let handle = serve("127.0.0.1:0", &path, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! assert_eq!(client.query(&[(1, 2), (2, 2)]).unwrap(), vec![7, 0]);
//! handle.shutdown();
//! std::fs::remove_file(path).unwrap();
//! ```

pub mod backend;
#[cfg(target_os = "linux")]
pub mod batch;
pub mod client;
#[cfg(target_os = "linux")]
pub mod conn;
pub mod http;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(target_os = "linux")]
pub mod router;
pub mod server;
pub mod wal;

pub use backend::{Generation, LiveGeneration};
pub use client::Client;
#[cfg(target_os = "linux")]
pub use router::{serve_router, RouteMode, RouterConfig, RouterHandle};
pub use server::{serve, Backend, ServerConfig, ServerHandle};
