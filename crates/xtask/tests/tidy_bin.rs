//! End-to-end proof that every tidy pass is live: each test builds a
//! throwaway workspace fixture containing one deliberate violation,
//! runs the real `xtask` binary against it with `--root`, and asserts
//! both the nonzero exit status and the `file:line` diagnostic. A
//! final test runs the full suite over a consistent fixture and
//! expects `tidy: clean`, so a pass that silently stops finding
//! anything fails here rather than rotting.

use std::path::PathBuf;
use std::process::Command;

/// A self-cleaning fixture workspace under the system temp dir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!("tidy-bin-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    /// Write `contents` at `rel`, creating parent directories.
    fn write(&self, rel: &str, contents: &str) -> &Fixture {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("rel has a parent"))
            .expect("create fixture dirs");
        std::fs::write(path, contents).expect("write fixture file");
        self
    }

    /// Run `xtask tidy --root <fixture> [--pass <pass>]`, returning
    /// (exit success, stdout, stderr).
    fn tidy(&self, pass: Option<&str>) -> (bool, String, String) {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
        cmd.arg("tidy").arg("--root").arg(&self.root);
        if let Some(p) = pass {
            cmd.arg("--pass").arg(p);
        }
        let out = cmd.output().expect("run xtask");
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// A proto.rs whose docs, constants, and decode arms all agree; taken
/// from the shapes the checker parses out of the real file.
const PROTO_OK: &str = r#"
//! ```text
//! magic        4 bytes   "HOPQ"
//! version      u8        1 through 2
//! kind/status  u8        request kind
//! request id   u64 LE    echoed
//! payload_len  u32 LE    bytes following
//! ```
//!
//! | kind | name  | since | payload |
//! |------|-------|-------|---------|
//! | 1    | query | v1    | pairs |
//! | 2    | swap  | v2    | empty |

pub const VERSION: u8 = 2;
pub const MIN_VERSION: u8 = 1;
pub const HEADER_LEN: usize = 18;
pub const MAX_PAYLOAD: u32 = 1 << 24;
const KIND_QUERY: u8 = 1;
const KIND_SWAP: u8 = 2;
const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;

impl RequestBody {
    fn min_version(&self) -> u8 {
        match self {
            RequestBody::Swap => 2,
            _ => 1,
        }
    }
}

fn decode(payload: &[u8]) {
    match kind {
        Some(&KIND_SWAP) if payload.len() == 17 => {}
        _ => {}
    }
}
"#;

/// A README whose protocol block matches `PROTO_OK`.
const README_OK: &str = "# fixture\n\n\
**Wire protocol**: every frame is an 18-byte header + payload.\n\n\
```text\n\
magic        4 B    request\n\
version      u8     1 through 2\n\
kind/status  u8     1=query 2=swap / 0=ok 1=error\n\
request id   u64 LE echoed\n\
payload len  u32 LE \u{2264} 16 MiB\n\
```\n";

/// Populate the files the proto pass hard-requires (it errors rather
/// than skipping when they are absent) with mutually consistent text.
fn with_consistent_proto(fx: &Fixture) {
    fx.write("crates/server/src/proto.rs", PROTO_OK);
    fx.write("README.md", README_OK);
}

#[test]
fn unsafe_pass_flags_undocumented_block_with_file_and_line() {
    let fx = Fixture::new("unsafe-violation");
    fx.write("crates/demo/src/lib.rs", "pub fn peek(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
    let (ok, _out, err) = fx.tidy(Some("unsafe"));
    assert!(!ok, "undocumented unsafe block must fail tidy");
    assert!(
        err.contains("crates/demo/src/lib.rs:2"),
        "diagnostic must carry file:line, got:\n{err}"
    );
    assert!(err.contains("SAFETY"), "diagnostic must name the missing comment, got:\n{err}");
}

#[test]
fn unsafe_pass_accepts_documented_block_and_inventories_it() {
    let fx = Fixture::new("unsafe-ok");
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn peek(p: *const u8) -> u8 {\n    // SAFETY: caller contract says p is valid.\n    unsafe { *p }\n}\n",
    );
    let (ok, out, err) = fx.tidy(Some("unsafe"));
    assert!(ok, "documented unsafe must pass, stderr:\n{err}");
    assert!(
        out.contains("crates/demo/src/lib.rs:3"),
        "inventory must list the documented site, got:\n{out}"
    );
}

#[test]
fn panic_pass_flags_unwrap_in_wire_facing_module() {
    let fx = Fixture::new("panic-violation");
    fx.write(
        "crates/server/src/proto.rs",
        "fn kind(payload: &[u8]) -> u8 {\n    payload.first().copied().unwrap()\n}\n",
    );
    let (ok, _out, err) = fx.tidy(Some("panic"));
    assert!(!ok, "unwrap in a decode module must fail tidy");
    assert!(
        err.contains("crates/server/src/proto.rs:2"),
        "diagnostic must carry file:line, got:\n{err}"
    );
}

#[test]
fn panic_pass_flags_slice_indexing_but_tolerates_test_code() {
    let fx = Fixture::new("panic-indexing");
    fx.write(
        "crates/server/src/proto.rs",
        "fn first(payload: &[u8]) -> u8 {\n    payload[0]\n}\n\
         #[cfg(test)]\nmod tests {\n    fn helper(p: &[u8]) -> u8 {\n        p[0]\n    }\n}\n",
    );
    let (ok, _out, err) = fx.tidy(Some("panic"));
    assert!(!ok);
    assert!(err.contains("crates/server/src/proto.rs:2"), "got:\n{err}");
    assert!(!err.contains("proto.rs:7"), "test-only indexing must be exempt, got:\n{err}");
}

#[test]
fn panic_pass_rejects_stale_allowlist_entries() {
    let fx = Fixture::new("panic-stale-allowlist");
    fx.write("crates/server/src/proto.rs", "fn nothing_panics_here() {}\n");
    fx.write("crates/xtask/tidy.allowlist", "crates/server/src/proto.rs: payload[unreachable]\n");
    let (ok, _out, err) = fx.tidy(Some("panic"));
    assert!(!ok, "a stale allowlist entry must fail tidy");
    assert!(err.contains("stale"), "diagnostic must say the entry is stale, got:\n{err}");
}

#[test]
fn locks_pass_flags_out_of_order_acquisition() {
    let fx = Fixture::new("locks-violation");
    fx.write(
        "crates/server/src/backend.rs",
        "fn apply(shared: &Shared) {\n    let snap = shared.current.read();\n    \
         let log = shared.update_log.lock();\n}\n",
    );
    let (ok, _out, err) = fx.tidy(Some("locks"));
    assert!(!ok, "acquiring update_log under current must fail tidy");
    assert!(
        err.contains("crates/server/src/backend.rs:3"),
        "diagnostic must point at the inner acquisition, got:\n{err}"
    );
    assert!(err.contains("lock-order violation"), "got:\n{err}");
}

#[test]
fn locks_pass_accepts_hierarchy_order() {
    let fx = Fixture::new("locks-ok");
    fx.write(
        "crates/server/src/backend.rs",
        "fn apply(shared: &Shared) {\n    let serial = shared.mutate_serial.lock();\n    \
         let log = shared.update_log.lock();\n    let snap = shared.current.read();\n}\n",
    );
    let (ok, _out, err) = fx.tidy(Some("locks"));
    assert!(ok, "in-order acquisition must pass, stderr:\n{err}");
}

#[test]
fn proto_pass_flags_readme_drift_against_proto_constants() {
    let fx = Fixture::new("proto-violation");
    fx.write("crates/server/src/proto.rs", PROTO_OK);
    fx.write("README.md", &README_OK.replace("2=swap", "3=swap"));
    let (ok, _out, err) = fx.tidy(Some("proto"));
    assert!(!ok, "README kind table drifting from proto.rs must fail tidy");
    assert!(err.contains("README.md:"), "diagnostic must carry file:line, got:\n{err}");
    assert!(err.contains("3=swap"), "diagnostic must quote the drifted entry, got:\n{err}");
}

#[test]
fn proto_pass_flags_header_length_drift_in_proto_itself() {
    let fx = Fixture::new("proto-header-drift");
    fx.write(
        "crates/server/src/proto.rs",
        &PROTO_OK.replace("HEADER_LEN: usize = 18", "HEADER_LEN: usize = 20"),
    );
    fx.write("README.md", README_OK);
    let (ok, _out, err) = fx.tidy(Some("proto"));
    assert!(!ok, "doc fence no longer summing to HEADER_LEN must fail tidy");
    assert!(err.contains("crates/server/src/proto.rs:"), "got:\n{err}");
}

#[test]
fn full_suite_reports_clean_on_a_consistent_tree() {
    let fx = Fixture::new("all-clean");
    with_consistent_proto(&fx);
    fx.write(
        "crates/server/src/backend.rs",
        "fn apply(shared: &Shared) {\n    let serial = shared.mutate_serial.lock();\n    \
         let snap = shared.current.read();\n}\n",
    );
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn double(x: u32) -> u32 {\n    x.saturating_mul(2)\n}\n",
    );
    let (ok, out, err) = fx.tidy(None);
    assert!(ok, "consistent fixture must pass every pass, stderr:\n{err}");
    assert!(out.contains("tidy: clean"), "got stdout:\n{out}");
}

#[test]
fn full_suite_counts_findings_across_passes() {
    let fx = Fixture::new("all-dirty");
    with_consistent_proto(&fx);
    // One unsafe violation and one panic violation in separate files.
    fx.write("crates/demo/src/lib.rs", "pub fn peek(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n");
    fx.write("crates/server/src/http.rs", "fn first(b: &[u8]) -> u8 {\n    b[0]\n}\n");
    let (ok, _out, err) = fx.tidy(None);
    assert!(!ok);
    assert!(err.contains("crates/demo/src/lib.rs:2"), "got:\n{err}");
    assert!(err.contains("crates/server/src/http.rs:2"), "got:\n{err}");
    assert!(err.contains("2 finding(s)"), "summary must count findings, got:\n{err}");
}

/// The binary must also fail loudly (not pass vacuously) when the
/// proto pass cannot find the files it checks.
#[test]
fn proto_pass_errors_when_sources_are_missing() {
    let fx = Fixture::new("proto-missing");
    let (ok, _out, err) = fx.tidy(Some("proto"));
    assert!(!ok, "missing proto.rs/README.md must not count as clean");
    assert!(err.contains("failed to read sources"), "got:\n{err}");
}
