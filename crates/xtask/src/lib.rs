#![forbid(unsafe_code)]
//! In-tree static-analysis suite (`cargo run -p xtask -- tidy`),
//! rustc-`tidy` style: zero dependencies, a hand-rolled line/token
//! scanner, and four independent passes that each print `file:line`
//! diagnostics and make the binary exit nonzero:
//!
//! 1. [`unsafe_audit`] — every `unsafe` block/fn must carry a
//!    `// SAFETY:` comment (`# Safety` doc section for `unsafe fn`),
//!    and the pass emits an inventory of all unsafe sites.
//! 2. [`panic_lint`] — deny `unwrap`/`expect`/panicking macros/slice
//!    indexing in the wire-facing decode modules outside
//!    `#[cfg(test)]`, driven by the checked-in allowlist
//!    `crates/xtask/tidy.allowlist`.
//! 3. [`lock_order`] — flag `.lock()`/`.read()`/`.write()` sequences
//!    in the serving core that violate the declared
//!    `mutate_serial → update_log → durable → current` hierarchy.
//! 4. [`proto_check`] — parse kind/version constants and fixed frame
//!    sizes out of `proto.rs` and assert they agree with the README
//!    protocol table and the documented header/RouteReply byte counts.

pub mod lock_order;
pub mod panic_lint;
pub mod proto_check;
pub mod scan;
pub mod unsafe_audit;

use std::fmt;
use std::path::Path;

/// One `file:line` finding from a tidy pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Root-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Result of running every pass: diagnostics per pass, in run order.
pub struct TidyReport {
    /// `(pass name, findings)` for each pass that ran.
    pub passes: Vec<(&'static str, Vec<Diagnostic>)>,
    /// The unsafe-site inventory (printed even when the audit is clean).
    pub inventory: Vec<unsafe_audit::UnsafeSite>,
}

impl TidyReport {
    /// Total number of findings across all passes.
    pub fn total(&self) -> usize {
        self.passes.iter().map(|(_, d)| d.len()).sum()
    }
}

/// Run every tidy pass against the workspace rooted at `root`.
/// `only` restricts the run to a single pass name.
pub fn run_tidy(root: &Path, only: Option<&str>) -> std::io::Result<TidyReport> {
    let mut passes = Vec::new();
    let mut inventory = Vec::new();
    let want = |name: &str| only.is_none_or(|o| o == name);
    if want("unsafe") {
        let (sites, diags) = unsafe_audit::check(root)?;
        inventory = sites;
        passes.push(("unsafe", diags));
    }
    if want("panic") {
        passes.push(("panic", panic_lint::check(root)?));
    }
    if want("locks") {
        passes.push(("locks", lock_order::check(root)?));
    }
    if want("proto") {
        passes.push(("proto", proto_check::check(root)?));
    }
    Ok(TidyReport { passes, inventory })
}
