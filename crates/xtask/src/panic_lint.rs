//! Pass 2: the panic-freedom lint. The wire-facing decode modules
//! promise "never panics on arbitrary bytes"; this pass makes the
//! promise mechanical by denying `unwrap`/`expect`, panicking macros,
//! and slice-index expressions in those files outside `#[cfg(test)]`.
//!
//! Intentional sites are not silently tolerated: they must be listed
//! in `crates/xtask/tidy.allowlist` (`file: substring-of-line`), one
//! entry per justified line, and entries that no longer match anything
//! are themselves errors — the list can only shrink honestly.

use crate::scan::{ident_before, SourceFile};
use crate::Diagnostic;
use std::path::Path;

/// The wire-facing decode modules the lint covers: the HOPQ codec, the
/// WAL reader, the HTTP/1.1 parser, and the shard-sidecar parser.
pub const WIRE_FACING: [&str; 5] = [
    "crates/server/src/proto.rs",
    "crates/server/src/wal.rs",
    "crates/server/src/http.rs",
    "crates/hoplabels/src/shard.rs",
    "crates/sfgraph/src/io.rs",
];

/// Root-relative path of the checked-in allowlist.
pub const ALLOWLIST: &str = "crates/xtask/tidy.allowlist";

/// Method calls that can panic.
const METHODS: [&str; 2] = [".unwrap()", ".expect("];
/// Macros that (always or on failure) panic. `debug_assert*` is
/// deliberately absent: release wire paths never execute it.
const MACROS: [&str; 7] =
    ["panic!", "unreachable!", "todo!", "unimplemented!", "assert!", "assert_eq!", "assert_ne!"];

/// One allowlist entry: `file: pattern`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Root-relative file the entry applies to.
    pub file: String,
    /// Substring that must occur in the flagged raw line.
    pub pattern: String,
    /// Line number in the allowlist file (for stale-entry reports).
    pub line: usize,
}

/// Parse the allowlist text (`#` comments and blank lines skipped).
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((file, pattern)) = line.split_once(": ") {
            out.push(AllowEntry {
                file: file.trim().to_string(),
                pattern: pattern.trim().to_string(),
                line: idx + 1,
            });
        } else {
            out.push(AllowEntry { file: line.to_string(), pattern: String::new(), line: idx + 1 });
        }
    }
    out
}

/// Run the lint over the wire-facing files under `root`, applying the
/// checked-in allowlist.
pub fn check(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST)).unwrap_or_default();
    let mut files = Vec::new();
    for rel in WIRE_FACING {
        if root.join(rel).is_file() {
            files.push(SourceFile::read(root, rel)?);
        }
    }
    Ok(check_files(&files, &parse_allowlist(&allow_text)))
}

/// Lint scanned files against the given allowlist. Stale entries are
/// reported against the allowlist file itself.
pub fn check_files(files: &[SourceFile], allow: &[AllowEntry]) -> Vec<Diagnostic> {
    let mut used = vec![false; allow.len()];
    let mut out = Vec::new();
    for file in files {
        for line in &file.lines {
            if line.in_test {
                continue;
            }
            let Some(what) = first_violation(&line.code) else { continue };
            let allowed = allow.iter().enumerate().any(|(i, e)| {
                let hit = e.file == file.path && line.raw.contains(&e.pattern);
                if hit {
                    used[i] = true;
                }
                hit
            });
            if !allowed {
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "{what} in a wire-facing decode module: return a recoverable error \
                         instead, or add a justified entry to {ALLOWLIST}"
                    ),
                });
            }
        }
    }
    for (entry, used) in allow.iter().zip(used) {
        if !used {
            out.push(Diagnostic {
                file: ALLOWLIST.to_string(),
                line: entry.line,
                message: format!(
                    "stale allowlist entry `{}: {}` matches nothing — delete it",
                    entry.file, entry.pattern
                ),
            });
        }
    }
    out
}

/// The first panic-capable construct on a code line, if any.
pub fn first_violation(code: &str) -> Option<String> {
    for m in METHODS {
        if code.contains(m) {
            return Some(format!("`{}`", m.trim_end_matches('(')));
        }
    }
    for m in MACROS {
        if find_macro(code, m).is_some() {
            return Some(format!("`{m}`"));
        }
    }
    index_position(code).map(|_| "slice/array index expression".to_string())
}

/// Find macro `name` with a word boundary before it (so `assert!` does
/// not match inside `debug_assert!`).
fn find_macro(code: &str, name: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let at = from + pos;
        if !ident_before(code, at) {
            return Some(at);
        }
        from = at + name.len();
    }
    None
}

/// Byte offset of the first `[` that indexes an expression (directly
/// preceded by an identifier char, `)`, `]`, or `?`) rather than
/// opening a type, pattern, attribute, or array literal.
fn index_position(code: &str) -> Option<usize> {
    for (at, c) in code.char_indices() {
        if c != '[' || at == 0 {
            continue;
        }
        let prev = code[..at].chars().next_back();
        if prev.is_some_and(|p| p.is_alphanumeric() || p == '_' || p == ')' || p == ']' || p == '?')
        {
            return Some(at);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, allow: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/server/src/proto.rs", src);
        check_files(&[file], &parse_allowlist(allow))
    }

    #[test]
    fn hidden_unwrap_is_flagged_with_line() {
        let d = lint("fn f(b: &[u8]) {\n    let x = b.first().unwrap();\n}\n", "");
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].file.as_str(), d[0].line), ("crates/server/src/proto.rs", 2));
        assert!(d[0].message.contains("unwrap"));
    }

    #[test]
    fn indexing_and_macros_are_flagged() {
        assert!(first_violation("let x = buf[4];").is_some());
        assert!(first_violation("let x = &payload[..4];").is_some());
        assert!(first_violation("unreachable!(\"no\")").is_some());
        assert!(first_violation("f.expect(\"y\")").is_some());
    }

    #[test]
    fn types_patterns_and_debug_asserts_are_not() {
        assert!(first_violation("fn f(b: &[u8]) -> [u8; 4] {").is_none());
        assert!(first_violation("let [a, b] = pair;").is_none());
        assert!(first_violation("#[derive(Debug)]").is_none());
        assert!(first_violation("debug_assert!(x < y);").is_none());
        assert!(first_violation("let v: Vec<[u8; 8]> = Vec::new();").is_none());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let d = lint(
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n",
            "",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allowlist_suppresses_and_stale_entries_report() {
        let src = "fn f() { g().unwrap(); }\n";
        let ok = lint(src, "crates/server/src/proto.rs: g().unwrap()\n");
        assert!(ok.is_empty(), "{ok:?}");
        let stale =
            lint("fn f() {}\n", "# comment\ncrates/server/src/proto.rs: nothing like this\n");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, ALLOWLIST);
        assert_eq!(stale[0].line, 2);
        assert!(stale[0].message.contains("stale"));
    }
}
