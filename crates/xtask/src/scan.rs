//! A hand-rolled line/token scanner for Rust sources, rustc-`tidy`
//! style: just enough lexing to tell code from comments and string
//! literals, and to know which lines live under `#[cfg(test)]`.
//!
//! The passes built on top only ever ask line-level questions ("does
//! this line index a slice outside a test module?"), so the scanner
//! deliberately stops at that granularity instead of producing a real
//! token stream. It understands line and nested block comments, string
//! / raw-string / byte-string / char literals, and lifetimes, which is
//! everything needed to blank literal and comment text out of the code
//! channel without ever mistaking one for the other.

use std::path::Path;

/// One source line, split into a code channel and a comment channel.
#[derive(Clone, Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The raw line, verbatim (used for allowlist matching).
    pub raw: String,
    /// The line with comment text and literal *contents* blanked out;
    /// string literals collapse to `""` so token scans never match
    /// text that only occurs inside a literal or a comment.
    pub code: String,
    /// Comment text on this line (line, block, and doc comments),
    /// without the `//`/`/*` markers.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A scanned source file: path label plus its classified lines.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Root-relative path label used in diagnostics.
    pub path: String,
    /// The classified lines, in order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scan `text` into classified lines under the given path label.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lines = split_channels(text);
        mark_test_regions(&mut lines);
        SourceFile { path: path.to_string(), lines }
    }

    /// Read and scan a file on disk; the label is `path` relative to
    /// `root` (with `/` separators) so diagnostics are stable.
    pub fn read(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &text))
    }
}

/// Lexer state carried across lines.
enum State {
    /// Plain code.
    Normal,
    /// Inside a (possibly nested) block comment.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus this many `#`s.
    RawStr(usize),
}

/// Split the text into per-line code and comment channels.
fn split_channels(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Normal;
    for (idx, raw) in text.lines().enumerate() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Normal => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Doc-comment markers (`///`, `//!`) are not
                        // comment *text*: drop them plus one space so
                        // doc tables and fences parse cleanly.
                        let mut start = i + 2;
                        if matches!(chars.get(start), Some(&'/') | Some(&'!')) {
                            start += 1;
                        }
                        if chars.get(start) == Some(&' ') {
                            start += 1;
                        }
                        comment.extend(&chars[start..]);
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        code.push_str("\"\"");
                        state = State::Str;
                        i += 1;
                    } else if c == 'r' && !prev_is_ident(&code) {
                        if let Some(hashes) = raw_string_start(&chars[i + 1..]) {
                            code.push_str("\"\"");
                            state = State::RawStr(hashes);
                            i += 2 + hashes;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal is either
                        // escaped (`'\n'`) or a single char before the
                        // closing quote (`'x'`, including `'''`).
                        if chars.get(i + 1) == Some(&'\\') {
                            code.push_str("' '");
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("' '");
                            i += 3;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                State::BlockComment(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        state =
                            if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        state = State::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars[i + 1..], hashes) {
                        state = State::Normal;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(Line { number: idx + 1, raw: raw.to_string(), code, comment, in_test: false });
    }
    out
}

/// Does the code channel end in an identifier character (so a
/// following `r` is part of an identifier, not a raw-string prefix)?
fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `rest` begins a raw string body (`#…#"`), return the hash count.
fn raw_string_start(rest: &[char]) -> Option<usize> {
    let hashes = rest.iter().take_while(|&&c| c == '#').count();
    (rest.get(hashes) == Some(&'"')).then_some(hashes)
}

/// Does `rest` hold at least `hashes` consecutive `#`s?
fn closes_raw(rest: &[char], hashes: usize) -> bool {
    rest.len() >= hashes && rest[..hashes].iter().all(|&c| c == '#')
}

/// Mark every line inside a `#[cfg(test)]`-gated item (the attribute's
/// brace-delimited body) as test code.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut test_scopes: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[cfg(all(test")
            || line.code.contains("#[test]")
        {
            pending = true;
        }
        line.in_test = pending || !test_scopes.is_empty();
        for c in line.code.chars() {
            if c == '{' {
                depth += 1;
                if pending {
                    test_scopes.push(depth);
                    pending = false;
                }
            } else if c == '}' {
                if test_scopes.last() == Some(&depth) {
                    test_scopes.pop();
                }
                depth -= 1;
            }
        }
    }
}

/// Is the byte before `at` (in `code`) an identifier character?
pub fn ident_before(code: &str, at: usize) -> bool {
    code[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Find occurrences of the word `needle` in `code` that are not part
/// of a longer identifier; returns byte offsets.
pub fn word_positions(code: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let end = at + needle.len();
        let ok_before = !ident_before(code, at);
        let ok_after = !code[end..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok_before && ok_after {
            out.push(at);
        }
        from = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let f = SourceFile::parse(
            "t.rs",
            "let x = \"unsafe // not code\"; // unsafe in comment\nlet y = 1;",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("unsafe in comment"));
        assert_eq!(f.lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let f = SourceFile::parse(
            "t.rs",
            "let a = r#\"has \"quotes\" and unwrap()\"#;\nlet b = '\"';\nlet c: &'static str = \"x\";",
        );
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains('"'), "char-literal quote must not open a string");
        assert!(f.lines[2].code.contains("&' static") || f.lines[2].code.contains("&'static"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("t.rs", "/* start\nstill comment unwrap()\nend */ let z = 2;");
        assert!(f.lines[1].code.is_empty());
        assert!(f.lines[2].code.contains("let z"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test && f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn word_positions_respects_boundaries() {
        assert_eq!(word_positions("unsafe_fn unsafe", "unsafe"), vec![10]);
        assert!(word_positions("debug_assert!(x)", "assert!").is_empty());
    }
}
