//! Pass 1: the unsafe audit. Every `unsafe` site in the workspace
//! sources must carry a written safety argument — a `// SAFETY:`
//! comment on or immediately above an `unsafe` block/impl, or a
//! `# Safety` doc section on an `unsafe fn` — and the pass emits an
//! inventory of all sites so reviewers can see the full unsafe surface
//! at a glance. This is the tidy-side twin of the workspace-level
//! `clippy::undocumented_unsafe_blocks = "deny"` lint: tidy needs no
//! compiler and also covers `unsafe fn` declarations.

use crate::scan::{word_positions, SourceFile};
use crate::Diagnostic;
use std::path::{Path, PathBuf};

/// What kind of unsafe site a line holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// An `unsafe { … }` block (or `unsafe` expression head).
    Block,
    /// An `unsafe fn` declaration.
    Fn,
    /// An `unsafe impl`.
    Impl,
    /// An `unsafe extern` block.
    Extern,
}

impl SiteKind {
    /// Short label used in the inventory listing.
    pub fn label(self) -> &'static str {
        match self {
            SiteKind::Block => "block",
            SiteKind::Fn => "fn",
            SiteKind::Impl => "impl",
            SiteKind::Extern => "extern",
        }
    }
}

/// One `unsafe` occurrence found by the audit.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// Root-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Block, fn, impl, or extern.
    pub kind: SiteKind,
    /// Whether a safety comment was found for it.
    pub documented: bool,
}

/// How many comment/attribute-only lines above a site are searched for
/// its safety comment.
const LOOKBACK: usize = 30;

/// Audit all workspace sources under `root` (the `crates/*/src` and
/// `vendor/*/src` trees). Returns the full inventory plus diagnostics
/// for undocumented sites.
pub fn check(root: &Path) -> std::io::Result<(Vec<UnsafeSite>, Vec<Diagnostic>)> {
    let mut sites = Vec::new();
    for rel in workspace_sources(root)? {
        let file = SourceFile::read(root, &rel)?;
        sites.extend(audit_file(&file));
    }
    let diags = sites
        .iter()
        .filter(|s| !s.documented)
        .map(|s| Diagnostic {
            file: s.file.clone(),
            line: s.line,
            message: format!(
                "undocumented `unsafe` {}: add a `// SAFETY:` comment ({})",
                s.kind.label(),
                if s.kind == SiteKind::Fn {
                    "a `# Safety` doc section on the fn also counts"
                } else {
                    "on the same line or the lines directly above"
                },
            ),
        })
        .collect();
    Ok((sites, diags))
}

/// Audit one scanned file.
pub fn audit_file(file: &SourceFile) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        for at in word_positions(&line.code, "unsafe") {
            let after = line.code[at + "unsafe".len()..].trim_start();
            let kind = if after.starts_with("fn") {
                SiteKind::Fn
            } else if after.starts_with("impl") {
                SiteKind::Impl
            } else if after.starts_with("extern") {
                SiteKind::Extern
            } else {
                SiteKind::Block
            };
            let needle = if kind == SiteKind::Fn { "safety" } else { "safety:" };
            let documented = has_safety_comment(file, idx, needle);
            out.push(UnsafeSite { file: file.path.clone(), line: line.number, kind, documented });
        }
    }
    out
}

/// Look for `needle` (case-insensitive) in the comment on the site's
/// line or in the contiguous run of comment/attribute/blank lines
/// directly above it.
fn has_safety_comment(file: &SourceFile, idx: usize, needle: &str) -> bool {
    let matches = |s: &str| s.to_ascii_lowercase().contains(needle);
    if matches(&file.lines[idx].comment) {
        return true;
    }
    for back in 1..=LOOKBACK.min(idx) {
        let line = &file.lines[idx - back];
        let code = line.code.trim();
        // Stop at the first line carrying real code; attributes and
        // blank/comment-only lines keep the comment run contiguous.
        if !code.is_empty() && !code.starts_with('#') {
            return false;
        }
        if matches(&line.comment) {
            return true;
        }
    }
    false
}

/// Every `.rs` file under `crates/*/src` and `vendor/*/src`, as sorted
/// root-relative paths.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for tier in ["crates", "vendor"] {
        let dir = root.join(tier);
        if !dir.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, root, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collect `.rs` files under `dir` as root-relative paths.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit_src(src: &str) -> Vec<UnsafeSite> {
        audit_file(&SourceFile::parse("x.rs", src))
    }

    #[test]
    fn documented_block_passes() {
        let sites = audit_src("fn f() {\n    // SAFETY: fd is freshly returned and owned here.\n    let x = unsafe { libc() };\n}\n");
        assert_eq!(sites.len(), 1);
        assert!(sites[0].documented);
        assert_eq!(sites[0].kind, SiteKind::Block);
    }

    #[test]
    fn undocumented_block_is_flagged_with_line() {
        let sites = audit_src("fn f() {\n    let x = unsafe { libc() };\n}\n");
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].documented);
        assert_eq!(sites[0].line, 2);
    }

    #[test]
    fn unsafe_fn_needs_safety_doc_section() {
        let good = audit_src(
            "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\npub unsafe fn g() {}\n",
        );
        assert!(good[0].documented && good[0].kind == SiteKind::Fn);
        let bad = audit_src("/// Does things.\npub unsafe fn g() {}\n");
        assert!(!bad[0].documented);
    }

    #[test]
    fn same_line_comment_counts() {
        let sites = audit_src("let v = unsafe { x() }; // SAFETY: x has no preconditions.\n");
        assert!(sites[0].documented);
    }

    #[test]
    fn unsafe_in_comment_or_string_is_not_a_site() {
        let sites = audit_src("// unsafe mention\nlet s = \"unsafe { }\";\n");
        assert!(sites.is_empty());
    }

    #[test]
    fn comment_run_is_broken_by_code() {
        let sites = audit_src(
            "// SAFETY: stale, belongs to something else.\nlet y = 1;\nlet x = unsafe { f() };\n",
        );
        assert!(!sites[0].documented);
    }
}
