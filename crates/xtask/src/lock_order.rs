//! Pass 3: the lock-order checker. The serving core holds up to four
//! locks at once, and deadlock freedom rests on every path acquiring
//! them in one global order:
//!
//! ```text
//! mutate_serial → update_log → durable → current
//! ```
//!
//! (declared in the `crates/server/src/backend.rs` module docs). The
//! checker scans `backend.rs`/`server.rs` for `.lock()`/`.read()`/
//! `.write()` calls whose receiver's last path segment names one of
//! the hierarchy locks, tracks which guards are still live using brace
//! scopes (a guard born inside a block dies at its `}`), and flags any
//! acquisition made while a *later* lock in the hierarchy is held.

use crate::scan::SourceFile;
use crate::Diagnostic;
use std::path::Path;

/// The declared acquisition order, outermost first.
pub const HIERARCHY: [&str; 4] = ["mutate_serial", "update_log", "durable", "current"];

/// The files holding the serving core's lock acquisitions.
pub const LOCK_FILES: [&str; 2] = ["crates/server/src/backend.rs", "crates/server/src/server.rs"];

/// Where the hierarchy is documented; cited in every diagnostic.
pub const DOC_HOME: &str = "crates/server/src/backend.rs";

/// Check the serving-core files under `root`.
pub fn check(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for rel in LOCK_FILES {
        if root.join(rel).is_file() {
            out.extend(check_file(&SourceFile::read(root, rel)?));
        }
    }
    Ok(out)
}

/// A logical line: continuation lines starting with `.` are folded
/// into the statement they continue, so chained receivers like
/// `shared\n.current\n.read()` stay attached to their path.
struct Logical {
    number: usize,
    code: String,
}

fn logical_lines(file: &SourceFile) -> Vec<Logical> {
    let mut out: Vec<Logical> = Vec::new();
    for line in &file.lines {
        let trimmed = line.code.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('.') {
            if let Some(prev) = out.last_mut() {
                prev.code.push_str(trimmed);
                continue;
            }
        }
        out.push(Logical { number: line.number, code: trimmed.to_string() });
    }
    out
}

/// A lock guard currently considered live.
struct Held {
    rank: usize,
    depth: i64,
    line: usize,
}

/// Check one scanned file.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut held: Vec<Held> = Vec::new();
    let mut fns: Vec<(String, i64)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    for line in logical_lines(file) {
        if let Some(name) = fn_name(&line.code) {
            pending_fn = Some(name);
        }
        // Acquisitions are recorded before brace tracking: a guard
        // born on this line lives in the scope the line opened in.
        for rank in acquisitions(&line.code) {
            if let Some(outer) = held.iter().find(|h| h.rank > rank) {
                let fn_name = fns.last().map(|(n, _)| n.as_str()).unwrap_or("?");
                out.push(Diagnostic {
                    file: file.path.clone(),
                    line: line.number,
                    message: format!(
                        "lock-order violation in `{fn_name}`: `{}` acquired while `{}` \
                         (line {}) is held; the declared order is {} (see {DOC_HOME} \
                         module docs)",
                        HIERARCHY[rank],
                        HIERARCHY[outer.rank],
                        outer.line,
                        HIERARCHY.join(" → "),
                    ),
                });
            }
            held.push(Held { rank, depth, line: line.number });
        }
        for c in line.code.chars() {
            if c == '{' {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fns.push((name, depth));
                }
            } else if c == '}' {
                held.retain(|h| h.depth < depth);
                if fns.last().is_some_and(|&(_, d)| d == depth) {
                    fns.pop();
                    held.clear();
                }
                depth -= 1;
            }
        }
    }
    out
}

/// The name following a `fn` keyword on this line, if any.
fn fn_name(code: &str) -> Option<String> {
    for at in crate::scan::word_positions(code, "fn") {
        let rest = code[at + 2..].trim_start();
        let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    None
}

/// All hierarchy-lock acquisitions on a logical line, in source order:
/// the rank of each `.lock()`/`.read()`/`.write()` whose receiver's
/// last path segment is a hierarchy lock name.
fn acquisitions(code: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(method) {
            let at = from + pos;
            if let Some(rank) = receiver_rank(code, at) {
                hits.push((at, rank));
            }
            from = at + method.len();
        }
    }
    hits.sort_unstable();
    hits.into_iter().map(|(_, rank)| rank).collect()
}

/// Rank of the identifier directly before the `.` at `dot`, if it is a
/// hierarchy lock name.
fn receiver_rank(code: &str, dot: usize) -> Option<usize> {
    let ident: String = code[..dot]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    HIERARCHY.iter().position(|&name| name == ident)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse("crates/server/src/server.rs", src))
    }

    #[test]
    fn correct_order_passes() {
        let src = "fn do_swap(s: &Shared) {\n    let _g = s.mutate_serial.lock();\n    let log = s.update_log.lock();\n    let mut cur = s.current.write();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn inverted_order_is_flagged_with_line() {
        let src = "fn bad(s: &Shared) {\n    let cur = s.current.read();\n    let log = s.update_log.lock();\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("`update_log` acquired while `current`"));
        assert!(d[0].message.contains("backend.rs"));
    }

    #[test]
    fn scoped_guard_expires_at_close_brace() {
        let src = "fn ok(s: &Shared) {\n    let gen = {\n        let cur = s.current.read();\n        cur.generation()\n    };\n    let log = s.update_log.lock();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_multiline_receiver_is_seen() {
        let src = "fn bad(s: &Shared) {\n    let c = s\n        .current\n        .read();\n    s.mutate_serial.lock();\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`mutate_serial` acquired while `current`"));
    }

    #[test]
    fn non_hierarchy_receivers_are_ignored() {
        let src = "fn ok(s: &Shared) {\n    let cur = s.current.read();\n    let tx = s.compact_tx.lock();\n    stream.write(&buf);\n    file.read(&mut buf);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guards_do_not_leak_across_fns() {
        let src = "fn a(s: &Shared) { let c = s.current.read(); }\nfn b(s: &Shared) { let g = s.mutate_serial.lock(); }\n";
        assert!(run(src).is_empty());
    }
}
