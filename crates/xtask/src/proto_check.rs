//! Pass 4: the protocol consistency checker. The HOPQ wire contract
//! lives in three places that can drift independently: the constants
//! and decode arms in `crates/server/src/proto.rs`, the kind table in
//! that module's docs, and the README's protocol block. This pass
//! parses all three and asserts they agree on:
//!
//! - the header length (constant, README "N-byte header" phrase, and
//!   the field-by-field layouts in both the module doc and README);
//! - every kind number and name, and the version each kind appeared in
//!   (doc table "since" column vs the `min_version` match arms);
//! - the accepted version range and the payload cap;
//! - the fixed response frame sizes in the decode arms, in particular
//!   the RouteReply byte count the README quotes.

use crate::scan::SourceFile;
use crate::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

/// The protocol source of truth.
pub const PROTO: &str = "crates/server/src/proto.rs";
/// The prose that must agree with it.
pub const README: &str = "README.md";

/// Run the checker against the tree under `root`.
pub fn check(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let proto = SourceFile::read(root, PROTO)?;
    let readme = std::fs::read_to_string(root.join(README))?;
    Ok(check_sources(&proto, README, &readme))
}

/// Everything parsed out of `proto.rs`.
struct ProtoFacts {
    consts: BTreeMap<String, (u64, usize)>,
    /// Doc-table rows: name → (kind number, since version, line).
    doc_rows: BTreeMap<String, (u64, u64, usize)>,
    /// `RequestBody::min_version` arms: variant → version.
    min_versions: BTreeMap<String, u64>,
    min_version_default: Option<u64>,
    min_version_line: usize,
    /// Fixed decode-arm payload sizes: kind const name → (size, line).
    frame_sizes: BTreeMap<String, (u64, usize)>,
    /// Header fields from the module-doc layout block.
    doc_header: Vec<(String, u64, usize)>,
}

/// Check a scanned `proto.rs` against the README text.
pub fn check_sources(proto: &SourceFile, readme_path: &str, readme: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let facts = parse_proto(proto);
    let proto_diag =
        |line: usize, message: String| Diagnostic { file: proto.path.clone(), line, message };

    let Some(&(header_len, header_line)) = facts.consts.get("HEADER_LEN") else {
        out.push(proto_diag(1, "could not find `HEADER_LEN` constant".into()));
        return out;
    };
    let version = facts.consts.get("VERSION").map(|&(v, _)| v);
    let min_version = facts.consts.get("MIN_VERSION").map(|&(v, _)| v);
    let max_payload = facts.consts.get("MAX_PAYLOAD").map(|&(v, _)| v);

    // Module-doc header layout must sum to HEADER_LEN.
    if !facts.doc_header.is_empty() {
        let sum: u64 = facts.doc_header.iter().map(|&(_, n, _)| n).sum();
        if sum != header_len {
            let line = facts.doc_header[0].2;
            out.push(proto_diag(
                line,
                format!(
                    "module-doc header layout sums to {sum} bytes but `HEADER_LEN` is \
                     {header_len} (line {header_line})"
                ),
            ));
        }
    } else {
        out.push(proto_diag(1, "could not find the header layout block in the module docs".into()));
    }

    // Doc-table rows must agree with the KIND_* constants and the
    // `min_version` arms.
    for (name, &(value, line)) in &facts.consts {
        let Some(kind_name) = name.strip_prefix("KIND_") else { continue };
        let norm = normalize(kind_name);
        match facts.doc_rows.get(&norm) {
            None => out.push(proto_diag(
                line,
                format!("`{name}` has no row in the module-doc kind table"),
            )),
            Some(&(doc_kind, doc_since, doc_line)) => {
                if doc_kind != value {
                    out.push(proto_diag(
                        doc_line,
                        format!("kind table says {norm}={doc_kind} but `{name}` is {value}"),
                    ));
                }
                let since = facts.min_versions.get(&norm).copied().or(facts.min_version_default);
                if let Some(since) = since {
                    if since != doc_since {
                        out.push(proto_diag(
                            doc_line,
                            format!(
                                "kind table says `{norm}` is v{doc_since} but \
                                 `RequestBody::min_version` (line {}) stamps it v{since}",
                                facts.min_version_line
                            ),
                        ));
                    }
                }
            }
        }
    }

    // README protocol block.
    match readme_block(readme) {
        None => out.push(Diagnostic {
            file: readme_path.to_string(),
            line: 1,
            message: "could not find the wire-protocol block (a ```text fence after a \
                      line mentioning \"Wire protocol\")"
                .into(),
        }),
        Some(block) => {
            check_readme_block(&facts, readme_path, &block, &mut out);
            if let (Some(min), Some(ver)) = (min_version, version) {
                let phrase = format!("{min} through {ver}");
                if !block.text.contains(&phrase) {
                    out.push(Diagnostic {
                        file: readme_path.to_string(),
                        line: block.start,
                        message: format!(
                            "protocol block does not state the accepted version range \
                             \"{phrase}\" (MIN_VERSION={min}, VERSION={ver})"
                        ),
                    });
                }
            }
            if let Some(max) = max_payload {
                let mib = format!("{} MiB", max >> 20);
                if !block.text.contains(&mib) {
                    out.push(Diagnostic {
                        file: readme_path.to_string(),
                        line: block.start,
                        message: format!(
                            "protocol block does not state the payload cap \"{mib}\" \
                             (MAX_PAYLOAD = {max})"
                        ),
                    });
                }
            }
        }
    }

    // "N-byte header" phrases anywhere in the README must match.
    for (line, n) in phrase_numbers(readme, "-byte header") {
        if n != header_len {
            out.push(Diagnostic {
                file: readme_path.to_string(),
                line,
                message: format!(
                    "README says \"{n}-byte header\" but `HEADER_LEN` is {header_len} \
                     ({}:{header_line})",
                    proto.path
                ),
            });
        }
    }

    // "N-byte topology reply" must match the route_info decode arm.
    if let Some(&(size, size_line)) = facts.frame_sizes.get("KIND_ROUTE_INFO") {
        for (line, n) in phrase_numbers(readme, "-byte topology reply") {
            if n != size {
                out.push(Diagnostic {
                    file: readme_path.to_string(),
                    line,
                    message: format!(
                        "README says \"{n}-byte topology reply\" but the route_info \
                         decode arm expects {size} bytes ({}:{size_line})",
                        proto.path
                    ),
                });
            }
        }
    }

    out
}

/// The README's fenced wire-protocol block.
struct ReadmeBlock {
    /// 1-based line of the opening fence.
    start: usize,
    /// Block contents (fence lines excluded).
    text: String,
    /// `(line, text)` per content line.
    lines: Vec<(usize, String)>,
}

fn readme_block(readme: &str) -> Option<ReadmeBlock> {
    let mut saw_heading = false;
    let mut start = None;
    let mut lines = Vec::new();
    for (idx, line) in readme.lines().enumerate() {
        if line.contains("Wire protocol") {
            saw_heading = true;
        }
        if saw_heading && start.is_none() {
            if line.trim_start().starts_with("```text") {
                start = Some(idx + 1);
            }
            continue;
        }
        if start.is_some() {
            if line.trim_start().starts_with("```") {
                break;
            }
            lines.push((idx + 1, line.to_string()));
        }
    }
    let start = start?;
    let text = lines.iter().map(|(_, l)| l.as_str()).collect::<Vec<_>>().join("\n");
    Some(ReadmeBlock { start, text, lines })
}

/// Check kind numbers, status numbers, and the field-by-field header
/// layout inside the README block.
fn check_readme_block(
    facts: &ProtoFacts,
    readme_path: &str,
    block: &ReadmeBlock,
    out: &mut Vec<Diagnostic>,
) {
    // Wire names as proto.rs declares them.
    let mut wire: BTreeMap<String, (u64, usize)> = BTreeMap::new();
    for (name, &(value, line)) in &facts.consts {
        if let Some(kind) = name.strip_prefix("KIND_") {
            wire.insert(normalize(kind), (value, line));
        } else if let Some(status) = name.strip_prefix("STATUS_") {
            wire.insert(normalize(status), (value, line));
        }
    }
    let mut seen: BTreeMap<String, (u64, usize)> = BTreeMap::new();
    for (line_no, line) in &block.lines {
        for (num, name) in number_eq_name_pairs(line) {
            seen.insert(normalize(&name), (num, *line_no));
        }
    }
    for (name, &(value, proto_line)) in &wire {
        match seen.get(name) {
            None => out.push(Diagnostic {
                file: readme_path.to_string(),
                line: block.start,
                message: format!(
                    "protocol block is missing `{value}={name}` (declared at {PROTO}:{proto_line})"
                ),
            }),
            Some(&(readme_value, readme_line)) => {
                if readme_value != value {
                    out.push(Diagnostic {
                        file: readme_path.to_string(),
                        line: readme_line,
                        message: format!(
                            "protocol block says `{readme_value}={name}` but {PROTO}:{proto_line} \
                             declares {value}"
                        ),
                    });
                }
            }
        }
    }
    for (name, &(value, line)) in &seen {
        if !wire.contains_key(name) {
            out.push(Diagnostic {
                file: readme_path.to_string(),
                line,
                message: format!("protocol block lists `{value}={name}`, unknown to {PROTO}"),
            });
        }
    }
    // Field-by-field header layout.
    let mut sum = 0;
    let mut first_field_line = None;
    for (line_no, line) in &block.lines {
        if let Some(size) = field_size(line) {
            sum += size;
            first_field_line.get_or_insert(*line_no);
        }
    }
    if let (Some(line), Some(&(header_len, _))) = (first_field_line, facts.consts.get("HEADER_LEN"))
    {
        if sum != header_len {
            out.push(Diagnostic {
                file: readme_path.to_string(),
                line,
                message: format!(
                    "protocol block header fields sum to {sum} bytes but `HEADER_LEN` \
                     is {header_len}"
                ),
            });
        }
    }
}

/// Size in bytes of a documented header field line, recognising
/// `N B`/`N bytes` spans and `u8`/`u16`/`u32`/`u64` scalars.
fn field_size(line: &str) -> Option<u64> {
    let mut words = line.split_whitespace().peekable();
    let first = *words.peek()?;
    if !["magic", "version", "kind/status", "request", "payload", "payload_len"].contains(&first) {
        return None;
    }
    let words: Vec<&str> = words.collect();
    for (i, w) in words.iter().enumerate() {
        match *w {
            "u8" => return Some(1),
            "u16" => return Some(2),
            "u32" => return Some(4),
            "u64" => return Some(8),
            "B" | "bytes" | "byte" => {
                if let Some(n) = i.checked_sub(1).and_then(|p| words[p].parse::<u64>().ok()) {
                    return Some(n);
                }
            }
            _ => {}
        }
    }
    None
}

/// All `N=name` pairs on a line.
fn number_eq_name_pairs(line: &str) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() && (i == 0 || !is_ident(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if bytes.get(i) == Some(&'=') {
                let num: u64 = bytes[start..i].iter().collect::<String>().parse().unwrap_or(0);
                i += 1;
                let name_start = i;
                while i < bytes.len() && is_ident(bytes[i]) {
                    i += 1;
                }
                if i > name_start {
                    out.push((num, bytes[name_start..i].iter().collect()));
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lowercase and drop underscores, so `ROUTE_INFO`, `route_info`, and
/// `RouteInfo` all compare equal.
fn normalize(name: &str) -> String {
    name.chars().filter(|c| *c != '_').flat_map(|c| c.to_lowercase()).collect()
}

/// Occurrences of `<number><suffix>` (e.g. suffix `-byte header`) in
/// `text`, with their 1-based lines.
fn phrase_numbers(text: &str, suffix: &str) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let mut from = 0;
        while let Some(pos) = line[from..].find(suffix) {
            let at = from + pos;
            let digits: String = line[..at]
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if let Ok(n) = digits.parse() {
                out.push((idx + 1, n));
            }
            from = at + suffix.len();
        }
    }
    out
}

/// Parse constants, the doc kind table, `min_version` arms, decode-arm
/// frame sizes, and the module-doc header layout out of `proto.rs`.
fn parse_proto(proto: &SourceFile) -> ProtoFacts {
    let mut facts = ProtoFacts {
        consts: BTreeMap::new(),
        doc_rows: BTreeMap::new(),
        min_versions: BTreeMap::new(),
        min_version_default: None,
        min_version_line: 0,
        frame_sizes: BTreeMap::new(),
        doc_header: Vec::new(),
    };
    let mut in_min_version = false;
    let mut min_version_depth = 0i64;
    let mut depth = 0i64;
    let mut saw_min_version = false;
    let mut in_doc_fence = false;
    let mut doc_fences_seen = 0;
    for line in &proto.lines {
        // Module-doc layout block: the first ```text fence in the docs.
        let comment = line.comment.trim();
        if comment.starts_with("```") {
            if in_doc_fence {
                in_doc_fence = false;
            } else if doc_fences_seen == 0 && comment.starts_with("```text") {
                in_doc_fence = true;
            }
            doc_fences_seen += 1;
        } else if in_doc_fence {
            if let Some(size) = field_size(comment) {
                let name = comment.split_whitespace().next().unwrap_or("").to_string();
                facts.doc_header.push((name, size, line.number));
            }
        }
        // Doc kind table rows: `| 1 | query | v1 | …`.
        if comment.starts_with('|') {
            let cells: Vec<&str> = comment.split('|').map(str::trim).collect();
            if cells.len() >= 4 {
                if let (Ok(kind), Some(since)) =
                    (cells[1].parse::<u64>(), cells[3].strip_prefix('v'))
                {
                    if let Ok(since) = since.parse::<u64>() {
                        facts.doc_rows.insert(normalize(cells[2]), (kind, since, line.number));
                    }
                }
            }
        }
        // Constants.
        if let Some((name, value)) = parse_const(&line.code) {
            facts.consts.entry(name).or_insert((value, line.number));
        }
        // RequestBody::min_version arms (the first min_version fn).
        if !saw_min_version && line.code.contains("fn min_version") {
            in_min_version = true;
            saw_min_version = true;
            min_version_depth = depth;
            facts.min_version_line = line.number;
        }
        if in_min_version {
            if let Some((eq_left, right)) = line.code.split_once("=>") {
                let value = right.trim().trim_end_matches(',').trim().parse::<u64>().ok();
                if let Some(value) = value {
                    if eq_left.trim().trim_start_matches('|').trim() == "_" {
                        facts.min_version_default = Some(value);
                    }
                    let mut rest = eq_left;
                    while let Some(pos) = rest.find("::") {
                        let tail = &rest[pos + 2..];
                        let name: String = tail.chars().take_while(|c| is_ident(*c)).collect();
                        if !name.is_empty() {
                            facts.min_versions.insert(normalize(&name), value);
                        }
                        rest = tail;
                    }
                    if eq_left.split('|').any(|p| p.trim() == "_") {
                        facts.min_version_default = Some(value);
                    }
                }
            }
        }
        // Fixed frame sizes: `Some(&KIND_X) if payload.len() == N`.
        if let Some(pos) = line.code.find("Some(&KIND_") {
            let name: String =
                line.code[pos + "Some(&".len()..].chars().take_while(|c| is_ident(*c)).collect();
            if let Some(rest) = line.code.split_once("payload.len() ==").map(|(_, r)| r) {
                let digits: String =
                    rest.trim_start().chars().take_while(char::is_ascii_digit).collect();
                if let Ok(size) = digits.parse::<u64>() {
                    facts.frame_sizes.insert(name, (size, line.number));
                }
            }
        }
        // Brace tracking for min_version's extent.
        for c in line.code.chars() {
            if c == '{' {
                depth += 1;
            } else if c == '}' {
                depth -= 1;
                if in_min_version && depth <= min_version_depth {
                    in_min_version = false;
                }
            }
        }
    }
    facts
}

/// Parse `[pub] const NAME: TYPE = EXPR;` where EXPR is an integer
/// literal, `A << B`, or `u32::MAX`.
fn parse_const(code: &str) -> Option<(String, u64)> {
    let code = code.trim();
    let rest = code.strip_prefix("pub const ").or_else(|| code.strip_prefix("const "))?;
    let (name, rest) = rest.split_once(':')?;
    let (_, expr) = rest.split_once('=')?;
    let expr = expr.trim().trim_end_matches(';').trim();
    let value = eval_int(expr)?;
    Some((name.trim().to_string(), value))
}

fn eval_int(expr: &str) -> Option<u64> {
    let expr = expr.trim();
    if expr == "u32::MAX" {
        return Some(u64::from(u32::MAX));
    }
    if let Some((a, b)) = expr.split_once("<<") {
        return Some(eval_int(a)? << eval_int(b)?);
    }
    expr.replace('_', "").parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO_SRC: &str = r#"
//! ```text
//! magic        4 bytes   "HOPQ"
//! version      u8        1 through 2
//! kind/status  u8        request kind
//! request id   u64 LE    echoed
//! payload_len  u32 LE    bytes following
//! ```
//!
//! | kind | name  | since | payload |
//! |------|-------|-------|---------|
//! | 1    | query | v1    | pairs |
//! | 2    | swap  | v2    | empty |

pub const VERSION: u8 = 2;
pub const MIN_VERSION: u8 = 1;
pub const HEADER_LEN: usize = 18;
pub const MAX_PAYLOAD: u32 = 1 << 24;
const KIND_QUERY: u8 = 1;
const KIND_SWAP: u8 = 2;
const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;

impl RequestBody {
    fn min_version(&self) -> u8 {
        match self {
            RequestBody::Swap => 2,
            _ => 1,
        }
    }
}

fn decode(payload: &[u8]) {
    match kind {
        Some(&KIND_SWAP) if payload.len() == 17 => {}
        _ => {}
    }
}
"#;

    const README_SRC: &str = "# x\n\n**Wire protocol**: every frame is an 18-byte header + payload.\n\n```text\nmagic        4 B    request\nversion      u8     1 through 2\nkind/status  u8     1=query 2=swap / 0=ok 1=error\nrequest id   u64 LE echoed\npayload len  u32 LE \u{2264} 16 MiB\n```\n";

    fn run(proto: &str, readme: &str) -> Vec<Diagnostic> {
        check_sources(&SourceFile::parse(PROTO, proto), README, readme)
    }

    #[test]
    fn consistent_sources_pass() {
        let d = run(PROTO_SRC, README_SRC);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drifted_kind_number_is_flagged() {
        let readme = README_SRC.replace("2=swap", "3=swap");
        let d = run(PROTO_SRC, &readme);
        assert!(d.iter().any(|d| d.file == README && d.message.contains("3=swap")), "{d:?}");
    }

    #[test]
    fn drifted_header_len_is_flagged_both_ways() {
        let proto = PROTO_SRC.replace("HEADER_LEN: usize = 18", "HEADER_LEN: usize = 20");
        let d = run(&proto, README_SRC);
        assert!(d.iter().any(|d| d.message.contains("18-byte header")), "{d:?}");
        assert!(d.iter().any(|d| d.message.contains("sums to 18 bytes")), "{d:?}");
    }

    #[test]
    fn doc_table_since_must_match_min_version() {
        let proto = PROTO_SRC.replace("| 2    | swap  | v2    |", "| 2    | swap  | v1    |");
        let d = run(&proto, README_SRC);
        assert!(d.iter().any(|d| d.file == PROTO && d.message.contains("v1")), "{d:?}");
    }

    #[test]
    fn missing_readme_kind_is_flagged() {
        let readme = README_SRC.replace("2=swap ", "");
        let d = run(PROTO_SRC, &readme);
        assert!(d.iter().any(|d| d.message.contains("missing `2=swap`")), "{d:?}");
    }

    #[test]
    fn payload_cap_drift_is_flagged() {
        let readme = README_SRC.replace("16 MiB", "32 MiB");
        let d = run(PROTO_SRC, &readme);
        assert!(d.iter().any(|d| d.message.contains("16 MiB")), "{d:?}");
    }
}
