#![forbid(unsafe_code)]
//! `cargo run -p xtask -- tidy`: run the in-tree static-analysis
//! passes and exit nonzero on any finding. See the crate docs for what
//! each pass checks.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: cargo run -p xtask -- tidy [--root DIR] [--pass unsafe|panic|locks|proto]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if cmd != "tidy" {
        eprintln!("unknown command `{cmd}`\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut root: Option<PathBuf> = None;
    let mut pass: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--pass" => pass = args.next(),
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Default to the workspace this binary was built from, so the tool
    // works no matter where cargo was invoked.
    let root =
        root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(".."));
    let report = match xtask::run_tidy(&root, pass.as_deref()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("tidy: failed to read sources under {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if !report.inventory.is_empty() {
        println!("unsafe inventory ({} sites):", report.inventory.len());
        for site in &report.inventory {
            println!(
                "  {}:{} {} [{}]",
                site.file,
                site.line,
                site.kind.label(),
                if site.documented { "documented" } else { "UNDOCUMENTED" },
            );
        }
    }
    for (name, diags) in &report.passes {
        if diags.is_empty() {
            println!("tidy[{name}]: ok");
        } else {
            for d in diags {
                eprintln!("tidy[{name}]: {d}");
            }
        }
    }
    let total = report.total();
    if total > 0 {
        eprintln!("tidy: {total} finding(s)");
        return ExitCode::FAILURE;
    }
    println!("tidy: clean");
    ExitCode::SUCCESS
}
