//! Criterion micro-bench for the extmem substrate backing §4: external
//! sorting throughput under in-memory vs spilling budgets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use extmem::device::TempStore;
use extmem::sorter::ExternalSorter;
use extmem::{ExtMemConfig, LabelRecord};

fn records(count: usize) -> Vec<LabelRecord> {
    let mut x = 0x243F6A8885A308D3u64;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            LabelRecord::new((x >> 32) as u32 % 65_536, x as u32 % 65_536, 1 + (x as u32 % 16))
        })
        .collect()
}

fn bench_sort(c: &mut Criterion) {
    let data = records(200_000);
    let mut group = c.benchmark_group("extsort-200k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    for (name, cfg) in [
        ("in-memory-budget", ExtMemConfig { memory_records: 1 << 20, block_bytes: 64 << 10 }),
        ("spilling-budget", ExtMemConfig { memory_records: 1 << 14, block_bytes: 4 << 10 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let store = TempStore::new().unwrap();
                let mut s = ExternalSorter::new(&store, cfg.clone()).with_combiner(
                    |a: &LabelRecord, b: &LabelRecord| (a.key, a.pivot) == (b.key, b.pivot),
                    |a, b| if a.dist <= b.dist { a } else { b },
                );
                for &r in &data {
                    s.push(r).unwrap();
                }
                std::hint::black_box(s.finish().unwrap().len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
