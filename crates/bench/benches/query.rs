//! Criterion micro-bench: memory query latency per method (the query
//! columns of Table 6) on one undirected GLP graph.

use baselines::{Bidij, DistanceOracle, HighwayCover, Pll};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use extmem::device::TempStore;
use graphgen::{glp, GlpParams};
use hopdb::{build, HopDbConfig};
use hoplabels::bitparallel::BitParallelIndex;
use hoplabels::disk::{CachedDiskIndex, DiskIndex};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn bench_queries(c: &mut Criterion) {
    let g = glp(&GlpParams::with_density(20_000, 4.0, 42));
    let pairs = bench::query_pairs(&g, 4_096, 7);

    let hopdb = build(&g, &HopDbConfig::default());
    let pll = Pll::build(&g);
    let bidij = Bidij::new(g.clone());
    let hcl = HighwayCover::build(g.clone(), 16);
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let bp = BitParallelIndex::build(&relabeled, hopdb.index(), 50);
    let rank_pairs: Vec<(u32, u32)> =
        pairs.iter().map(|&(s, t)| (ranking.rank_of(s), ranking.rank_of(t))).collect();

    let mut group = c.benchmark_group("memory-query");
    let mut i = 0usize;
    // Nested-vs-flat on the same pairs: `hopdb-nested` walks the
    // per-vertex `Vec<LabelEntry>` index, `hopdb-flat` the frozen SoA
    // layout; `hopdb` is the end-user path (rank translation + flat).
    let nested = hopdb.index();
    let flat = hopdb.flat_index();
    group.bench_function("hopdb", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(hopdb.query(s, t))
        })
    });
    group.bench_function("hopdb-nested", |b| {
        b.iter(|| {
            let (s, t) = rank_pairs[i % rank_pairs.len()];
            i += 1;
            std::hint::black_box(nested.query(s, t))
        })
    });
    group.bench_function("hopdb-flat", |b| {
        b.iter(|| {
            let (s, t) = rank_pairs[i % rank_pairs.len()];
            i += 1;
            std::hint::black_box(flat.query(s, t))
        })
    });
    group.bench_function("hopdb-flat-batched", |b| {
        b.iter(|| std::hint::black_box(flat.query_many(&rank_pairs, 4)))
    });
    group.bench_function("hopdb-bp", |b| {
        b.iter(|| {
            let (s, t) = rank_pairs[i % rank_pairs.len()];
            i += 1;
            std::hint::black_box(bp.query(s, t))
        })
    });
    group.bench_function("pll", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(pll.distance(s, t))
        })
    });
    group.bench_function("hcl-star", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(hcl.distance(s, t))
        })
    });
    group.sample_size(20);
    group.bench_function("bidij", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            std::hint::black_box(bidij.distance(s, t))
        })
    });
    group.finish();

    // Disk-based query (two positioned label reads per query), cold and
    // behind the LRU label cache.
    let store = TempStore::new().unwrap();
    let mut group = c.benchmark_group("disk-query");
    group.bench_function("hopdb-disk", |b| {
        b.iter_batched(
            || DiskIndex::create(hopdb.index(), &store, "bench").unwrap(),
            |mut disk| {
                for &(s, t) in rank_pairs.iter().take(64) {
                    std::hint::black_box(disk.query(s, t).unwrap());
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("hopdb-disk-cached", |b| {
        b.iter_batched(
            || {
                let disk = DiskIndex::create(hopdb.index(), &store, "bench-c").unwrap();
                let cached = CachedDiskIndex::new(disk, 4096);
                // Warm with the same pairs the measurement replays.
                for &(s, t) in rank_pairs.iter().take(64) {
                    cached.query(s, t).unwrap();
                }
                cached
            },
            |cached| {
                for &(s, t) in rank_pairs.iter().take(64) {
                    std::hint::black_box(cached.query(s, t).unwrap());
                }
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
