//! Criterion bench: multi-threaded query throughput.
//!
//! Label indexes are immutable after construction, so query serving
//! parallelises embarrassingly — this bench measures how close the
//! index gets to linear scaling with scoped worker threads (the serving
//! scenario the paper's intro motivates: centrality and similarity
//! workloads issuing millions of queries).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphgen::{glp, GlpParams};
use hopdb::{build, HopDbConfig};

fn bench_throughput(c: &mut Criterion) {
    let g = glp(&GlpParams::with_density(20_000, 4.0, 21));
    // BENCH_THREADS speeds up the setup build; the index is identical.
    let db = build(&g, &HopDbConfig::default().with_parallelism(bench::threads_from_env()));
    let pairs = bench::query_pairs(&g, 1 << 14, 3);

    let mut group = c.benchmark_group("query-throughput");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("threads-{threads}"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for chunk in pairs.chunks(pairs.len().div_ceil(threads)) {
                        let db = &db;
                        scope.spawn(move || {
                            let mut acc = 0u64;
                            for &(s, t) in chunk {
                                let d = db.query(s, t);
                                if d != u32::MAX {
                                    acc += d as u64;
                                }
                            }
                            std::hint::black_box(acc)
                        });
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
