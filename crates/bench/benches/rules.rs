//! Criterion micro-bench for the §3/§4 inner loops: the pruning
//! ablation (generate-and-prune vs generate-only) and the 2-hop
//! merge-join that dominates both query answering and pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig, Strategy};
use hoplabels::index::join_min;
use hoplabels::{LabelEntry, VertexLabels};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn bench_pruning_ablation(c: &mut Criterion) {
    // Pruning costs a join per candidate but shrinks every later
    // iteration; without it candidate volume explodes (§3.3). A small
    // graph keeps the unpruned variant tractable.
    let g = glp(&GlpParams::with_density(1_500, 3.0, 3));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let mut group = c.benchmark_group("pruning-ablation");
    group.sample_size(10);
    group.bench_function("with-pruning", |b| {
        b.iter(|| {
            std::hint::black_box(build_prelabeled(
                &relabeled,
                &HopDbConfig::with_strategy(Strategy::Stepping),
            ))
        })
    });
    group.bench_function("without-pruning", |b| {
        b.iter(|| {
            std::hint::black_box(build_prelabeled(
                &relabeled,
                &HopDbConfig::unpruned(Strategy::Stepping),
            ))
        })
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    // Two labels of realistic sizes (Table 7 reports avg |label| in the
    // tens-to-hundreds), sharing a few pivots.
    let mk = |seed: u32, len: u32| {
        VertexLabels::from_entries(
            (0..len).map(|i| LabelEntry::new(i * 3 + seed % 3, (i % 7) + 1)).collect(),
        )
    };
    let a = mk(0, 64);
    let b = mk(1, 128);
    c.bench_function("join-min-64x128", |bch| {
        bch.iter(|| std::hint::black_box(join_min(a.entries(), b.entries())))
    });
}

criterion_group!(benches, bench_pruning_ablation, bench_join);
criterion_main!(benches);
