//! Criterion micro-bench: index construction per strategy (Table 8's
//! time columns) plus PLL for reference, on a small GLP graph; a
//! thread-scaling group for the sharded engine; and the inverted-list
//! upsert comparison (position map vs the old linear scan).

use baselines::pll;
use criterion::{criterion_group, criterion_main, Criterion};
use graphgen::{glp, with_random_weights, GlpParams};
use hopdb::invlist::InvList;
use hopdb::{build_prelabeled, HopDbConfig, Strategy};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::{Dist, VertexId};

fn bench_builds(c: &mut Criterion) {
    let g = glp(&GlpParams::with_density(4_000, 3.0, 5));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);

    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for (name, strategy) in [
        ("doubling", Strategy::Doubling),
        ("stepping", Strategy::Stepping),
        ("hybrid", Strategy::Hybrid { switch_at: 10 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(build_prelabeled(
                    &relabeled,
                    &HopDbConfig::with_strategy(strategy.clone()),
                ))
            })
        });
    }
    group.bench_function("pll", |b| {
        b.iter(|| std::hint::black_box(pll::build_prelabeled(&relabeled)))
    });
    group.finish();
}

/// Build-time scaling of the sharded engine (the data behind the
/// `BENCH_build.json` perf snapshot; see `bench --bin buildperf`).
fn bench_build_threads(c: &mut Criterion) {
    let g = glp(&GlpParams::with_density(8_000, 4.0, 9));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);

    let mut group = c.benchmark_group("build-threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let cfg = HopDbConfig::default().with_parallelism(threads);
        group.bench_function(format!("threads-{threads}"), |b| {
            b.iter(|| std::hint::black_box(build_prelabeled(&relabeled, &cfg)))
        });
    }
    group.finish();
}

/// The weighted-build path improves label distances in place, hammering
/// the inverted lists' upsert; compare the position-map `InvList`
/// against the previous linear-scan implementation.
fn bench_invlist_upsert(c: &mut Criterion) {
    // Deterministic upsert trace: many owners per pivot, ~25% repeats.
    let mut trace: Vec<(VertexId, Dist)> = Vec::new();
    let mut x = 0x9e37u64;
    for i in 0..40_000u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let owner = (x % 8_192) as VertexId;
        trace.push((owner, (40_000 - i) as Dist));
    }

    let mut group = c.benchmark_group("invlist");
    group.bench_function("position-map", |b| {
        b.iter(|| {
            let mut l = InvList::default();
            for &(owner, d) in &trace {
                l.upsert(owner, d);
            }
            std::hint::black_box(l.len())
        })
    });
    group.bench_function("linear-scan", |b| {
        b.iter(|| {
            // The pre-refactor `upsert_inv`: O(len) search on repeats.
            let mut entries: Vec<(VertexId, Dist)> = Vec::new();
            for &(owner, d) in &trace {
                if let Some(slot) = entries.iter_mut().find(|(o, _)| *o == owner) {
                    slot.1 = d;
                } else {
                    entries.push((owner, d));
                }
            }
            std::hint::black_box(entries.len())
        })
    });
    group.finish();
}

/// Weighted GLP build: end-to-end coverage of the improve-in-place path
/// the inverted-list fix targets.
fn bench_weighted_build(c: &mut Criterion) {
    let g = with_random_weights(&glp(&GlpParams::with_density(4_000, 3.0, 5)), 1, 10, 5);
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let mut group = c.benchmark_group("build-weighted");
    group.sample_size(10);
    group.bench_function("hybrid", |b| {
        b.iter(|| std::hint::black_box(build_prelabeled(&relabeled, &HopDbConfig::default())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_builds,
    bench_build_threads,
    bench_invlist_upsert,
    bench_weighted_build
);
criterion_main!(benches);
