//! Criterion micro-bench: index construction per strategy (Table 8's
//! time columns) plus PLL for reference, on a small GLP graph.

use baselines::pll;
use criterion::{criterion_group, criterion_main, Criterion};
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig, Strategy};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn bench_builds(c: &mut Criterion) {
    let g = glp(&GlpParams::with_density(4_000, 3.0, 5));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);

    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    for (name, strategy) in [
        ("doubling", Strategy::Doubling),
        ("stepping", Strategy::Stepping),
        ("hybrid", Strategy::Hybrid { switch_at: 10 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(build_prelabeled(
                    &relabeled,
                    &HopDbConfig::with_strategy(strategy.clone()),
                ))
            })
        });
    }
    group.bench_function("pll", |b| {
        b.iter(|| std::hint::black_box(pll::build_prelabeled(&relabeled)))
    });
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
