#![forbid(unsafe_code)]
//! Table 6 — performance comparison of BIDIJ, IS-Label, PLL, HCL*, and
//! HopDb on complete 2-hop indexing.
//!
//! For every workload: graph statistics, index sizes, indexing times,
//! in-memory query times, and disk-based query times. HopDb builds with
//! the I/O-efficient external engine (§4); IS-Label runs with an edge
//! budget and reports DNF when augmentation explodes (the paper's
//! 24-hour timeouts); PLL builds in memory.
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin table6
//! ```

use baselines::{Bidij, DistanceOracle, HighwayCover, IsLabel, Pll};
use bench::{mb, query_pairs, secs, suite, time_queries, Kind, Scale, Workload};
use extmem::device::TempStore;
use extmem::ExtMemConfig;
use hopdb::external::build_external;
use hopdb::HopDbConfig;
use hoplabels::bitparallel::BitParallelIndex;
use hoplabels::disk::DiskIndex;
use hoplabels::flat::FlatIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

struct Row {
    name: String,
    v: usize,
    e: usize,
    maxdeg: usize,
    graph_mb: f64,
    isl_mb: Option<f64>,
    pll_mb: f64,
    /// Raw label payload (8 bytes/entry) — the paper's index-size
    /// number.
    hop_entry_mb: f64,
    /// What a serving process actually holds: entries plus the offset
    /// directory (matches `FlatIndex`/`DiskIndex`).
    hop_mb: f64,
    isl_build: Option<f64>,
    pll_build: f64,
    hop_build: f64,
    /// In-memory engine build time at `BENCH_THREADS` workers — the
    /// build-time scaling companion of the external `hop_build` column.
    hop_mem_build: f64,
    bidij_us: f64,
    isl_us: Option<f64>,
    pll_us: f64,
    hcl_us: f64,
    hop_us: f64,
    bp_us: Option<f64>,
    isl_disk_us: Option<f64>,
    hop_disk_us: f64,
    hop_io_blocks: u64,
}

fn bench_workload(w: &Workload) -> Row {
    let g = &w.graph;
    let pairs = query_pairs(g, 20_000, 0xBEEF);
    let bidij_pairs = query_pairs(g, 200, 0xBEEF);

    // --- BIDIJ ---
    let bidij = Bidij::new(g.clone());
    let (bidij_us, _) = time_queries(&bidij_pairs, |s, t| bidij.distance(s, t));

    // --- IS-Label (edge budget mirrors the paper's timeouts) ---
    let budget = 8 * g.num_edges().max(1) * if g.is_directed() { 1 } else { 2 } + 10_000;
    let isl_start = std::time::Instant::now();
    let isl = IsLabel::build(g, budget).ok();
    let isl_build = isl.as_ref().map(|_| secs(isl_start.elapsed()));
    let isl_mb = isl.as_ref().map(|i| mb(i.index().resident_bytes()));
    let isl_us = isl.as_ref().map(|i| time_queries(&pairs, |s, t| i.distance(s, t)).0);

    // --- PLL ---
    let pll_start = std::time::Instant::now();
    let pll = Pll::build(g);
    let pll_build = secs(pll_start.elapsed());
    let pll_mb = mb(pll.index().resident_bytes());
    let (pll_us, _) = time_queries(&pairs, |s, t| pll.distance(s, t));

    // --- HCL* (highway cover) ---
    let hcl = HighwayCover::build(g.clone(), 16);
    let hcl_pairs = query_pairs(g, 2_000, 0xBEEF);
    let (hcl_us, _) = time_queries(&hcl_pairs, |s, t| hcl.distance(s, t));

    // --- HopDb: external build (§4), memory + disk queries ---
    let ranking =
        rank_vertices(g, if g.is_directed() { &RankBy::DegreeProduct } else { &RankBy::Degree });
    let relabeled = relabel_by_rank(g, &ranking);
    let hop_start = std::time::Instant::now();
    let ext_cfg = ExtMemConfig { memory_records: 1 << 18, block_bytes: 64 << 10 };
    let result =
        build_external(&relabeled, &HopDbConfig::default(), &ext_cfg).expect("external build");
    let hop_build = secs(hop_start.elapsed());
    let hop_entry_mb = mb(result.index.entry_bytes());
    // In-memory parallel build (same index, counted for scaling runs).
    let mem_cfg = HopDbConfig::default().with_parallelism(bench::threads_from_env());
    let mem_start = std::time::Instant::now();
    let (mem_index, _) = hopdb::build_prelabeled(&relabeled, &mem_cfg);
    let hop_mem_build = secs(mem_start.elapsed());
    assert_eq!(mem_index, result.index, "in-memory and external engines must agree");
    let hop_io_blocks = result.io.2 + result.io.3;
    let rank_pairs: Vec<(u32, u32)> =
        pairs.iter().map(|&(s, t)| (ranking.rank_of(s), ranking.rank_of(t))).collect();
    // Memory queries go through the frozen flat layout — the serving
    // read path — and the memory column reports what it actually holds.
    let flat = FlatIndex::from_index(&result.index);
    let hop_mb = mb(flat.resident_bytes());
    let (hop_us, _) = time_queries(&rank_pairs, |s, t| flat.query(s, t));

    // Bit-parallel post-processing (§6): undirected unweighted only.
    let bp_us = (!g.is_directed() && !g.is_weighted()).then(|| {
        let bp = BitParallelIndex::build(&relabeled, &result.index, 50);
        time_queries(&rank_pairs, |s, t| bp.query(s, t)).0
    });

    // Disk-based queries: two label reads per query, counted.
    let store = TempStore::new().expect("store");
    let disk_pairs = &rank_pairs[..rank_pairs.len().min(2_000)];
    let mut hop_disk = DiskIndex::create(&result.index, &store, "hopdb").expect("disk index");
    let (hop_disk_us, _) =
        time_queries(disk_pairs, |s, t| hop_disk.query(s, t).expect("disk query"));
    let isl_disk_us = isl.as_ref().map(|i| {
        let mut d = DiskIndex::create(i.index(), &store, "isl").expect("disk index");
        let orig_pairs = &pairs[..pairs.len().min(2_000)];
        time_queries(orig_pairs, |s, t| d.query(s, t).expect("disk query")).0
    });

    Row {
        name: w.name.clone(),
        v: g.num_vertices(),
        e: g.num_edges(),
        maxdeg: g.max_degree(),
        graph_mb: mb(g.size_bytes()),
        isl_mb,
        pll_mb,
        hop_entry_mb,
        hop_mb,
        isl_build,
        pll_build,
        hop_build,
        hop_mem_build,
        bidij_us,
        isl_us,
        pll_us,
        hcl_us,
        hop_us,
        bp_us,
        isl_disk_us,
        hop_disk_us,
        hop_io_blocks,
    }
}

fn fmt_f(v: Option<f64>, prec: usize) -> String {
    v.map_or_else(|| "—".to_string(), |x| format!("{x:.prec$}"))
}

fn main() {
    let scale = Scale::from_env();
    println!("Table 6 reproduction (scale: {scale:?}; datasets are GLP stand-ins, DESIGN.md §2)\n");
    println!(
        "{:<12} {:>8} {:>9} {:>7} {:>7} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>10}",
        "graph", "|V|", "|E|", "maxdeg", "G(MB)",
        "ISL(MB)", "PLL(MB)", "HopE(MB)", "Hop(MB)",
        "ISL(s)", "PLL(s)", "Hop(s)", "HopT(s)",
        "BIDIJ(µs)", "ISL(µs)", "PLL(µs)", "HCL*(µs)", "Hop(µs)", "BP(µs)",
        "ISLdk(µs)", "Hopdk(µs)", "HopIO(blk)"
    );

    let mut last_kind: Option<Kind> = None;
    for w in suite(scale) {
        if last_kind != Some(w.kind) {
            println!("-- {} --", w.kind.header());
            last_kind = Some(w.kind);
        }
        let r = bench_workload(&w);
        println!(
            "{:<12} {:>8} {:>9} {:>7} {:>7.1} | {:>8} {:>8.1} {:>8.1} {:>8.1} | {:>8} {:>8.2} {:>8.2} {:>8.2} | {:>9.1} {:>9} {:>8.2} {:>8.1} {:>8.2} {:>8} | {:>9} {:>9.1} {:>10}",
            r.name, r.v, r.e, r.maxdeg, r.graph_mb,
            fmt_f(r.isl_mb, 1), r.pll_mb, r.hop_entry_mb, r.hop_mb,
            fmt_f(r.isl_build, 2), r.pll_build, r.hop_build, r.hop_mem_build,
            r.bidij_us, fmt_f(r.isl_us, 2), r.pll_us, r.hcl_us, r.hop_us, fmt_f(r.bp_us, 2),
            fmt_f(r.isl_disk_us, 1), r.hop_disk_us, r.hop_io_blocks,
        );
    }
    println!("\n— = did not finish (IS-Label edge augmentation exceeded budget, cf. the paper's 24 h timeouts)");
    println!("HopDb builds with the external §4 engine (M = 256 Ki records, B = 64 KiB).");
    println!("HopE(MB) = raw entries (8 B each); Hop(MB) = resident serving footprint");
    println!(
        "(entries + offset directory, what FlatIndex/DiskIndex hold); Hop(µs) queries FlatIndex."
    );
    println!(
        "HopT(s) = in-memory engine at BENCH_THREADS={} worker threads (same index, bit-identical).",
        bench::threads_from_env()
    );
}
