#![forbid(unsafe_code)]
//! Table 8 — Hop-Doubling vs Hop-Stepping vs Hybrid: indexing time and
//! iteration counts, plus the two ablations DESIGN.md calls out:
//! `--sweep` varies the hybrid switch point, `--rankings` compares
//! vertex orderings (§7/§8).
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin table8 [-- --sweep --rankings]
//! ```

use bench::{secs, suite, Scale};
use graphgen::grid;
use hopdb::{build_prelabeled, HopDbConfig, Strategy};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::Graph;

fn run(g: &Graph, strategy: Strategy) -> (f64, u32, u64, u64) {
    let start = std::time::Instant::now();
    let (index, stats) = build_prelabeled(g, &HopDbConfig::with_strategy(strategy));
    (
        secs(start.elapsed()),
        stats.num_iterations(),
        stats.peak_candidates(),
        index.total_entries() as u64,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_env();
    println!("Table 8 reproduction (scale: {scale:?})\n");
    println!(
        "{:<14} | {:>9} {:>9} {:>9} | {:>6} {:>6} {:>6} | {:>10} {:>10} {:>10}",
        "graph",
        "Double(s)",
        "Step(s)",
        "Hybrid(s)",
        "itD",
        "itS",
        "itH",
        "peakD",
        "peakS",
        "peakH"
    );

    // The Table 8 suite plus a large-diameter graph (the case that
    // motivates the hybrid: grids behave like the paper's BTC /
    // wikiItaly rows where stepping needs many iterations).
    let mut graphs: Vec<(String, Graph)> = suite(scale)
        .into_iter()
        .map(|w| {
            let rank_by =
                if w.graph.is_directed() { RankBy::DegreeProduct } else { RankBy::Degree };
            let ranking = rank_vertices(&w.graph, &rank_by);
            (w.name, relabel_by_rank(&w.graph, &ranking))
        })
        .collect();
    let side = 20 * scale.factor();
    let long = grid(8, side);
    let ranking = rank_vertices(&long, &RankBy::Degree);
    graphs.push((format!("grid8x{side}"), relabel_by_rank(&long, &ranking)));

    for (name, g) in &graphs {
        let (td, id, pd, _) = run(g, Strategy::Doubling);
        let (ts, is, ps, _) = run(g, Strategy::Stepping);
        let (th, ih, ph, _) = run(g, Strategy::Hybrid { switch_at: 10 });
        println!(
            "{name:<14} | {td:>9.2} {ts:>9.2} {th:>9.2} | {id:>6} {is:>6} {ih:>6} | {pd:>10} {ps:>10} {ph:>10}"
        );
    }

    if args.iter().any(|a| a == "--sweep") {
        println!("\n-- hybrid switch-point sweep (grid8x{side}) --");
        println!("{:<10} {:>9} {:>6} {:>10}", "switch_at", "time(s)", "iters", "peak cands");
        let g = &graphs.last().unwrap().1;
        for switch_at in [2, 4, 6, 8, 10, 14, 20] {
            let (t, it, peak, _) = run(g, Strategy::Hybrid { switch_at });
            println!("{switch_at:<10} {t:>9.2} {it:>6} {peak:>10}");
        }
    }

    if args.iter().any(|a| a == "--rankings") {
        println!("\n-- ranking ablation (first directed workload, hybrid) --");
        println!("{:<14} {:>9} {:>6} {:>12}", "ranking", "time(s)", "iters", "index entries");
        let w = suite(scale).into_iter().find(|w| w.graph.is_directed()).unwrap();
        for (name, rank_by) in [
            ("degree", RankBy::Degree),
            ("in×out", RankBy::DegreeProduct),
            ("random", RankBy::Random(1)),
        ] {
            let ranking = rank_vertices(&w.graph, &rank_by);
            let g = relabel_by_rank(&w.graph, &ranking);
            let (t, it, _, entries) = run(&g, Strategy::Hybrid { switch_at: 10 });
            println!("{name:<14} {t:>9.2} {it:>6} {entries:>12}");
        }
    }

    println!("\nExpected shape (paper): doubling slowest on big graphs (candidate");
    println!("bursts), stepping needs ~diameter iterations, hybrid wins on both.");
}
