#![forbid(unsafe_code)]
//! Figure 9 — scalability on synthetic GLP graphs:
//! (a) fixed |V|, density |E|/|V| swept upward;
//! (b) fixed density 20, |V| swept upward.
//! Reports graph size and the average label-entry count per vertex —
//! the paper's headline: average label size stays flat and small while
//! the graph grows linearly.
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin fig9 [-- --part a|b]
//! ```

use bench::{mb, Scale};
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn measure(n: usize, density: f64, seed: u64) -> (usize, f64, f64, u32) {
    let g = glp(&GlpParams::with_density(n, density, seed));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, stats) = build_prelabeled(&relabeled, &HopDbConfig::default());
    (g.num_edges(), mb(g.size_bytes()), index.avg_label_size(), stats.num_iterations())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let part = args.iter().position(|a| a == "--part").and_then(|i| args.get(i + 1)).cloned();
    let scale = Scale::from_env();
    let f = scale.factor();

    if part.as_deref() != Some("b") {
        // Part (a): |V| fixed, density swept (paper: 10M vertices,
        // density 2→70; scaled down by DESIGN.md §2).
        let n = 12_500 * f;
        println!("Figure 9(a) reproduction: |V| = {n}, density swept\n");
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>6}",
            "|E|/|V|", "|E|", "G(MB)", "avg |label|", "iters"
        );
        for (i, density) in [2.0, 5.0, 10.0, 20.0, 40.0, 70.0].into_iter().enumerate() {
            let (e, size, avg, iters) = measure(n, density, 900 + i as u64);
            println!("{density:>8.0} {e:>10} {size:>10.1} {avg:>12.1} {iters:>6}");
        }
        println!();
    }

    if part.as_deref() != Some("a") {
        // Part (b): density fixed at 20, |V| swept (paper: 2M→30M).
        println!("Figure 9(b) reproduction: density = 20, |V| swept\n");
        println!("{:>9} {:>10} {:>10} {:>12} {:>6}", "|V|", "|E|", "G(MB)", "avg |label|", "iters");
        for (i, n) in
            [2_500 * f, 5_000 * f, 10_000 * f, 20_000 * f, 40_000 * f].into_iter().enumerate()
        {
            let (e, size, avg, iters) = measure(n, 20.0, 950 + i as u64);
            println!("{n:>9} {e:>10} {size:>10.1} {avg:>12.1} {iters:>6}");
        }
    }

    println!("\nPaper shape: graph size grows linearly; the average label size stays");
    println!("flat (below ~200 in the paper) — small hub dimension at every scale.");
}
