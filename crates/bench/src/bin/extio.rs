#![forbid(unsafe_code)]
//! External-build I/O budget gate (the CI `external-io` job).
//!
//! Runs the §4 I/O-efficient engine on two small, fully deterministic
//! GLP stand-ins (one undirected, one directed) with a tiny memory
//! budget, prints the `extmem::stats` accounting, and fails (exit 1)
//! when any counter regresses past its budget. The budgets are measured
//! baselines plus ~25% headroom — tight enough that an accidental extra
//! pass over a label file (the §4 cost model is `O(Σ scan + sort)` per
//! iteration) blows the gate, loose enough for platform noise in run
//! sizing.
//!
//! Each case then rebuilds with the threaded pipeline (4 workers) and
//! asserts every counter is *exactly* the sequential number: the
//! threaded engine only reschedules the same record streams, so any
//! drift means a worker did I/O the sequential build would not.
//! (Measured at the introduction of the threaded path: byte counters
//! unchanged, budgets kept as-is.)
//!
//! ```text
//! cargo run --release -p bench --bin extio
//! ```

use extmem::ExtMemConfig;
use graphgen::{glp, orient_scale_free, GlpParams};
use hopdb::external::build_external;
use hopdb::HopDbConfig;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};
use sfgraph::Graph;

struct Budget {
    name: &'static str,
    read_bytes: u64,
    write_bytes: u64,
    read_ops: u64,
    write_ops: u64,
    sort_runs: u64,
    merge_passes: u64,
}

#[derive(PartialEq, Eq, Debug)]
struct Measured {
    read_bytes: u64,
    write_bytes: u64,
    read_ops: u64,
    write_ops: u64,
    sort_runs: u64,
    merge_passes: u64,
}

fn run_case(g: &Graph, rank_by: &RankBy, threads: usize) -> Measured {
    let ranking = rank_vertices(g, rank_by);
    let relabeled = relabel_by_rank(g, &ranking);
    // Tiny budget so the sorters actually spill: M = 16 Ki records,
    // B = 4 KiB — the workloads are ~100 Ki records of traffic.
    let ext = ExtMemConfig { memory_records: 1 << 14, block_bytes: 4 << 10 };
    let cfg = HopDbConfig::default().with_parallelism(threads);
    let result = build_external(&relabeled, &cfg, &ext).expect("external build");
    let (read_bytes, write_bytes, _, _) = result.io;
    // Re-derive op counts from the block report: io.2/io.3 are blocks.
    Measured {
        read_bytes,
        write_bytes,
        read_ops: result.io.2,
        write_ops: result.io.3,
        sort_runs: result.sort_runs,
        merge_passes: result.merge_passes,
    }
}

fn check(b: &Budget, m: &Measured) -> bool {
    let rows = [
        ("read_bytes", m.read_bytes, b.read_bytes),
        ("write_bytes", m.write_bytes, b.write_bytes),
        ("read_blocks", m.read_ops, b.read_ops),
        ("write_blocks", m.write_ops, b.write_ops),
        ("sort_runs", m.sort_runs, b.sort_runs),
        ("merge_passes", m.merge_passes, b.merge_passes),
    ];
    let mut ok = true;
    println!("{}:", b.name);
    for (what, actual, budget) in rows {
        let flag = if actual <= budget { "ok" } else { "REGRESSION" };
        println!("  {what:<13} {actual:>12} / budget {budget:>12}  {flag}");
        ok &= actual <= budget;
    }
    ok
}

fn main() {
    let und = glp(&GlpParams::with_density(2_000, 3.0, 7));
    let dir = orient_scale_free(&glp(&GlpParams::with_density(1_500, 2.5, 13)), 0.25, 13);

    // Baselines re-measured when the in-side survivor re-sort was
    // replaced by reusing the pivot-sorted prune output (the threaded
    // pipeline itself moved no counter): undirected 9.44 MB read /
    // 6.71 MB written, 22 runs, 12 merges (unchanged); directed
    // 7.66 MB read / 5.43 MB written, 37 runs, 22 merges (down from
    // 7.78 MB / 5.55 MB / 41 runs at the seed of this gate).
    let budgets = [
        Budget {
            name: "undirected glp-2k-d3 (seed 7)",
            read_bytes: 11_800_000,
            write_bytes: 8_400_000,
            read_ops: 2_900,
            write_ops: 2_050,
            sort_runs: 28,
            merge_passes: 16,
        },
        Budget {
            name: "directed glp-1.5k-d2.5 (seed 13)",
            read_bytes: 9_600_000,
            write_bytes: 6_800_000,
            read_ops: 2_350,
            write_ops: 1_660,
            sort_runs: 47,
            merge_passes: 28,
        },
    ];

    println!("external-build I/O budget gate (§4 cost model)\n");
    let m_und = run_case(&und, &RankBy::Degree, 1);
    let m_dir = run_case(&dir, &RankBy::DegreeProduct, 1);
    let ok = check(&budgets[0], &m_und) & check(&budgets[1], &m_dir);
    if !ok {
        eprintln!("\nI/O budget regression: the external build does more I/O than the");
        eprintln!("recorded §4 baseline allows. If the algorithm legitimately changed,");
        eprintln!("re-measure and update the budgets in crates/bench/src/bin/extio.rs.");
        std::process::exit(1);
    }
    println!("\nall counters within budget");

    // The threaded pipeline reschedules the same record streams across
    // workers; the atomic counters must land on exactly the sequential
    // totals or a worker is doing I/O the cost model does not account.
    println!("\nthreaded rebuild (4 workers): counters must match exactly");
    for (name, g, rank_by, sequential) in [
        ("undirected", &und, RankBy::Degree, &m_und),
        ("directed", &dir, RankBy::DegreeProduct, &m_dir),
    ] {
        let threaded = run_case(g, &rank_by, 4);
        if &threaded != sequential {
            eprintln!("threaded {name} build I/O diverged from sequential:");
            eprintln!("  sequential {sequential:?}");
            eprintln!("  threaded   {threaded:?}");
            std::process::exit(1);
        }
        println!("  {name}: threaded counters identical");
    }
}
