#![forbid(unsafe_code)]
//! Build-time scaling snapshot for the sharded engine (the CI
//! `bench-smoke` perf artifact).
//!
//! Builds one GLP workload with the in-memory engine at each requested
//! thread count, records per-iteration timings and per-shard counters,
//! and writes a machine-readable `BENCH_build.json`. Optionally
//! serializes every build's index (`--emit-index PREFIX` →
//! `PREFIX-t{N}.idx`) so CI can diff them for byte equality, and
//! enforces a minimum parallel speedup (`--min-speedup 1.3:4` = ≥1.3×
//! at 4 threads) — skipped with a warning when the machine has fewer
//! cores than the gate asks for, since timeslicing a single core cannot
//! demonstrate scaling. Every thread count is built `--repeat` times
//! (default 2) and the best wall clock is kept, so one noisy-neighbour
//! stall on a shared runner does not fail the gate.
//!
//! ```text
//! BENCH_SCALE=medium cargo run --release -p bench --bin buildperf -- \
//!     --threads-list 1,4 --emit-index target/buildperf -o BENCH_build.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bench::Scale;
use graphgen::{glp, GlpParams};
use hopdb::{build_prelabeled, BuildStats, HopDbConfig};
use hoplabels::disk::DiskIndex;
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

fn json_iterations(stats: &BuildStats) -> String {
    let mut s = String::from("[");
    for (i, it) in stats.iterations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            r#"{{"iteration":{},"stepping":{},"candidates":{},"pruned":{},"inserted":{},"total_entries":{},"elapsed_s":{:.6},"shards":["#,
            it.iteration,
            it.stepping,
            it.candidates,
            it.pruned,
            it.inserted,
            it.total_entries,
            it.elapsed.as_secs_f64()
        );
        for (j, sh) in it.shards.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                r#"{{"shard":{},"candidates":{},"pruned":{},"elapsed_s":{:.6}}}"#,
                sh.shard,
                sh.candidates,
                sh.pruned,
                sh.elapsed.as_secs_f64()
            );
        }
        s.push_str("]}");
    }
    s.push(']');
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    let threads_list: Vec<usize> = arg_value(&args, "--threads-list")
        .unwrap_or_else(|| "1,2,4,8".to_string())
        .split(',')
        .map(|t| t.trim().parse().expect("--threads-list wants comma-separated integers"))
        .collect();
    let out_path = arg_value(&args, "-o").unwrap_or_else(|| "BENCH_build.json".to_string());
    let emit_prefix = arg_value(&args, "--emit-index");
    let min_speedup: Option<(f64, usize)> = arg_value(&args, "--min-speedup").map(|v| {
        let (r, t) = v.split_once(':').expect("--min-speedup wants RATIO:THREADS, e.g. 1.3:4");
        (r.parse().expect("bad ratio"), t.parse().expect("bad thread count"))
    });
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // One representative undirected workload per scale (paper-default
    // density band); medium matches the Fig. 8 scaling midpoint.
    let (n, density, seed) = match scale {
        Scale::Small => (6_000, 3.0, 17),
        Scale::Medium => (24_000, 4.0, 17),
        Scale::Large => (96_000, 4.0, 17),
    };
    eprintln!("buildperf: GLP n={n} d={density} seed={seed} (scale {scale:?}, {cores} cores)");
    let g = glp(&GlpParams::with_density(n, density, seed));
    let ranking = rank_vertices(&g, &RankBy::Degree);
    let relabeled = relabel_by_rank(&g, &ranking);

    let repeat: usize =
        arg_value(&args, "--repeat").map_or(2, |v| v.parse().expect("bad --repeat"));

    let mut runs_json = Vec::new();
    let mut elapsed_by_threads = Vec::new();
    for &threads in &threads_list {
        let cfg = HopDbConfig::default().with_parallelism(threads);
        // Best-of-`repeat` wall clock: shared CI runners see noisy-
        // neighbour slowdowns, and the minimum is the standard robust
        // estimate for "how fast can this build go".
        let mut best: Option<(f64, _, _)> = None;
        for _ in 0..repeat.max(1) {
            let started = Instant::now();
            let (index, stats) = build_prelabeled(&relabeled, &cfg);
            let elapsed = started.elapsed().as_secs_f64();
            if best.as_ref().is_none_or(|(b, _, _)| elapsed < *b) {
                best = Some((elapsed, index, stats));
            }
        }
        let (elapsed, index, stats) = best.expect("at least one repeat");
        elapsed_by_threads.push((threads, elapsed));
        eprintln!(
            "  threads={threads}: {elapsed:.3}s (best of {repeat}), {} entries, {} iterations",
            index.total_entries(),
            stats.num_iterations()
        );
        if let Some(prefix) = &emit_prefix {
            let store = extmem::device::TempStore::new().expect("temp store");
            let disk = DiskIndex::create(&index, &store, "buildperf").expect("serialize");
            let tmp = disk.persist();
            let target = format!("{prefix}-t{threads}.idx");
            std::fs::copy(&tmp, &target).expect("copy index");
            std::fs::remove_file(tmp).ok();
            eprintln!("  wrote {target}");
        }
        let mut run = String::new();
        let _ = write!(
            run,
            r#"{{"threads":{},"resolved_threads":{},"elapsed_s":{:.6},"final_entries":{},"iterations":{}}}"#,
            threads,
            stats.threads,
            elapsed,
            stats.final_entries,
            json_iterations(&stats)
        );
        runs_json.push(run);
    }

    let base = elapsed_by_threads.iter().find(|(t, _)| *t == 1).map(|&(_, e)| e);
    let mut speedups = String::from("{");
    if let Some(base) = base {
        let mut first = true;
        for &(t, e) in &elapsed_by_threads {
            if t == 1 {
                continue;
            }
            if !first {
                speedups.push(',');
            }
            first = false;
            let _ = write!(speedups, r#""{t}":{:.3}"#, base / e);
        }
    }
    speedups.push('}');

    let json = format!(
        r#"{{"workload":{{"model":"glp","vertices":{n},"density":{density},"seed":{seed}}},"scale":"{scale:?}","cores":{cores},"runs":[{}],"speedup_vs_1_thread":{speedups}}}"#,
        runs_json.join(",")
    );
    std::fs::write(&out_path, format!("{json}\n")).expect("write snapshot");
    eprintln!("wrote {out_path}");

    if let Some((want, at)) = min_speedup {
        let Some(base) = base else {
            eprintln!("--min-speedup needs threads=1 in --threads-list");
            std::process::exit(1);
        };
        let Some(&(_, e)) = elapsed_by_threads.iter().find(|(t, _)| *t == at) else {
            eprintln!("--min-speedup needs threads={at} in --threads-list");
            std::process::exit(1);
        };
        if cores < at {
            eprintln!("speedup gate skipped: machine has {cores} cores, gate wants {at} threads");
            return;
        }
        let got = base / e;
        if got < want {
            eprintln!("speedup regression: {got:.2}x at {at} threads, gate wants {want:.2}x");
            std::process::exit(1);
        }
        eprintln!("speedup ok: {got:.2}x at {at} threads (gate {want:.2}x)");
    }
}
