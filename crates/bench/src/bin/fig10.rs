#![forbid(unsafe_code)]
//! Figure 10 — anatomy of a hybrid build on the largest workload
//! (wiki-English stand-in): per-iteration growing factor, pruning
//! factor, candidate/old/prev sizes relative to the final index, and
//! the share of build time spent per iteration.
//!
//! ```text
//! BENCH_SCALE=small cargo run --release -p bench --bin fig10
//! ```

use bench::Scale;
use graphgen::{glp, orient_scale_free, GlpParams};
use hopdb::{build_prelabeled, HopDbConfig};
use sfgraph::ranking::{rank_vertices, relabel_by_rank, RankBy};

fn main() {
    let scale = Scale::from_env();
    let n = 25_000 * scale.factor();
    // wiki-English is a directed link graph; density ~14 in the paper,
    // scaled-down here.
    let und = glp(&GlpParams::with_density(n, 7.0, 777));
    let g = orient_scale_free(&und, 0.25, 777);
    println!(
        "Figure 10 reproduction: directed GLP wikiEng stand-in (|V| = {}, arcs = {})\n",
        g.num_vertices(),
        g.num_edges()
    );

    let ranking = rank_vertices(&g, &RankBy::DegreeProduct);
    let relabeled = relabel_by_rank(&g, &ranking);
    let (index, stats) = build_prelabeled(&relabeled, &HopDbConfig::default());
    let final_entries = index.total_entries() as f64;
    let total_time: f64 = stats.iterations.iter().map(|it| it.elapsed.as_secs_f64()).sum();

    println!(
        "{:>4} {:>9} | {:>8} {:>8} | {:>9} {:>8} {:>8} | {:>7}",
        "iter", "mode", "growing", "pruning", "cand/fin", "old/fin", "prev/fin", "time%"
    );
    let mut prev_inserted = 0u64;
    for it in &stats.iterations {
        let growing = if it.iteration == 1 || prev_inserted == 0 {
            f64::NAN
        } else {
            it.candidates as f64 / prev_inserted as f64
        };
        println!(
            "{:>4} {:>9} | {:>8.2} {:>7.1}% | {:>8.1}% {:>7.1}% {:>7.1}% | {:>6.1}%",
            it.iteration,
            if it.stepping { "stepping" } else { "doubling" },
            growing,
            100.0 * it.pruning_factor(),
            100.0 * it.candidates as f64 / final_entries,
            100.0 * it.total_entries as f64 / final_entries,
            100.0 * it.inserted as f64 / final_entries,
            100.0 * it.elapsed.as_secs_f64() / total_time.max(1e-12),
        );
        prev_inserted = it.inserted;
    }

    println!(
        "\nfinal index: {} entries over {} iterations (avg |label| {:.1})",
        index.total_entries(),
        stats.num_iterations(),
        index.avg_label_size()
    );
    println!("\nPaper shape: growing factor ≈ 3–4 during the stepping phase (the");
    println!("expansion factor R of §2.2), a spike after the doubling switch, and a");
    println!("pruning factor climbing towards ~90–100%; candidates never dwarf the");
    println!("final index (the paper reports ≤ 1.5×).");
}
